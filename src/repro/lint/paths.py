"""Source→sink path queries over the linked program graph.

A multi-source BFS walks taint from every source node (query-text
parameters and ``.text``/``.query`` attribute reads) toward the sink
nodes the per-module builders recorded. Each reachable sink yields at
most one finding, carried by its *shortest* witness path (ties break
deterministically via sorted adjacency and source enqueue order), and
the path's shape picks the rule:

- a **single edge** is a flow the per-function checker already covers
  (the source expression feeds the sink directly) — skipped here, the
  intra pass stays the fast pre-filter;
- a path through a **field node** (``self._q = query`` …
  ``print(self._q)``) → ``taint-field-flow``;
- any other multi-edge path crosses a call/return boundary →
  ``taint-interprocedural``.

Findings are anchored at the sink (``path:line``) with a line-free
message (function and sink names only, so baseline fingerprints
survive unrelated edits) and carry the full witness as
``(file, line, symbol)`` hops for the text and JSON reports.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.linking import ProgramGraph
from repro.lint.pdg import Hop, Node, node_key

#: Cap on the functions named in a finding message; the witness
#: carries the full path regardless.
_CHAIN_LIMIT = 4


def _bfs(graph: ProgramGraph
         ) -> Dict[Node, Tuple[Optional[Node], str, Optional[Hop]]]:
    """Parent pointers of a multi-source shortest-path walk.

    Every source enters the queue at distance zero (sorted, so the
    tie-break between equal-length paths is stable); each node keeps
    the first (= shortest, lexicographically earliest) parent edge.
    """
    parents: Dict[Node, Tuple[Optional[Node], str, Optional[Hop]]] = {}
    queue: deque = deque()
    for source in sorted(graph.sources, key=node_key):
        if source not in parents:
            parents[source] = (None, "source", None)
            queue.append(source)
    while queue:
        node = queue.popleft()
        for dest, kind, hop in graph.adjacency.get(node, ()):
            if dest in parents:
                continue
            parents[dest] = (node, kind, hop)
            queue.append(dest)
    return parents


def _walk_back(parents, node: Node) -> List[Tuple[Node, str, Optional[Hop]]]:
    """The path to *node* as [(node, edge-kind-into-node, hop), ...],
    source first."""
    path: List[Tuple[Node, str, Optional[Hop]]] = []
    current: Optional[Node] = node
    while current is not None:
        prev, kind, hop = parents[current]
        path.append((current, kind, hop))
        current = prev
    path.reverse()
    return path


def _classify(path) -> Optional[str]:
    """Rule id for a path, or None when the intra pass covers it."""
    edges = [kind for _node, kind, _hop in path[1:]]
    if len(edges) <= 1:
        return None  # direct source→sink: the per-function rule fires
    if "field-write" in edges:
        return "taint-field-flow"
    if "call" in edges or "ret" in edges:
        return "taint-interprocedural"
    return None


def _chain(graph: ProgramGraph, path) -> List[str]:
    """The function names a path crosses, in order, deduped."""
    names: List[str] = []
    source = path[0][0]
    if source[0] == "param":
        info = graph.functions.get(source[1])
        if info is not None:
            names.append(info.name)
    else:
        source_hop = graph.sources.get(source)
        if source_hop is not None:
            names.append(source_hop[2].rsplit(" in ", 1)[-1])
    for _node, kind, hop in path[1:]:
        if kind == "call" and hop is not None:
            callee = hop[2].split("(", 1)[0]
            if not names or names[-1] != callee:
                names.append(callee)
    return names


def _witness(graph: ProgramGraph, path) -> Tuple[Hop, ...]:
    hops: List[Hop] = []
    source = path[0][0]
    source_hop = graph.sources.get(source)
    if source_hop is not None:
        hops.append(source_hop)
    for _node, _kind, hop in path[1:]:
        if hop is not None and (not hops or hops[-1] != hop):
            hops.append(hop)
    return tuple(hops)


def _field_label(path) -> Optional[str]:
    for node, _kind, _hop in path:
        if node[0] == "field":
            class_short = node[1].split("::", 1)[-1]
            return f"{class_short}.{node[2]}"
    return None


def query_paths(graph: ProgramGraph) -> List[Finding]:
    """Every interprocedural / field-mediated source→sink flow."""
    parents = _bfs(graph)
    findings: List[Finding] = []
    for sink in sorted(graph.sink_info, key=node_key):
        if sink not in parents:
            continue
        path = _walk_back(parents, sink)
        rule = _classify(path)
        if rule is None:
            continue
        descr, sink_hop = graph.sink_info[sink]
        source = path[0][0]
        source_hop = graph.sources.get(source)
        source_desc = source_hop[2] if source_hop is not None \
            else "a query-text source"
        names = _chain(graph, path)
        shown = names[:_CHAIN_LIMIT]
        chain = " -> ".join(shown) + \
            (" -> ..." if len(names) > _CHAIN_LIMIT else "")
        if rule == "taint-field-flow":
            field = _field_label(path)
            message = (f"query text from {source_desc} flows into "
                       f"{descr} through field {field}")
        else:
            message = (f"query text from {source_desc} flows into "
                       f"{descr} via {chain}")
        findings.append(Finding(
            path=sink_hop[0], line=sink_hop[1], rule=rule,
            message=message, witness=_witness(graph, path)))
    return findings
