"""Whole-program linking: per-module PDGs → one dependence graph.

The parent process (or the single-process path) collects every
:class:`~repro.lint.pdg.ModulePDG` and resolves each recorded call
site against the program-wide symbol table:

- ``("local", qual)`` — nested functions and assigned lambdas, bound
  at build time;
- ``("name", n)`` — module-level functions/classes of the caller's
  own module, then the import table, following re-export chains
  (``from repro.core.x import f`` in an ``__init__`` that a third
  module imports from) to a bounded depth;
- ``("self", m)`` — methods of the enclosing class;
- ``("dotted", a, b, ..., f)`` — ``mod.sub.f(...)`` via the import
  table plus the program's module namespace.

A resolved call contributes **parameter edges** (caller-argument
labels → callee parameter nodes; ``*args``/``**kwargs`` labels
over-approximate to *every* parameter) and a **return edge**
(callee return node → the call-site value node). Resolution is
deliberately partial: unresolvable calls stay sanitizer boundaries
(the intra contract), calls into declassifiers
(:data:`~repro.lint.pdg.DECLASSIFIER_FUNCS`, e.g. the salted
``query_hash_bucket``) and into exempt modules (the trusted enclave
closure, adversary packages) are dropped — those are exactly the
sanctioned ways for query text to cross a boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.pdg import (DECLASSIFIER_FUNCS, CallSite, FunctionInfo,
                            Hop, ModulePDG, Node, node_key)

#: Re-export chains longer than this are cut (cycles, pathology).
_MAX_CHAIN = 16


@dataclass
class ProgramGraph:
    """The linked whole-program dependence graph."""

    adjacency: Dict[Node, List[Tuple[Node, str, Hop]]] = field(
        default_factory=dict)
    sources: Dict[Node, Hop] = field(default_factory=dict)
    sink_info: Dict[Node, Tuple[str, Hop]] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def add_edge(self, src: Node, dst: Node, kind: str, hop: Hop) -> None:
        self.adjacency.setdefault(src, []).append((dst, kind, hop))

    def finish(self) -> "ProgramGraph":
        """Sort adjacency lists so traversal order is deterministic
        regardless of build (or pool) order."""
        for src in self.adjacency:
            self.adjacency[src] = sorted(
                set(self.adjacency[src]),
                key=lambda entry: (node_key(entry[0]), entry[1],
                                   entry[2]))
        return self


class _SymbolTable:
    def __init__(self, pdgs: List[ModulePDG]) -> None:
        self.by_module: Dict[str, ModulePDG] = {
            pdg.module: pdg for pdg in pdgs}

    def resolve(self, module: str, name: str,
                depth: int = 0) -> Optional[Tuple[str, str, str]]:
        """Resolve *name* in *module* → ("func"|"class"|"module",
        owner module, qual-or-short-name), following import chains."""
        if depth > _MAX_CHAIN:
            return None
        pdg = self.by_module.get(module)
        if pdg is None:
            return None
        kind_qual = pdg.toplevel.get(name)
        if kind_qual is not None:
            kind, ref = kind_qual
            return (kind, module, ref)
        imported = pdg.imports.get(name)
        if imported is None:
            return None
        source_module, symbol = imported
        if symbol is None:
            return ("module", module, source_module)
        resolved = self.resolve(source_module, symbol, depth + 1)
        if resolved is not None:
            return resolved
        # ``from pkg import sub`` where sub is a submodule, not a name
        candidate = f"{source_module}.{symbol}"
        if candidate in self.by_module:
            return ("module", module, candidate)
        return None

    def resolve_dotted(self, module: str,
                       parts: Tuple[str, ...]
                       ) -> Optional[Tuple[str, str, str]]:
        """Resolve ``a.b.f(...)`` seen in *module*."""
        head, middle, last = parts[0], parts[1:-1], parts[-1]
        base = self.resolve(module, head)
        if base is None or base[0] != "module":
            return None
        base_module = base[2]
        # walk the middle parts as submodules or re-exported modules
        for part in middle:
            step = self.resolve(base_module, part)
            if step is not None and step[0] == "module":
                base_module = step[2]
                continue
            candidate = f"{base_module}.{part}"
            if candidate in self.by_module:
                base_module = candidate
                continue
            return None
        return self.resolve(base_module, last)


def _callee_function(table: _SymbolTable, site: CallSite,
                     pdg: ModulePDG
                     ) -> Optional[Tuple[FunctionInfo, ModulePDG, bool]]:
    """Resolve a call site to (callee info, owner pdg, skip_self)."""
    kind = site.ref[0]
    if kind == "local":
        qual = site.ref[1]
        info = pdg.functions.get(qual)
        return (info, pdg, False) if info else None
    if kind == "self":
        if site.cls is None:
            return None
        class_name = site.cls.split("::", 1)[-1]
        cls = pdg.classes.get(class_name)
        if cls is None:
            return None
        qual = cls.methods.get(site.ref[1])
        info = pdg.functions.get(qual) if qual else None
        return (info, pdg, True) if info else None

    if kind == "name":
        if site.ref[1] in DECLASSIFIER_FUNCS:
            return None
        resolved = table.resolve(pdg.module, site.ref[1])
    elif kind == "dotted":
        if site.ref[-1] in DECLASSIFIER_FUNCS:
            return None
        resolved = table.resolve_dotted(pdg.module, site.ref[1:])
    else:
        return None
    if resolved is None:
        return None
    rkind, owner_module, ref = resolved
    owner = table.by_module.get(owner_module)
    if owner is None:
        return None
    if rkind == "func":
        info = owner.functions.get(ref)
        return (info, owner, False) if info else None
    if rkind == "class":
        cls = owner.classes.get(ref)
        if cls is None:
            return None
        qual = cls.methods.get("__init__")
        info = owner.functions.get(qual) if qual else None
        return (info, owner, True) if info else None
    return None


def _link_call(graph: ProgramGraph, site: CallSite, caller: ModulePDG,
               callee: FunctionInfo, owner: ModulePDG) -> None:
    """Parameter and return edges for one resolved call site."""
    params = callee.params
    short = callee.name

    def param_node(name: str) -> Node:
        return ("param", callee.qual, name)

    def arg_edge(labels: List[Node], pname: str) -> None:
        hop: Hop = (caller.relpath, site.line, f"{short}({pname})")
        for label in labels:
            graph.add_edge(label, param_node(pname), "call", hop)

    for index, labels in enumerate(site.pos):
        if index < len(params):
            arg_edge(labels, params[index])
        elif callee.vararg is not None:
            arg_edge(labels, callee.vararg)
    for name, labels in sorted(site.kw.items()):
        if name in params:
            arg_edge(labels, name)
        elif callee.kwarg is not None:
            arg_edge(labels, callee.kwarg)
    if site.star:
        # *args/**kwargs forwarding: over-approximate to every
        # parameter of the callee (plus its own vararg/kwarg)
        targets = list(params)
        targets.extend(p for p in (callee.vararg, callee.kwarg) if p)
        for pname in targets:
            arg_edge(site.star, pname)

    graph.add_edge(("ret", callee.qual), site.ret_node, "ret",
                   (caller.relpath, site.line, f"return of {short}"))


def link_program(pdgs: List[ModulePDG]) -> ProgramGraph:
    """Link every module's PDG into one queryable program graph."""
    graph = ProgramGraph()
    table = _SymbolTable(pdgs)
    for pdg in sorted(pdgs, key=lambda p: p.relpath):
        graph.functions.update(pdg.functions)
        graph.sources.update(pdg.sources)
        graph.sink_info.update(pdg.sink_info)
        for src, dst, kind, hop in pdg.edges:
            graph.add_edge(src, dst, kind, hop)
        for site in pdg.callsites:
            resolved = _callee_function(table, site, pdg)
            if resolved is None:
                continue  # sanitizer boundary: unresolved stays opaque
            callee, owner, skip_self = resolved
            if owner.exempt:
                continue  # trusted / adversary modules declassify
            del skip_self  # FunctionInfo.params already excludes self
            _link_call(graph, site, pdg, callee, owner)
    return graph.finish()
