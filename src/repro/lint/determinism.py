"""Determinism contract: seeded RNGs and the simulator clock only.

The byte-identical fig5–fig8 reproductions (verified every PR) and
the perf-trajectory baseline both rest on one discipline: simulation
code takes randomness from an explicitly seeded ``random.Random`` and
time from the discrete-event simulator (or :mod:`repro.obs.clock`'s
abstraction). One stray wall-clock read or shared-global ``random``
call makes outputs machine- and interleaving-dependent in ways the
test suite can only catch probabilistically; this checker bans the
patterns outright:

- ``time.time()`` / ``time.time_ns()`` / ``datetime.now()`` and
  friends (``det-wall-clock``) — allowed only in
  :mod:`repro.obs.clock`, the one sanctioned wall-clock adapter.
  ``perf_counter`` is *not* banned: it measures host durations in the
  perf harness and never feeds simulation state.
- ``os.urandom`` / ``random.SystemRandom`` (``det-system-entropy``) —
  allowed only under :mod:`repro.crypto`, where key material is
  *supposed* to be nondeterministic when no rng is threaded through;
  :func:`repro.crypto.rng.system_rng` is the sanctioned constructor.
- module-global ``random.*`` calls (``det-global-random``) — the
  shared interpreter-wide stream; any import-ordering change
  reshuffles every consumer.
- ``random.Random()`` with no seed (``det-unseeded-rng``) — allowed
  only in :mod:`repro.crypto.rng`.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.engine import SourceModule
from repro.lint.findings import Finding, make_finding

#: The one module allowed to read wall clocks.
CLOCK_MODULES = frozenset({"repro.obs.clock"})

#: Package prefix allowed to draw system entropy.
CRYPTO_PREFIX = "repro.crypto"

#: The one module allowed to build unseeded/system-entropy RNGs — the
#: sanctioned helper the rest of the tree calls instead.
CRYPTO_RNG_MODULE = "repro.crypto.rng"

_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "ctime", "localtime", "gmtime",
})
_WALL_CLOCK_DATE_ATTRS = frozenset({"now", "utcnow", "today"})
_RANDOM_MODULE_OK = frozenset({"Random", "SystemRandom"})


def _from_imports(tree: ast.Module, source: str) -> Set[str]:
    """Local names bound by ``from <source> import ...``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == source:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def check_determinism(module: SourceModule) -> List[Finding]:
    out: List[Finding] = []
    in_clock = module.module in CLOCK_MODULES
    in_crypto = module.module.startswith(CRYPTO_PREFIX)
    in_rng_helper = module.module == CRYPTO_RNG_MODULE

    time_names = _from_imports(module.tree, "time")
    os_names = _from_imports(module.tree, "os")
    random_names = _from_imports(module.tree, "random")

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func

        # -- wall clocks ------------------------------------------------
        if not in_clock:
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                base, attr = func.value.id, func.attr
                if base == "time" and attr in _WALL_CLOCK_TIME_ATTRS:
                    out.append(make_finding(
                        module, node, "det-wall-clock",
                        f"calls time.{attr}() in simulation code"))
                if (attr in _WALL_CLOCK_DATE_ATTRS
                        and base in ("datetime", "date")):
                    out.append(make_finding(
                        module, node, "det-wall-clock",
                        f"calls {base}.{attr}() in simulation code"))
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr in ("datetime", "date")
                    and func.attr in _WALL_CLOCK_DATE_ATTRS):
                out.append(make_finding(
                    module, node, "det-wall-clock",
                    f"calls datetime.{func.value.attr}.{func.attr}() "
                    f"in simulation code"))
            if (isinstance(func, ast.Name)
                    and func.id in time_names
                    and func.id in _WALL_CLOCK_TIME_ATTRS):
                out.append(make_finding(
                    module, node, "det-wall-clock",
                    f"calls {func.id}() (imported from time) in "
                    f"simulation code"))

        # -- system entropy --------------------------------------------
        if not in_crypto:
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os" and func.attr == "urandom"):
                out.append(make_finding(
                    module, node, "det-system-entropy",
                    "draws os.urandom() outside repro.crypto"))
            if (isinstance(func, ast.Name) and func.id == "urandom"
                    and "urandom" in os_names):
                out.append(make_finding(
                    module, node, "det-system-entropy",
                    "draws urandom() (imported from os) outside "
                    "repro.crypto"))
            if _base_name(func) == "SystemRandom":
                out.append(make_finding(
                    module, node, "det-system-entropy",
                    "constructs random.SystemRandom() outside "
                    "repro.crypto"))

        # -- module-global random --------------------------------------
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and func.attr not in _RANDOM_MODULE_OK):
            out.append(make_finding(
                module, node, "det-global-random",
                f"calls module-global random.{func.attr}()"))
        if (isinstance(func, ast.Name) and func.id in random_names
                and func.id not in _RANDOM_MODULE_OK):
            out.append(make_finding(
                module, node, "det-global-random",
                f"calls module-global {func.id}() (imported from "
                f"random)"))

        # -- unseeded Random() -----------------------------------------
        if not in_rng_helper and not node.args and not node.keywords:
            is_random_ctor = (
                (isinstance(func, ast.Attribute)
                 and isinstance(func.value, ast.Name)
                 and func.value.id == "random"
                 and func.attr == "Random")
                or (isinstance(func, ast.Name) and func.id == "Random"
                    and "Random" in random_names))
            if is_random_ctor:
                out.append(make_finding(
                    module, node, "det-unseeded-rng",
                    "constructs random.Random() without a seed"))
    return out
