"""The analysis driver: collect modules, parse once, run the checkers.

The unit of analysis is a :class:`SourceModule`: one parsed file plus
its dotted module name, derived from its path relative to the analysis
*root* (the directory containing the top-level ``repro`` package —
``<repo>/src`` for the real tree, a fixture directory in tests). Every
checker is a pure function ``SourceModule -> Iterable[Finding]``; the
driver parses each file exactly once and fans the tree out to all of
them, then filters ``# lint: allow(...)`` pragma'd lines.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence

from repro.lint.baseline import pragma_allows, scan_pragmas
from repro.lint.findings import Finding


@dataclass
class SourceModule:
    """One parsed source file under analysis."""

    path: Path           # absolute location on disk
    relpath: str         # posix path relative to the analysis root
    module: str          # dotted module name ("repro.core.node")
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The top-level sub-package ("core" for repro.core.node)."""
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else ""


def default_root() -> Path:
    """The analysis root of the installed tree: the directory holding
    the ``repro`` package (``<repo>/src`` in a source checkout)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def _module_name(relpath: Path) -> str:
    parts = list(relpath.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def collect_modules(root: Path,
                    paths: Optional[Sequence[Path]] = None
                    ) -> List[SourceModule]:
    """Parse every ``*.py`` under *root* (or just *paths*).

    Files that fail to parse yield a module with an empty tree; the
    driver reports those as ``parse-error`` findings rather than
    aborting the run.
    """
    root = Path(root).resolve()
    if paths:
        files = []
        for path in (Path(p).resolve() for p in paths):
            files.extend(sorted(path.rglob("*.py"))
                         if path.is_dir() else [path])
        files.sort()
    else:
        files = sorted(root.rglob("*.py"))
    modules: List[SourceModule] = []
    for file in files:
        if "__pycache__" in file.parts:
            continue
        relpath = file.relative_to(root)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            tree = ast.Module(body=[], type_ignores=[])
            modules.append(SourceModule(
                path=file, relpath=relpath.as_posix(),
                module=_module_name(relpath), tree=tree,
                lines=[f"__parse_error__: {exc.msg} (line {exc.lineno})"]))
            continue
        modules.append(SourceModule(
            path=file, relpath=relpath.as_posix(),
            module=_module_name(relpath), tree=tree,
            lines=source.splitlines()))
    return modules


Checker = Callable[[SourceModule], Iterable[Finding]]


def default_checkers() -> List[Checker]:
    from repro.lint.determinism import check_determinism
    from repro.lint.enclave import check_enclave_boundary
    from repro.lint.layering import check_layering
    from repro.lint.taint import check_taint

    return [check_taint, check_enclave_boundary, check_determinism,
            check_layering]


def run_lint(root: Path,
             paths: Optional[Sequence[Path]] = None,
             checkers: Optional[Sequence[Checker]] = None
             ) -> List[Finding]:
    """Run all checkers over *root*; returns pragma-filtered findings.

    Baseline application is the caller's concern (the CLI and the CI
    gate both want to report grandfathered counts differently).
    """
    modules = collect_modules(root, paths=paths)
    active = list(checkers) if checkers is not None else default_checkers()
    findings: List[Finding] = []
    for module in modules:
        if module.lines and module.lines[0].startswith("__parse_error__"):
            findings.append(Finding(
                path=module.relpath, line=0, rule="parse-error",
                message=module.lines[0].split(": ", 1)[1]))
            continue
        collected: List[Finding] = []
        for checker in active:
            collected.extend(checker(module))
        pragmas = scan_pragmas(module.lines)
        if pragmas:
            collected = [finding for finding in collected
                         if not pragma_allows(pragmas, finding)]
        findings.extend(collected)
    return sorted(set(findings))
