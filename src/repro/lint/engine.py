"""The analysis driver: collect modules, parse once, run the checkers.

The unit of analysis is a :class:`SourceModule`: one parsed file plus
its dotted module name, derived from its path relative to the analysis
*root* (the directory containing the top-level ``repro`` package —
``<repo>/src`` for the real tree, a fixture directory in tests). Every
checker is a pure function ``SourceModule -> Iterable[Finding]``; the
driver parses each file exactly once and fans the tree out to all of
them, then filters ``# lint: allow(...)`` pragma'd lines.

Two phases, one pool. The *per-file* phase — parse, the four
per-module checkers, and per-module PDG construction
(:mod:`repro.lint.pdg`) — is embarrassingly parallel and fans out
over a ``multiprocessing`` pool when ``jobs > 1`` (the unit of work
is one file; results come back as plain data). The *whole-program*
phase — PDG linking (:mod:`repro.lint.linking`) and source→sink path
queries (:mod:`repro.lint.paths`) — runs in the parent. Results are
assembled in file order and sorted, so the findings are byte-
identical for any ``jobs`` value.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import pragma_allows, scan_pragmas
from repro.lint.findings import Finding


@dataclass
class SourceModule:
    """One parsed source file under analysis."""

    path: Path           # absolute location on disk
    relpath: str         # posix path relative to the analysis root
    module: str          # dotted module name ("repro.core.node")
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @property
    def package(self) -> str:
        """The top-level sub-package ("core" for repro.core.node)."""
        parts = self.module.split(".")
        return parts[1] if len(parts) > 1 else ""


def default_root() -> Path:
    """The analysis root of the installed tree: the directory holding
    the ``repro`` package (``<repo>/src`` in a source checkout)."""
    import repro

    return Path(repro.__file__).resolve().parent.parent


def _module_name(relpath: Path) -> str:
    parts = list(relpath.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def collect_modules(root: Path,
                    paths: Optional[Sequence[Path]] = None
                    ) -> List[SourceModule]:
    """Parse every ``*.py`` under *root* (or just *paths*).

    Files that fail to parse yield a module with an empty tree; the
    driver reports those as ``parse-error`` findings rather than
    aborting the run.
    """
    root = Path(root).resolve()
    if paths:
        files = []
        for path in (Path(p).resolve() for p in paths):
            files.extend(sorted(path.rglob("*.py"))
                         if path.is_dir() else [path])
        files.sort()
    else:
        files = sorted(root.rglob("*.py"))
    modules: List[SourceModule] = []
    for file in files:
        if "__pycache__" in file.parts:
            continue
        relpath = file.relative_to(root)
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            tree = ast.Module(body=[], type_ignores=[])
            modules.append(SourceModule(
                path=file, relpath=relpath.as_posix(),
                module=_module_name(relpath), tree=tree,
                lines=[f"__parse_error__: {exc.msg} (line {exc.lineno})"]))
            continue
        modules.append(SourceModule(
            path=file, relpath=relpath.as_posix(),
            module=_module_name(relpath), tree=tree,
            lines=source.splitlines()))
    return modules


Checker = Callable[[SourceModule], Iterable[Finding]]


def default_checkers() -> List[Checker]:
    from repro.lint.determinism import check_determinism
    from repro.lint.enclave import check_enclave_boundary
    from repro.lint.layering import check_layering
    from repro.lint.taint import check_taint

    return [check_taint, check_enclave_boundary, check_determinism,
            check_layering]


#: One pool worker's result for one file: the pragma-filtered
#: per-module findings, the pragma table (the parent re-applies it to
#: interprocedural findings anchored in this file) and the module PDG
#: (None for parse errors).
_FileResult = Tuple[str, List[Finding], dict, Optional[object]]


def _analyze_file(work: Tuple[str, str]) -> _FileResult:
    """Pool unit of work: parse one file, run the per-module checkers,
    build its PDG. Top-level (picklable) by design; returns only plain
    data and Finding dataclasses."""
    from repro.lint.pdg import build_module_pdg

    root_str, file_str = work
    modules = collect_modules(Path(root_str), paths=[Path(file_str)])
    module = modules[0]
    if module.lines and module.lines[0].startswith("__parse_error__"):
        finding = Finding(
            path=module.relpath, line=0, rule="parse-error",
            message=module.lines[0].split(": ", 1)[1])
        return (module.relpath, [finding], {}, None)
    collected: List[Finding] = []
    for checker in default_checkers():
        collected.extend(checker(module))
    pragmas = scan_pragmas(module.lines)
    if pragmas:
        collected = [finding for finding in collected
                     if not pragma_allows(pragmas, finding)]
    return (module.relpath, collected, pragmas, build_module_pdg(module))


def _file_list(root: Path,
               paths: Optional[Sequence[Path]] = None) -> List[Path]:
    root = Path(root).resolve()
    if paths:
        files = []
        for path in (Path(p).resolve() for p in paths):
            files.extend(sorted(path.rglob("*.py"))
                         if path.is_dir() else [path])
        files.sort()
    else:
        files = sorted(root.rglob("*.py"))
    return [file for file in files if "__pycache__" not in file.parts]


def run_lint(root: Path,
             paths: Optional[Sequence[Path]] = None,
             checkers: Optional[Sequence[Checker]] = None,
             jobs: int = 1) -> List[Finding]:
    """Run all checkers over *root*; returns pragma-filtered findings.

    The default run (no explicit *checkers*) also builds the
    whole-program PDG and reports interprocedural and field-mediated
    source→sink flows (``taint-interprocedural``/``taint-field-flow``)
    with witness paths; passing *checkers* runs exactly those, with no
    interprocedural pass (the fixture tests rely on this to pin the
    per-function checker's blind spots). ``jobs > 1`` fans per-file
    analysis out over a process pool; output is byte-identical for
    any value.

    Baseline application is the caller's concern (the CLI and the CI
    gate both want to report grandfathered counts differently).
    """
    if checkers is not None:
        modules = collect_modules(root, paths=paths)
        findings: List[Finding] = []
        for module in modules:
            if module.lines and \
                    module.lines[0].startswith("__parse_error__"):
                findings.append(Finding(
                    path=module.relpath, line=0, rule="parse-error",
                    message=module.lines[0].split(": ", 1)[1]))
                continue
            collected = []
            for checker in checkers:
                collected.extend(checker(module))
            pragmas = scan_pragmas(module.lines)
            if pragmas:
                collected = [finding for finding in collected
                             if not pragma_allows(pragmas, finding)]
            findings.extend(collected)
        return sorted(set(findings))

    root = Path(root).resolve()
    work = [(str(root), str(file))
            for file in _file_list(root, paths=paths)]
    if jobs > 1 and len(work) > 1:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        with context.Pool(processes=jobs) as pool:
            results = pool.map(_analyze_file, work)
    else:
        results = [_analyze_file(item) for item in work]

    findings = []
    pragma_tables = {}
    pdgs = []
    for relpath, collected, pragmas, pdg in results:
        findings.extend(collected)
        pragma_tables[relpath] = pragmas
        if pdg is not None:
            pdgs.append(pdg)

    from repro.lint.linking import link_program
    from repro.lint.paths import query_paths

    for finding in query_paths(link_program(pdgs)):
        pragmas = pragma_tables.get(finding.path, {})
        if pragmas and pragma_allows(pragmas, finding):
            continue
        findings.append(finding)
    return sorted(set(findings))
