"""Enclave-boundary discipline: trusted state only behind ecall gates.

The simulated MEE (:mod:`repro.sgx.enclave`) enforces at *runtime*
that ``Enclave.trusted`` is only readable while an ``@ecall`` frame is
on the stack — touching it from untrusted code raises
``EnclaveIsolationError``. That check only fires on executed paths;
this checker proves the discipline over all of them:

- **trusted-state access** — within any enclave class (one deriving
  from ``Enclave`` or declaring ``@ecall`` methods), ``self.trusted``
  / ``self._trusted`` may only be touched by methods in the *trusted
  closure*: ``@ecall``-decorated methods, plus private helpers whose
  intra-class call sites are all themselves trusted (a helper called
  only from ecalls executes only inside the gate).
- **internal imports** — modules outside :mod:`repro.sgx` must not
  import underscore-prefixed (enclave-internal) symbols from it, nor
  star-import it.
- **ocall discipline** — untrusted code reaches enclave-external
  services only through ``Enclave.ocall`` (which charges crossings
  and flips the inside flag); direct ``ocall_handler``/`` _ocalls``
  access bypasses the gate and its cost model.

:mod:`repro.sgx` itself is exempt — it *implements* the gates.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.lint.engine import SourceModule
from repro.lint.findings import Finding, make_finding

TRUSTED_STATE_ATTRS = frozenset({"trusted", "_trusted"})
_OCALL_INTERNALS = frozenset({"ocall_handler", "_ocalls"})


def _is_ecall_decorated(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "ecall":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "ecall":
            return True
    return False


def _is_enclave_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else \
            getattr(base, "id", "")
        if "Enclave" in str(name):
            return True
    return any(isinstance(item, ast.FunctionDef)
               and _is_ecall_decorated(item) for item in node.body)


def _self_attr_accesses(node: ast.FunctionDef,
                        attrs: frozenset) -> List[ast.Attribute]:
    hits = []
    for child in ast.walk(node):
        if (isinstance(child, ast.Attribute) and child.attr in attrs
                and isinstance(child.value, ast.Name)
                and child.value.id == "self"):
            hits.append(child)
    return hits


def _self_calls(node: ast.FunctionDef) -> Set[str]:
    """Names of ``self.<method>()`` calls made inside *node*."""
    calls: Set[str] = set()
    for child in ast.walk(node):
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id == "self"):
            calls.add(child.func.attr)
    return calls


def _trusted_closure(methods: Dict[str, ast.FunctionDef]) -> Set[str]:
    """Ecall methods plus helpers reachable *only* from them.

    Fixed point: a non-ecall method joins the closure when it has at
    least one intra-class call site and every one of its call sites is
    already trusted. Methods with no visible call sites (public
    entry points, ``__init__``) stay untrusted.
    """
    call_sites: Dict[str, Set[str]] = {name: set() for name in methods}
    for name, node in methods.items():
        for callee in _self_calls(node):
            if callee in call_sites:
                call_sites[callee].add(name)
    trusted = {name for name, node in methods.items()
               if _is_ecall_decorated(node)}
    changed = True
    while changed:
        changed = False
        for name in methods:
            if name in trusted or not call_sites[name]:
                continue
            if call_sites[name] <= trusted:
                trusted.add(name)
                changed = True
    return trusted


def check_enclave_boundary(module: SourceModule) -> List[Finding]:
    out: List[Finding] = []
    inside_sgx = module.module.startswith("repro.sgx")

    for node in ast.walk(module.tree):
        # -- internal imports ------------------------------------------
        if (not inside_sgx and isinstance(node, ast.ImportFrom)
                and (node.module or "").startswith("repro.sgx")):
            for alias in node.names:
                if alias.name == "*":
                    out.append(make_finding(
                        module, node, "enclave-internal-import",
                        f"star import from {node.module} exposes "
                        f"enclave-internal symbols"))
                elif alias.name.startswith("_"):
                    out.append(make_finding(
                        module, node, "enclave-internal-import",
                        f"imports enclave-internal symbol "
                        f"{alias.name!r} from {node.module}"))

        # -- ocall bypass ----------------------------------------------
        if not inside_sgx and isinstance(node, ast.Attribute) \
                and node.attr in _OCALL_INTERNALS:
            out.append(make_finding(
                module, node, "enclave-ocall-bypass",
                f"touches the ocall table via .{node.attr} instead of "
                f"Enclave.ocall"))

        # -- trusted-state discipline ----------------------------------
        if inside_sgx or not isinstance(node, ast.ClassDef) \
                or not _is_enclave_class(node):
            continue
        methods = {item.name: item for item in node.body
                   if isinstance(item, ast.FunctionDef)}
        trusted = _trusted_closure(methods)
        for name, method in methods.items():
            if name in trusted:
                continue
            accesses = _self_attr_accesses(method, TRUSTED_STATE_ATTRS)
            if accesses:
                out.append(make_finding(
                    module, accesses[0], "enclave-trusted-outside-ecall",
                    f"{node.name}.{name} touches enclave-private state "
                    f"outside an @ecall gate "
                    f"({len(accesses)} access(es))"))
    return out
