"""Query-text taint tracking: sources → sinks over one module's AST.

DoubleX (Fass et al., CCS 2021) showed that browser-extension privacy
properties — "sensitive data never reaches an attacker-visible API" —
are a natural fit for static data-flow analysis. This checker applies
the same shape to CYCLOSA's central invariant: **plaintext query text
must never become wire-visible or log-visible outside the enclave.**

Sources
    ``.text`` / ``.query`` / ``.query_text`` attribute reads (the
    repository-wide convention for query text: ``QueryRecord.text``,
    ``ProtectedSearch.query``, engine-log entries) and parameters
    named ``query``/``query_text``/``queries``/``real_query`` (the
    CLI's argv query lands here).

Sinks (from the shared registry :mod:`repro.obs.sinks` — the same
list the runtime audit taps)
    wire egress calls, ``print``/logging, exception messages raised,
    span/metric attributes.

Sanitizers / sanctioned scopes
    - ``repro.sgx.*`` and ``repro.core.enclave`` — the trusted code
      units; inside the enclave, query plaintext is the working
      material and egress is sealed by construction (the enclave
      checker separately enforces the gate discipline).
    - ``repro.searchengine``, ``repro.attacks``, ``repro.metrics``,
      ``repro.baselines`` — adversary/engine/measurement models whose
      *subject matter* is plaintext observation (the engine
      legitimately sees query text after in-enclave TLS terminates;
      SimAttack's whole job is reading observations).
    - Any *call* boundary: calls do not propagate taint unless they
      are known string operations. Hashing — in particular the salted
      :func:`repro.obs.query_hash_bucket` — therefore sanitizes, as
      does ``len()``/counting.

The tracking here is intentionally per-function and flow-insensitive
across calls: it will not chase taint through object fields or across
function boundaries. That keeps it the fast intra pre-pass — zero
config, effectively free of false positives on this codebase. The
interprocedural gap is closed statically by the whole-program PDG
pass (:mod:`repro.lint.pdg` / :mod:`repro.lint.linking` /
:mod:`repro.lint.paths`, rules ``taint-interprocedural`` and
``taint-field-flow``), and dynamically by the runtime audit. See
``docs/static-analysis.md`` for the full contract.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.lint.engine import SourceModule
from repro.lint.findings import Finding, make_finding
from repro.obs import sinks

#: Attribute names read as query text anywhere in the tree.
SOURCE_ATTRS = frozenset({"text", "query", "query_text"})

#: Parameter names treated as tainted on function entry.
SOURCE_PARAMS = frozenset({"query", "query_text", "queries", "real_query"})

#: Modules where query plaintext is the trusted working material.
TRUSTED_MODULES = ("repro.sgx", "repro.core.enclave")

#: Packages that model the adversary / engine / unprotected baselines:
#: plaintext observation is their subject matter, not a leak.
ADVERSARY_PACKAGES = frozenset({
    "searchengine", "attacks", "metrics", "baselines",
})

#: String operations through which taint survives a call.
_STR_METHODS = frozenset({
    "format", "join", "lower", "upper", "strip", "lstrip", "rstrip",
    "title", "capitalize", "casefold", "swapcase", "replace", "encode",
    "ljust", "rjust", "center", "zfill", "expandtabs", "split",
    "rsplit", "splitlines", "partition", "rpartition", "removeprefix",
    "removesuffix",
})
_STR_FUNCS = frozenset({"str", "repr", "format", "ascii"})


def _taint_exempt(module: SourceModule) -> bool:
    if module.module.startswith(TRUSTED_MODULES):
        return True
    return module.package in ADVERSARY_PACKAGES


# -- expression taint ------------------------------------------------------


class _Scope:
    """Tainted local names of one function (or the module body)."""

    def __init__(self, pretainted: Iterable[str] = ()) -> None:
        self.tainted: Set[str] = set(pretainted)

    def expr(self, node: Optional[ast.AST]) -> bool:
        """Is *node* (possibly) query text?"""
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            return node.attr in SOURCE_ATTRS or self.expr(node.value)
        if isinstance(node, ast.Subscript):
            return self.expr(node.value)
        if isinstance(node, ast.JoinedStr):
            return any(self.expr(value) for value in node.values)
        if isinstance(node, ast.FormattedValue):
            return self.expr(node.value)
        if isinstance(node, ast.BinOp):
            return self.expr(node.left) or self.expr(node.right)
        if isinstance(node, ast.BoolOp):
            return any(self.expr(value) for value in node.values)
        if isinstance(node, ast.IfExp):
            return self.expr(node.body) or self.expr(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr(elt) for elt in node.elts)
        if isinstance(node, ast.Dict):
            return any(self.expr(value) for value in node.values)
        if isinstance(node, ast.Starred):
            return self.expr(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.expr(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return (self.expr(node.elt)
                    or any(self.expr(gen.iter) for gen in node.generators))
        if isinstance(node, ast.DictComp):
            return (self.expr(node.value)
                    or any(self.expr(gen.iter) for gen in node.generators))
        if isinstance(node, ast.Call):
            return self._call(node)
        return False

    def _call(self, node: ast.Call) -> bool:
        """Calls are sanitizer boundaries except known string ops."""
        func = node.func
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        if isinstance(func, ast.Attribute) and func.attr in _STR_METHODS:
            # "sep".join(tainted) and "{}".format(tainted) taint via
            # arguments; tainted.lower() taints via the receiver.
            return self.expr(func.value) or any(map(self.expr, arguments))
        if isinstance(func, ast.Name) and func.id in _STR_FUNCS:
            return any(map(self.expr, arguments))
        return False

    # -- assignment tracking ------------------------------------------

    def _bind(self, target: ast.AST, tainted: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            else:
                self.tainted.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tainted)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tainted)
        # attribute/subscript targets: object-field taint not tracked

    def assign(self, node: ast.Assign) -> None:
        tainted = self.expr(node.value)
        for target in node.targets:
            self._bind(target, tainted)

    def aug_assign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name) and self.expr(node.value):
            self.tainted.add(node.target.id)

    def ann_assign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self.expr(node.value))

    def for_target(self, node: ast.For) -> None:
        self._bind(node.target, self.expr(node.iter))

    def with_items(self, node) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind(item.optional_vars,
                           self.expr(item.context_expr))


# -- sink detection --------------------------------------------------------


def _is_logger_call(func: ast.Attribute) -> bool:
    return (func.attr in sinks.LOG_METHOD_CALLS
            and isinstance(func.value, ast.Name)
            and func.value.id in sinks.LOG_RECEIVER_NAMES)


def _attribute_mapping(node: ast.Call) -> Optional[ast.Dict]:
    """The literal ``attributes={...}`` mapping of a span call."""
    for keyword in node.keywords:
        if keyword.arg == "attributes" and isinstance(keyword.value,
                                                      ast.Dict):
            return keyword.value
    return None


def _check_mapping(module: SourceModule, scope: _Scope, call: ast.Call,
                   mapping: ast.Dict, where: str,
                   out: List[Finding]) -> None:
    for key, value in zip(mapping.keys, mapping.values):
        if (isinstance(key, ast.Constant) and isinstance(key.value, str)
                and key.value in sinks.FORBIDDEN_ATTRIBUTE_KEYS):
            out.append(make_finding(
                module, call, "span-forbidden-key",
                f"{where} uses forbidden attribute key {key.value!r}"))
        if scope.expr(value):
            out.append(make_finding(
                module, call, "taint-telemetry",
                f"query text flows into {where} attribute value"))


def _check_call(module: SourceModule, scope: _Scope, node: ast.Call,
                taint_active: bool, out: List[Finding]) -> None:
    func = node.func
    arguments = list(node.args) + [kw.value for kw in node.keywords]
    any_tainted = taint_active and any(map(scope.expr, arguments))

    if isinstance(func, ast.Name):
        if func.id == "print" and any_tainted:
            out.append(make_finding(
                module, node, "taint-print",
                "query text flows into print()"))
        return

    if not isinstance(func, ast.Attribute):
        return

    if _is_logger_call(func) and any_tainted:
        out.append(make_finding(
            module, node, "taint-log",
            f"query text flows into {func.value.id}.{func.attr}()"))

    if func.attr in sinks.WIRE_EGRESS_CALLS and any_tainted:
        out.append(make_finding(
            module, node, "taint-wire",
            f"query text flows into wire egress .{func.attr}()"))

    if (func.attr == sinks.WIRE_ENCODER[1]
            and isinstance(func.value, ast.Name)
            and func.value.id == sinks.WIRE_ENCODER[0]
            and any_tainted):
        out.append(make_finding(
            module, node, "taint-wire",
            "query text flows into wire.encode()"))

    if func.attr == "set_attribute":
        if node.args:
            key = node.args[0]
            if (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value in sinks.FORBIDDEN_ATTRIBUTE_KEYS):
                out.append(make_finding(
                    module, node, "span-forbidden-key",
                    f"set_attribute() uses forbidden attribute key "
                    f"{key.value!r}"))
        if taint_active and len(node.args) > 1 and scope.expr(node.args[1]):
            out.append(make_finding(
                module, node, "taint-telemetry",
                "query text flows into set_attribute() value"))

    elif func.attr == "set_attributes":
        for arg in node.args:
            if isinstance(arg, ast.Dict):
                _check_mapping(module, scope, node, arg,
                               "set_attributes()", out)

    elif func.attr in sinks.SPAN_FACTORY_CALLS:
        mapping = _attribute_mapping(node)
        if mapping is not None:
            _check_mapping(module, scope, node, mapping,
                           f"{func.attr}()", out)

    elif func.attr in sinks.METRIC_FACTORY_CALLS:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if keyword.arg in sinks.FORBIDDEN_ATTRIBUTE_KEYS:
                out.append(make_finding(
                    module, node, "span-forbidden-key",
                    f"{func.attr}() uses forbidden label "
                    f"{keyword.arg!r}"))
            if taint_active and scope.expr(keyword.value):
                out.append(make_finding(
                    module, node, "taint-telemetry",
                    f"query text flows into {func.attr}() label value"))


# -- statement walking -----------------------------------------------------


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    """Every Call in *node*, not descending into nested functions."""
    stack = [node]
    while stack:
        current = stack.pop()
        if current is not node and isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.Lambda)):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _analyze_body(module: SourceModule, body: List[ast.stmt],
                  scope: _Scope, taint_active: bool,
                  out: List[Finding]) -> None:
    """Two passes: the first stabilizes taint through loops and
    forward uses, the second reports (findings dedupe via set)."""
    seen: Set[tuple] = set()
    for reporting in (False, True):
        sink: List[Finding] = out if reporting else []
        _walk_statements(module, body, scope, taint_active, sink, seen,
                         reporting)


def _walk_statements(module: SourceModule, body: List[ast.stmt],
                     scope: _Scope, taint_active: bool,
                     out: List[Finding], seen: Set[tuple],
                     reporting: bool) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if reporting:
                _analyze_function(module, stmt, taint_active, out)
            continue
        if isinstance(stmt, ast.ClassDef):
            if reporting:
                for inner in stmt.body:
                    if isinstance(inner, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        _analyze_function(module, inner, taint_active,
                                          out)
            continue

        if isinstance(stmt, ast.Assign):
            scope.assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            scope.aug_assign(stmt)
        elif isinstance(stmt, ast.AnnAssign):
            scope.ann_assign(stmt)
        elif isinstance(stmt, ast.For):
            scope.for_target(stmt)
        elif isinstance(stmt, ast.With):
            scope.with_items(stmt)

        if reporting:
            for call in _calls_in(stmt):
                found: List[Finding] = []
                _check_call(module, scope, call, taint_active, found)
                for finding in found:
                    if finding.fingerprint + (finding.line,) not in seen:
                        seen.add(finding.fingerprint + (finding.line,))
                        out.append(finding)
            if (taint_active and isinstance(stmt, ast.Raise)
                    and isinstance(stmt.exc, ast.Call)):
                arguments = (list(stmt.exc.args)
                             + [kw.value for kw in stmt.exc.keywords])
                if any(map(scope.expr, arguments)):
                    finding = make_finding(
                        module, stmt, "taint-exception",
                        "query text flows into a raised exception "
                        "message")
                    if finding.fingerprint + (finding.line,) not in seen:
                        seen.add(finding.fingerprint + (finding.line,))
                        out.append(finding)

        # descend into compound statements with the same scope
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if inner and not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
                _walk_statements(module, inner, scope, taint_active, out,
                                 seen, reporting)
        for handler in getattr(stmt, "handlers", []) or []:
            _walk_statements(module, handler.body, scope, taint_active,
                             out, seen, reporting)


def _analyze_function(module: SourceModule, node, taint_active: bool,
                      out: List[Finding]) -> None:
    params = [arg.arg for arg in (node.args.posonlyargs + node.args.args
                                  + node.args.kwonlyargs)]
    scope = _Scope(name for name in params if name in SOURCE_PARAMS)
    _analyze_body(module, node.body, scope, taint_active=taint_active,
                  out=out)


# -- entry point -----------------------------------------------------------


def check_taint(module: SourceModule) -> List[Finding]:
    """Run the taint pass (and attribute-key hygiene) on one module.

    In sanctioned scopes the taint rules are off but the
    ``span-forbidden-key`` check still runs: telemetry hygiene is a
    property of our own observability subsystem, whichever package
    emits the span.
    """
    out: List[Finding] = []
    taint_active = not _taint_exempt(module)
    scope = _Scope()
    _analyze_body(module, list(module.tree.body), scope,
                  taint_active=taint_active, out=out)
    return out
