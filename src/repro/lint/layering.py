"""Import-DAG enforcement: protected layers and the obs facade.

Two rules keep the dependency structure a DAG the architecture docs
can rely on:

- ``layer-import-dag`` — the *protected* packages (the simulation
  substrate and protocol layers: ``core``, ``sgx``, ``net``, ``text``,
  ``crypto``, ``gossip``, ``datasets``, ``searchengine``, ``obs``)
  must never import the *top-layer* packages that drive them
  (``cli``, ``experiments``, ``baselines``, ``perf``). Function-local
  imports count: a lazy import is still a dependency edge.
- ``layer-obs-facade`` — outside :mod:`repro.obs` itself,
  observability is imported only through its facade (``from repro
  import obs`` / ``from repro.obs import ...``), never
  ``repro.obs.<submodule>``. The facade re-exports the public
  surface; reaching past it couples call sites to obs-internal module
  layout and bypasses the place where the public API is curated.

``metrics`` and ``attacks`` are measurement layers *over* the
baselines and are deliberately unprotected.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.engine import SourceModule
from repro.lint.findings import Finding, make_finding

#: Packages forming the protected substrate (may not import upward).
PROTECTED_PACKAGES = frozenset({
    "core", "sgx", "net", "text", "crypto", "gossip", "datasets",
    "searchengine", "obs",
})

#: Top-layer packages/modules no protected package may depend on.
TOP_LAYER = frozenset({"cli", "experiments", "baselines", "perf",
                       "faults", "__main__"})

_OBS_FACADE = "repro.obs"


def _imported_modules(node: ast.AST) -> List[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        return [node.module] if node.module and node.level == 0 else []
    return []


def _top_package(dotted: str) -> str:
    parts = dotted.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return ""
    return parts[1]


def check_layering(module: SourceModule) -> List[Finding]:
    out: List[Finding] = []
    source_package = module.package
    inside_obs = module.module.startswith(_OBS_FACADE)

    for node in ast.walk(module.tree):
        for target in _imported_modules(node):
            target_package = _top_package(target)

            if (source_package in PROTECTED_PACKAGES
                    and target_package in TOP_LAYER):
                out.append(make_finding(
                    module, node, "layer-import-dag",
                    f"protected package repro.{source_package} imports "
                    f"repro.{target_package}"))

            if (not inside_obs and target.startswith(_OBS_FACADE + ".")):
                out.append(make_finding(
                    module, node, "layer-obs-facade",
                    f"imports {target} past the repro.obs facade"))
    return out
