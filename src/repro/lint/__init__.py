"""``repro.lint`` — static trust-boundary, taint and determinism analysis.

PR 3 added a *dynamic* privacy audit (:mod:`repro.obs.audit`): wiretap
a live deployment, scan what the adversary sees. Dynamic checks only
cover executed paths; this package is the static complement, in the
spirit of DoubleX's data-flow analysis for browser-extension privacy
(Fass et al., CCS 2021). Four checkers run over the AST of every
module under ``src/repro`` — no imports, no execution, no
dependencies beyond the standard library:

- :mod:`repro.lint.taint` — query-text source→sink flow tracking.
  Sources are query-text bindings (``.text``/``.query`` attribute
  reads, ``query``-named parameters); sinks are the shared registry
  :mod:`repro.obs.sinks` (wire egress, print/logging, exception
  messages, span/metric attributes). Enclave-trusted scope and
  adversary-model packages are sanctioned.
- :mod:`repro.lint.enclave` — the ecall/ocall discipline of
  :mod:`repro.sgx`: enclave-private state (``self.trusted``) only
  inside ``@ecall`` gates, no imports of enclave-internal symbols, no
  ocall-table bypasses.
- :mod:`repro.lint.determinism` — the byte-identical-figures
  contract: no wall clocks, no system entropy, no module-global
  ``random`` outside the sanctioned scopes (``repro.crypto``,
  ``repro.obs.clock``).
- :mod:`repro.lint.layering` — the import DAG (protected packages
  never import ``cli``/``experiments``/``baselines``/``perf``; the
  observability subsystem is only reachable through its facade).

On top of the per-module checkers, a *whole-program* pass builds a
program-dependence graph per file (:mod:`repro.lint.pdg`), links the
modules through the import table (:mod:`repro.lint.linking`) and
walks taint across function, method and module boundaries
(:mod:`repro.lint.paths`) — rules ``taint-interprocedural`` and
``taint-field-flow``, each carrying a full source→sink witness path.
Per-file analysis fans out over a process pool (``repro lint
--jobs N``); findings are byte-identical for any ``N``.

Run it with ``python -m repro lint`` (see ``docs/static-analysis.md``)
or via the CI gate ``benchmarks/check_lint.py``. Grandfathered
findings live in the reviewed baseline file ``lint-baseline.txt``;
deliberate per-line exceptions use ``# lint: allow(rule-id)`` pragmas
(:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from repro.lint.baseline import (Baseline, format_baseline, load_baseline,
                                 scan_pragmas)
from repro.lint.engine import (SourceModule, collect_modules, default_root,
                               run_lint)
from repro.lint.findings import RULES, Finding, findings_to_json, format_text

__all__ = [
    "Finding",
    "RULES",
    "findings_to_json",
    "format_text",
    "Baseline",
    "load_baseline",
    "format_baseline",
    "scan_pragmas",
    "SourceModule",
    "collect_modules",
    "default_root",
    "run_lint",
]
