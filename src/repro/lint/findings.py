"""The findings model: rule catalogue, one finding, text/JSON output.

A finding is identified for baseline purposes by its *fingerprint*
``(rule, path, message)`` — deliberately excluding the line number, so
grandfathered findings survive unrelated edits above them. Messages
must therefore be stable: they name classes, functions and symbols,
never line numbers or volatile values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

#: rule id -> (one-line description, fix hint). The catalogue is the
#: contract between checkers, docs and tests: every finding's ``rule``
#: must be a key here (asserted by ``tests/lint/test_findings.py``).
RULES = {
    # -- taint (repro.lint.taint) ------------------------------------
    "taint-wire": (
        "query text flows into a wire egress call outside the enclave",
        "seal the payload inside an @ecall before it reaches "
        "send/request/respond (see docs/static-analysis.md#taint)"),
    "taint-print": (
        "query text flows into print()",
        "drop the output or log a salted bucket via "
        "repro.obs.query_hash_bucket"),
    "taint-log": (
        "query text flows into a logging call",
        "log repro.obs.query_hash_bucket(text) instead of the text"),
    "taint-exception": (
        "query text flows into an exception message",
        "raise with a constant message; exception text ends up in "
        "logs and crash reports"),
    "taint-telemetry": (
        "query text flows into a span or metric attribute",
        "attach repro.obs.query_hash_bucket(text), never the text"),
    # -- interprocedural taint (repro.lint.pdg / linking / paths) ----
    "taint-interprocedural": (
        "query text reaches an adversary-visible sink across function "
        "or module boundaries",
        "follow the witness path; declassify with "
        "repro.obs.query_hash_bucket before the first hop, or seal "
        "inside the enclave (docs/static-analysis.md#pdg)"),
    "taint-field-flow": (
        "query text reaches an adversary-visible sink through an "
        "object field",
        "don't park plaintext on long-lived fields; hash or seal it "
        "at the write (docs/static-analysis.md#pdg)"),
    "span-forbidden-key": (
        "span/metric attribute uses a key the telemetry audit forbids",
        "pick a key outside repro.obs.sinks.FORBIDDEN_ATTRIBUTE_KEYS "
        "(these mark real/fake legs or carry secrets)"),
    # -- enclave boundary (repro.lint.enclave) -----------------------
    "enclave-trusted-outside-ecall": (
        "enclave-private state touched outside an @ecall gate",
        "move the access into an @ecall method (or a helper only "
        "reachable from ecalls)"),
    "enclave-internal-import": (
        "untrusted module imports an enclave-internal symbol",
        "use the public repro.sgx API; underscore symbols are "
        "trusted-side implementation"),
    "enclave-ocall-bypass": (
        "ocall table accessed directly instead of via Enclave.ocall",
        "route through Enclave.ocall so crossings are gated and "
        "charged"),
    # -- determinism (repro.lint.determinism) ------------------------
    "det-wall-clock": (
        "wall-clock read in simulation code",
        "take time from the simulator (or repro.obs.clock); wall "
        "clocks break byte-identical reproduction"),
    "det-system-entropy": (
        "system entropy (os.urandom/SystemRandom) outside repro.crypto",
        "thread a seeded random.Random through, or use "
        "repro.crypto.rng.system_rng() where nondeterminism is the "
        "point"),
    "det-global-random": (
        "module-global random.* call (shared, unseeded stream)",
        "use an explicit random.Random(seed) instance"),
    "det-unseeded-rng": (
        "random.Random() constructed without a seed",
        "pass a seed, or use repro.crypto.rng.system_rng() for "
        "deliberately nondeterministic key material"),
    # -- layering (repro.lint.layering) ------------------------------
    "layer-import-dag": (
        "protected package imports a top-layer package",
        "core/sgx/net/text/... must not depend on "
        "cli/experiments/baselines/perf; invert the dependency"),
    "layer-obs-facade": (
        "observability imported past its facade",
        "import from repro.obs (the facade re-exports the public "
        "surface), not repro.obs.<submodule>"),
    # -- engine ------------------------------------------------------
    "parse-error": (
        "file does not parse",
        "fix the syntax error"),
}


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis finding, anchored to ``path:line``.

    Interprocedural findings additionally carry a *witness*: the
    source→sink path as ``(file, line, symbol)`` hops, rendered in
    the text report and the JSON payload. The witness never enters
    the fingerprint — line numbers shift under unrelated edits.
    """

    path: str        # posix path relative to the analysis root
    line: int
    rule: str
    message: str
    hint: str = ""
    witness: Tuple[Tuple[str, int, str], ...] = field(default=())

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line shifts."""
        return (self.rule, self.path, self.message)

    @property
    def stable_id(self) -> str:
        """A short line-free digest of the fingerprint, for machine
        consumers that want the baseline contract in one token."""
        joined = "\x00".join(self.fingerprint).encode("utf-8")
        return hashlib.sha256(joined).hexdigest()[:16]

    def format(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        hint = self.hint or RULES.get(self.rule, ("", ""))[1]
        if hint:
            text += f"\n    hint: {hint}"
        if self.witness:
            steps = [f"{file}:{line} {symbol}"
                     for file, line, symbol in self.witness]
            text += "\n    witness: " + \
                "\n          -> ".join(steps)
        return text


def make_finding(module, node, rule: str, message: str) -> Finding:
    """Build a finding for an AST *node* of a :class:`SourceModule`."""
    return Finding(path=module.relpath, line=getattr(node, "lineno", 0),
                   rule=rule, message=message)


def format_text(findings: Iterable[Finding]) -> str:
    items = sorted(findings)
    if not items:
        return "repro lint: clean (0 findings)"
    lines = [finding.format() for finding in items]
    lines.append(f"repro lint: {len(items)} finding(s)")
    return "\n".join(lines)


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Machine-readable findings.

    Every entry carries ``fingerprint`` — the line-free baseline
    digest that survives unrelated line shifts — and ``witness``, the
    source→sink hops of interprocedural findings (``[]`` for
    single-function rules).
    """
    payload: List[dict] = [
        {"path": f.path, "line": f.line, "rule": f.rule,
         "message": f.message,
         "hint": f.hint or RULES.get(f.rule, ("", ""))[1],
         "fingerprint": f.stable_id,
         "witness": [{"file": file, "line": line, "symbol": symbol}
                     for file, line, symbol in f.witness]}
        for f in sorted(findings)]
    return json.dumps(payload, indent=2, sort_keys=True)
