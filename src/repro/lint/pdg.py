"""Per-module program-dependence-graph construction.

The per-function checker (:mod:`repro.lint.taint`) stops at every
call boundary; this module builds the structure that lets the linter
walk *through* them, in the spirit of DoubleX's PDG for browser
extensions (Fass et al., CCS 2021). For one module it records:

- **def-use chains** — which *taint labels* each local name carries,
  through assignments, augmented assigns, tuple unpacking, loops,
  ``with`` items and comprehension scopes;
- **field writes/reads on ``self``** — ``self._q = query`` creates an
  edge into a per-class field node; any later ``self._q`` read in the
  same class carries that node as a label;
- **call sites** — every resolvable call (module-level functions,
  ``self`` methods, imported names, dotted module paths, nested
  functions and assigned lambdas) with the label sets of each
  argument, so the linker can add caller-argument → callee-parameter
  and callee-return → call-site-value edges;
- **sources** — ``SOURCE_ATTRS`` attribute reads and
  ``SOURCE_PARAMS``-named parameters, exactly the per-function
  checker's definition;
- **sinks** — label flows into the shared :mod:`repro.obs.sinks`
  registry (wire egress, print/logging, raised exception messages,
  span/metric attribute values).

Labels are *nodes* of the eventual whole-program graph; an expression
evaluates to a frozenset of them. Everything in a :class:`ModulePDG`
is plain data (tuples, strings, ints) so per-file construction can
fan out over a ``multiprocessing`` pool and the results pickle back
to the linking parent.

Sanitizer contract (same as the per-function pass): calls propagate
labels only through known string operations; every other unresolved
call is a sanitizer boundary, and the linker additionally drops edges
into declassifier functions (``query_hash_bucket``) and the trusted
enclave closure (``repro.sgx``/``repro.core.enclave``). Exempt
modules (trusted + adversary packages) contribute no sources, sinks
or call sites at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.engine import SourceModule
from repro.lint.taint import (SOURCE_ATTRS, SOURCE_PARAMS, _STR_FUNCS,
                              _STR_METHODS, _is_logger_call, _taint_exempt)
from repro.obs import sinks

#: A graph node: a kind-tagged tuple —
#: ``("param", func_qual, name)``, ``("ret", func_qual)``,
#: ``("field", class_qual, attr)``, ``("src", relpath, line, descr)``,
#: ``("callret", relpath, line, col)`` or
#: ``("sink", relpath, line, col, descr)``.
Node = Tuple
#: A witness hop: ``(file, line, symbol)``.
Hop = Tuple[str, int, str]

Labels = FrozenSet[Node]
_EMPTY: Labels = frozenset()


def node_key(node: Node) -> Tuple[str, ...]:
    """Deterministic sort key for mixed-shape node tuples."""
    return tuple(str(part) for part in node)


@dataclass
class FunctionInfo:
    """One analyzed function (or method / assigned lambda)."""

    qual: str                 # "module::Class.method" / "module::func"
    name: str                 # short display name ("Class.method")
    params: List[str]         # positional + kw-only, in order
    vararg: Optional[str]
    kwarg: Optional[str]
    line: int
    is_method: bool           # leading ``self`` stripped by the linker
    cls: Optional[str]        # owning class qual, for methods


@dataclass
class ClassInfo:
    """One class: its qual and method table, for self/ctor linking."""

    qual: str                 # "module::Class"
    name: str
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qual


@dataclass
class CallSite:
    """One resolvable call with the labels of every argument."""

    caller: str               # func qual of the calling scope
    cls: Optional[str]        # enclosing class qual (for self.<m>())
    line: int
    ref: Tuple                # ("local", qual) | ("name", n) |
                              # ("self", attr) | ("dotted", p0, p1, ...)
    pos: List[List[Node]]     # labels per positional argument
    kw: Dict[str, List[Node]]
    star: List[Node]          # labels under *args / **kwargs
    ret_node: Node


@dataclass
class ModulePDG:
    """The pickled unit one pool worker produces for one file."""

    relpath: str
    module: str
    exempt: bool
    imports: Dict[str, Tuple[str, Optional[str]]] = field(
        default_factory=dict)   # local name -> (module, symbol | None)
    toplevel: Dict[str, Tuple[str, str]] = field(
        default_factory=dict)   # name -> ("func"|"class", qual/short)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    edges: List[Tuple[Node, Node, str, Hop]] = field(default_factory=list)
    sources: Dict[Node, Hop] = field(default_factory=dict)
    sink_info: Dict[Node, Tuple[str, Hop]] = field(default_factory=dict)
    callsites: List[CallSite] = field(default_factory=list)


#: Terminal callee names that declassify: linking into them is never
#: an information flow the analysis should chase.
DECLASSIFIER_FUNCS = frozenset({"query_hash_bucket", "len"})


def _resolve_relative(module: str, level: int,
                      target: Optional[str]) -> Optional[str]:
    """``from ..x import y`` inside *module* → absolute module name."""
    parts = module.split(".")
    if level > len(parts):
        return None
    base = parts[:len(parts) - level]
    if target:
        base.append(target)
    return ".".join(base) if base else None


def _collect_imports(module: SourceModule
                     ) -> Dict[str, Tuple[str, Optional[str]]]:
    """Local name → (source module, symbol) over the whole tree
    (function-local imports included — a lazy import still links)."""
    table: Dict[str, Tuple[str, Optional[str]]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                table[local] = (target, None)
        elif isinstance(node, ast.ImportFrom):
            source = node.module if node.level == 0 else \
                _resolve_relative(module.module, node.level, node.module)
            if source is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = (source, alias.name)
    return table


# -- the per-function label walker ----------------------------------------


class _FunctionBuilder:
    """Walks one function body, mapping names to label sets and
    recording edges / call sites / sources / sinks into the module
    builder. Statements are walked twice (the intra checker's loop
    stabilization); all recording is idempotent — nodes are keyed by
    source position, edges dedupe through a set."""

    def __init__(self, mb: "_ModuleBuilder", qual: str, name: str,
                 args: Optional[ast.arguments], line: int,
                 cls: Optional[str] = None) -> None:
        self.mb = mb
        self.qual = qual
        self.name = name
        self.cls = cls
        self.scope: Dict[str, Labels] = {}
        self.local_funcs: Dict[str, str] = {}
        params: List[str] = []
        vararg = kwarg = None
        if args is not None:
            ordered = (list(args.posonlyargs) + list(args.args)
                       + list(args.kwonlyargs))
            params = [arg.arg for arg in ordered]
            vararg = args.vararg.arg if args.vararg else None
            kwarg = args.kwarg.arg if args.kwarg else None
        for pname in params + [p for p in (vararg, kwarg) if p]:
            node = ("param", qual, pname)
            self.scope[pname] = frozenset({node})
            if pname in SOURCE_PARAMS and not mb.exempt:
                mb.pdg.sources[node] = (
                    mb.relpath, line,
                    f"parameter {pname!r} of {name}")
        is_method = cls is not None and params[:1] == ["self"]
        self.mb.pdg.functions[qual] = FunctionInfo(
            qual=qual, name=name,
            params=params[1:] if is_method else params,
            vararg=vararg, kwarg=kwarg, line=line,
            is_method=is_method, cls=cls)

    # -- driving ------------------------------------------------------

    def run(self, body: List[ast.stmt]) -> None:
        for _ in range(2):
            self.walk(body)

    def walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.mb.add_function(stmt, parent=self, cls=None)
            return
        if isinstance(stmt, ast.ClassDef):
            self.mb.add_class(stmt, parent=self)
            return
        if isinstance(stmt, ast.Assign):
            self.assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self.scope[stmt.target.id] = \
                    self.scope.get(stmt.target.id, _EMPTY) | value
            elif self._is_self_attr(stmt.target):
                self.field_write(stmt.target, value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            labels = self.eval(stmt.value) if stmt.value else _EMPTY
            for label in sorted(labels, key=node_key):
                self.mb.edge(label, ("ret", self.qual), "ret",
                             (self.mb.relpath, stmt.lineno,
                              f"return of {self.name}"))
        elif isinstance(stmt, ast.Raise):
            self.raise_stmt(stmt)
        elif isinstance(stmt, ast.For):
            self.bind(stmt.target, self.eval(stmt.iter))
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                labels = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, labels)
            self.walk(stmt.body)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                self.eval(stmt.msg)
        else:
            # Unmodelled statement kinds: evaluate expression children
            # so call sites / sinks inside them are still seen.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def assign(self, stmt: ast.Assign) -> None:
        if (isinstance(stmt.value, ast.Lambda)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)):
            self.mb.add_lambda(stmt.targets[0].id, stmt.value,
                               parent=self)
            self.scope[stmt.targets[0].id] = _EMPTY
            return
        labels = self.eval(stmt.value)
        for target in stmt.targets:
            self.bind(target, labels)

    def bind(self, target: ast.AST, labels: Labels) -> None:
        if isinstance(target, ast.Name):
            self.scope[target.id] = labels
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind(elt, labels)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, labels)
        elif self._is_self_attr(target):
            self.field_write(target, labels)
        # other attribute/subscript targets: untracked (conservative)

    def _is_self_attr(self, target: ast.AST) -> bool:
        return (self.cls is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self")

    def field_write(self, target: ast.Attribute, labels: Labels) -> None:
        node = ("field", self.cls, target.attr)
        short = self.cls.split("::", 1)[-1]
        for label in sorted(labels, key=node_key):
            self.mb.edge(label, node, "field-write",
                         (self.mb.relpath, target.lineno,
                          f"{short}.{target.attr} ="))

    def raise_stmt(self, stmt: ast.Raise) -> None:
        if not isinstance(stmt.exc, ast.Call):
            if stmt.exc is not None:
                self.eval(stmt.exc)
            return
        call = stmt.exc
        labels: Labels = _EMPTY
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            labels |= self.eval(arg)
        self.sink(call, "a raised exception message", labels)

    # -- expression labels --------------------------------------------

    def eval(self, node: Optional[ast.AST]) -> Labels:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return self.scope.get(node.id, _EMPTY)
        if isinstance(node, ast.Attribute):
            return self.attribute(node)
        if isinstance(node, ast.Call):
            return self.call(node)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.JoinedStr):
            out = _EMPTY
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.BoolOp):
            out = _EMPTY
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = _EMPTY
            for elt in node.elts:
                out |= self.eval(elt)
            return out
        if isinstance(node, ast.Dict):
            out = _EMPTY
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            labels = self.eval(node.value)
            self.bind(node.target, labels)
            return labels
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            return self.comprehension(node)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comp in node.comparators:
                self.eval(comp)
            return _EMPTY
        if isinstance(node, ast.UnaryOp):
            self.eval(node.operand)
            return _EMPTY
        if isinstance(node, ast.Lambda):
            # anonymous lambda in expression position: its body is
            # analyzed only when bound to a name (add_lambda)
            return _EMPTY
        return _EMPTY

    def attribute(self, node: ast.Attribute) -> Labels:
        out: Labels = _EMPTY
        if self._is_self_attr(node):
            out |= frozenset({("field", self.cls, node.attr)})
        else:
            out |= self.eval(node.value)
        if node.attr in SOURCE_ATTRS and not self.mb.exempt:
            source = ("src", self.mb.relpath, node.lineno, node.attr)
            self.mb.pdg.sources[source] = (
                self.mb.relpath, node.lineno,
                f"attribute read .{node.attr} in {self.name}")
            out |= frozenset({source})
        return out

    def comprehension(self, node) -> Labels:
        saved: Dict[str, Labels] = {}
        bound: List[str] = []
        for gen in node.generators:
            labels = self.eval(gen.iter)
            for name in _target_names(gen.target):
                if name not in bound:
                    saved[name] = self.scope.get(name, _EMPTY)
                    bound.append(name)
            self.bind(gen.target, labels)
            for cond in gen.ifs:
                self.eval(cond)
        if isinstance(node, ast.DictComp):
            self.eval(node.key)
            out = self.eval(node.value)
        else:
            out = self.eval(node.elt)
        for name in bound:
            self.scope[name] = saved[name]
        return out

    # -- calls --------------------------------------------------------

    def call(self, node: ast.Call) -> Labels:
        func = node.func
        pos: List[Labels] = []
        star: Labels = _EMPTY
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                star |= self.eval(arg.value)
            else:
                pos.append(self.eval(arg))
        kw: Dict[str, Labels] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                star |= self.eval(keyword.value)
            else:
                kw[keyword.arg] = self.eval(keyword.value)
        everything = star
        for labels in pos:
            everything |= labels
        for labels in kw.values():
            everything |= labels

        self.check_sinks(node, func, pos, kw, everything)

        # string operations propagate labels through the call
        if isinstance(func, ast.Attribute) and func.attr in _STR_METHODS:
            return self.eval(func.value) | everything
        if isinstance(func, ast.Name) and func.id in _STR_FUNCS:
            return everything

        ref = self.callee_ref(func)
        if ref is None:
            return _EMPTY  # unresolved call: sanitizer boundary
        ret_node = ("callret", self.mb.relpath, node.lineno,
                    node.col_offset)
        self.mb.callsite(CallSite(
            caller=self.qual, cls=self.cls, line=node.lineno, ref=ref,
            pos=[sorted(labels, key=node_key) for labels in pos],
            kw={name: sorted(labels, key=node_key)
                for name, labels in kw.items()},
            star=sorted(star, key=node_key), ret_node=ret_node))
        return frozenset({ret_node})

    def callee_ref(self, func: ast.AST) -> Optional[Tuple]:
        if isinstance(func, ast.Name):
            if func.id in self.local_funcs:
                return ("local", self.local_funcs[func.id])
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id == "self" and self.cls):
                return ("self", func.attr)
            parts = _dotted_parts(func)
            if parts is not None:
                return ("dotted",) + tuple(parts)
        return None

    # -- sinks --------------------------------------------------------

    def sink(self, node: ast.AST, descr: str, labels: Labels) -> None:
        if not labels or self.mb.exempt:
            return
        sink_node = ("sink", self.mb.relpath, node.lineno,
                     node.col_offset, descr)
        self.mb.pdg.sink_info[sink_node] = (
            descr, (self.mb.relpath, node.lineno, self.name))
        for label in sorted(labels, key=node_key):
            self.mb.edge(label, sink_node, "sink",
                         (self.mb.relpath, node.lineno, descr))

    def check_sinks(self, node: ast.Call, func: ast.AST,
                    pos: List[Labels], kw: Dict[str, Labels],
                    everything: Labels) -> None:
        if isinstance(func, ast.Name):
            if func.id == "print":
                self.sink(node, "print()", everything)
            return
        if not isinstance(func, ast.Attribute):
            return
        if _is_logger_call(func):
            self.sink(node, f"{func.value.id}.{func.attr}()", everything)
        if func.attr in sinks.WIRE_EGRESS_CALLS:
            self.sink(node, f"wire egress .{func.attr}()", everything)
        if (func.attr == sinks.WIRE_ENCODER[1]
                and isinstance(func.value, ast.Name)
                and func.value.id == sinks.WIRE_ENCODER[0]):
            self.sink(node, "wire.encode()", everything)
        if func.attr == "set_attribute" and len(pos) > 1:
            self.sink(node, "set_attribute() value", pos[1])
        elif func.attr == "set_attributes":
            for labels in pos:
                self.sink(node, "set_attributes() value", labels)
        elif func.attr in sinks.SPAN_FACTORY_CALLS:
            labels = kw.get("attributes", _EMPTY)
            self.sink(node, f"{func.attr}() attribute value", labels)
        elif func.attr in sinks.METRIC_FACTORY_CALLS:
            out: Labels = _EMPTY
            for labels in kw.values():
                out |= labels
            self.sink(node, f"{func.attr}() label value", out)


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _dotted_parts(func: ast.Attribute) -> Optional[List[str]]:
    """``a.b.c`` → ["a", "b", "c"]; None when any link is not a Name."""
    parts = [func.attr]
    value = func.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if not isinstance(value, ast.Name):
        return None
    parts.append(value.id)
    return list(reversed(parts))


# -- the module builder ---------------------------------------------------


class _ModuleBuilder:
    def __init__(self, module: SourceModule) -> None:
        self.relpath = module.relpath
        self.exempt = _taint_exempt(module)
        self.pdg = ModulePDG(relpath=module.relpath,
                             module=module.module, exempt=self.exempt,
                             imports=_collect_imports(module))
        self._edges: set = set()
        self._analyzed: set = set()  # id(def node): one analysis each

    def edge(self, src: Node, dst: Node, kind: str, hop: Hop) -> None:
        entry = (src, dst, kind, hop)
        if entry not in self._edges:
            self._edges.add(entry)
            self.pdg.edges.append(entry)

    def callsite(self, site: CallSite) -> None:
        # keyed by position: the second walk refreshes the label
        # snapshot taken by the first
        for index, existing in enumerate(self.pdg.callsites):
            if (existing.ret_node == site.ret_node
                    and existing.caller == site.caller):
                self.pdg.callsites[index] = site
                return
        self.pdg.callsites.append(site)

    def add_function(self, node, parent: Optional[_FunctionBuilder],
                     cls: Optional[str]) -> None:
        if id(node) in self._analyzed:
            return
        self._analyzed.add(id(node))
        if parent is None or parent.qual.endswith("::<module>"):
            qual = f"{self.pdg.module}::" + (
                f"{cls.split('::', 1)[-1]}.{node.name}" if cls
                else node.name)
        else:
            qual = f"{parent.qual}.{node.name}"
        short = qual.split("::", 1)[-1]
        builder = _FunctionBuilder(self, qual, short, node.args,
                                   node.lineno, cls=cls)
        if parent is not None:
            parent.local_funcs[node.name] = qual
        if cls is None and (parent is None
                            or parent.qual.endswith("::<module>")):
            self.pdg.toplevel[node.name] = ("func", qual)
        builder.run(node.body)

    def add_lambda(self, name: str, node: ast.Lambda,
                   parent: _FunctionBuilder) -> None:
        if id(node) in self._analyzed:
            return
        self._analyzed.add(id(node))
        if parent.qual.endswith("::<module>"):
            qual = f"{self.pdg.module}::{name}"
            self.pdg.toplevel[name] = ("func", qual)
        else:
            qual = f"{parent.qual}.{name}"
        short = qual.split("::", 1)[-1]
        builder = _FunctionBuilder(self, qual, short, node.args,
                                   node.lineno, cls=parent.cls)
        parent.local_funcs[name] = qual
        ret = ast.Return(value=node.body)
        ast.copy_location(ret, node.body)
        builder.run([ret])

    def add_class(self, node: ast.ClassDef,
                  parent: Optional[_FunctionBuilder]) -> None:
        if id(node) in self._analyzed:
            return
        self._analyzed.add(id(node))
        qual = f"{self.pdg.module}::{node.name}"
        info = ClassInfo(qual=qual, name=node.name)
        self.pdg.classes[node.name] = info
        if parent is None or parent.qual.endswith("::<module>"):
            self.pdg.toplevel[node.name] = ("class", node.name)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qual.split('::', 1)[0]}::" \
                              f"{node.name}.{item.name}"
                info.methods[item.name] = method_qual
                builder = _FunctionBuilder(
                    self, method_qual, f"{node.name}.{item.name}",
                    item.args, item.lineno, cls=qual)
                builder.run(item.body)


def build_module_pdg(module: SourceModule) -> ModulePDG:
    """Build the per-module PDG for one parsed source file.

    Imports and top-level names are recorded even for exempt modules
    (they may sit on a re-export chain); their flows are stripped at
    the end — trusted and adversary modules are opaque declassifiers.
    """
    mb = _ModuleBuilder(module)
    body_builder = _FunctionBuilder(
        mb, f"{module.module}::<module>", "<module>", None, 1)
    # the module body is not a linkable function
    mb.pdg.functions.pop(f"{module.module}::<module>", None)
    body_builder.run(list(module.tree.body))
    if mb.exempt:
        # opaque: trusted / adversary modules contribute structure for
        # re-export resolution but no flows of their own
        mb.pdg.edges = []
        mb.pdg.sources = {}
        mb.pdg.sink_info = {}
        mb.pdg.callsites = []
    return mb.pdg
