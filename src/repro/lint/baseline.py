"""Baseline files and inline suppression pragmas.

Two mechanisms keep ``repro lint`` actionable as the codebase grows:

- **Baseline file** (``lint-baseline.txt`` at the repo root) — for
  *grandfathered* findings: real rule hits that predate the rule (or
  are sanctioned legacy) and are tracked until someone fixes them.
  One tab-separated entry per line, ``rule<TAB>path<TAB>message``,
  matched against :attr:`Finding.fingerprint` (no line numbers, so
  entries survive unrelated edits). Every entry must carry a
  justification in a ``#`` comment above it — the file is reviewed
  like code.
- **Inline pragma** — for *deliberate, permanent* exceptions where
  the flagged behaviour is the feature (e.g. the CLI echoing the
  local user's own query back to their own terminal). Append
  ``# lint: allow(rule-id)`` — optionally several ids, comma
  separated, and a reason after ``--`` — to the offending line::

      print(f"query: {query!r}")  # lint: allow(taint-print) -- own tty

Prefer the pragma when the code is right and the rule has a sanctioned
exception; prefer the baseline when the code is wrong but not being
fixed in this change. ``repro lint --write-baseline`` regenerates the
file from the current findings (justifications then need filling in).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding

_PRAGMA = re.compile(r"#\s*lint:\s*allow\(([^)]*)\)")

#: Default baseline filename, looked up at the analysis root's parent
#: (the repo root, when the root is ``<repo>/src``).
DEFAULT_BASELINE_NAME = "lint-baseline.txt"


def scan_pragmas(source_lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids allowed on that line.

    The special id ``*`` allows every rule on the line.
    """
    pragmas: Dict[int, Set[str]] = {}
    for number, line in enumerate(source_lines, start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        if rules:
            pragmas[number] = rules
    return pragmas


def pragma_allows(pragmas: Dict[int, Set[str]], finding: Finding) -> bool:
    rules = pragmas.get(finding.line)
    return bool(rules) and (finding.rule in rules or "*" in rules)


class Baseline:
    """A parsed baseline file: a set of grandfathered fingerprints."""

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = (),
                 path: Optional[Path] = None) -> None:
        self.entries: Set[Tuple[str, str, str]] = set(entries)
        self.path = path

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def apply(self, findings: Iterable[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Split *findings* into (fresh, grandfathered)."""
        fresh: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            (grandfathered if self.matches(finding)
             else fresh).append(finding)
        return fresh, grandfathered

    def stale_entries(self, findings: Iterable[Finding]
                      ) -> Set[Tuple[str, str, str]]:
        """Baseline entries no longer matched by any finding — fixed
        code whose entry should be deleted."""
        live = {finding.fingerprint for finding in findings}
        return self.entries - live


class BaselineError(ValueError):
    """Raised on malformed baseline lines."""


def parse_baseline(text: str, path: Optional[Path] = None) -> Baseline:
    entries: Set[Tuple[str, str, str]] = set()
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t", 2)
        if len(parts) != 3:
            raise BaselineError(
                f"{path or 'baseline'}:{number}: expected "
                f"rule<TAB>path<TAB>message, got {raw!r}")
        entries.add((parts[0], parts[1], parts[2]))
    return Baseline(entries, path=path)


def load_baseline(path: Path) -> Baseline:
    return parse_baseline(path.read_text(encoding="utf-8"), path=path)


def format_baseline(findings: Iterable[Finding]) -> str:
    """Render *findings* as a fresh baseline file body.

    Each entry gets a justification placeholder; the file is not fit
    to commit until every placeholder is replaced with a reason.
    """
    lines = [
        "# repro lint baseline — grandfathered findings.",
        "# One entry per line: rule<TAB>path<TAB>message.",
        "# Every entry MUST carry a justification comment; entries are",
        "# matched by fingerprint (no line numbers), and stale entries",
        "# are reported so fixed code gets its entry removed.",
        "",
    ]
    for finding in sorted(set(findings)):
        lines.append("# JUSTIFY: <why is this finding sanctioned?>")
        lines.append("\t".join(finding.fingerprint))
    return "\n".join(lines) + "\n"
