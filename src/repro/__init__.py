"""CYCLOSA reproduction: decentralized private web search (ICDCS 2018).

This package reimplements, in pure Python, the full CYCLOSA system of
Pires et al. together with every substrate it depends on: a simulated
Intel SGX enclave runtime, a from-scratch cryptographic toolkit, a
deterministic discrete-event network simulator, gossip-based peer
sampling, a TF-IDF search engine with bot detection, an NLP substrate
(Porter stemming, LDA, a synthetic WordNet), a synthetic AOL-like query
log, five state-of-the-art baselines (TOR, TrackMeNot, GooPIR, PEAS,
X-Search), and the SimAttack re-identification attack used to evaluate
them all.

Quickstart::

    from repro import CyclosaNetwork

    net = CyclosaNetwork.create(num_nodes=20, seed=7)
    user = net.node(0)
    result = user.search("flu symptoms treatment")
    print(result.documents)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__all__ = ["CyclosaNetwork", "SearchResult", "CyclosaConfig"]

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "CyclosaNetwork": ("repro.core.client", "CyclosaNetwork"),
    "SearchResult": ("repro.core.client", "SearchResult"),
    "CyclosaConfig": ("repro.core.config", "CyclosaConfig"),
}


def __getattr__(name: str):
    """Lazily resolve the top-level API (keeps subpackages importable
    without pulling the whole dependency graph)."""
    try:
        module_name, attribute = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)
