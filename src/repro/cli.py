"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list``                      — list every reproducible experiment.
- ``run <experiment> [...]``    — run one experiment's paper-scale CLI.
- ``all``                       — run every analytic experiment in order.
- ``search <query>``            — one protected search on a demo overlay
  (``--trace`` adds the per-stage latency breakdown).
- ``obs [query]``               — run a traced search and dump the
  observability output (breakdown table, trace JSON-lines, or a
  Prometheus metrics snapshot).
- ``perf``                      — run the pipeline perf benches and
  write the ``BENCH_pipeline.json`` trajectory baseline (see
  ``docs/performance.md``); ``--profile`` adds the deterministic
  subsystem-attribution section.
- ``profile <scenario>``        — deterministic sampling profile of a
  named scenario: per-subsystem CPU/heap attribution, collapsed-stack
  flamegraph files and a chrome-trace view with the sample track
  merged in (see docs/observability.md).
- ``lint [paths...]``           — run the trust-boundary / taint /
  determinism / layering analyzer over ``src/``, incl. the
  whole-program PDG taint pass (``--jobs N`` parallelises per-file
  analysis; see ``docs/static-analysis.md``).
- ``chaos``                     — run the seeded fault-matrix sweep
  over the protected-search pipeline and report success rate /
  retries / latency per cell (see ``docs/robustness.md``).
- ``monitor``                   — run the churn+chaos soak under the
  time-series flight recorder: per-window dashboard, deterministic
  JSON report or OpenMetrics series, plus the SLO burn-rate verdict
  (see ``docs/observability.md``).
- ``scale``                     — run a city-scale churn+chaos overlay
  on the space-partitioned sharded kernel (default: the 10k-node
  ROADMAP scenario); ``--digest`` adds the event-order digest that
  witnesses byte-identity across shard/worker layouts (see
  ``docs/performance.md``).

Examples::

    python -m repro list
    python -m repro run fig5
    python -m repro search "flu symptoms treatment"
    python -m repro search --trace "flu symptoms treatment"
    python -m repro obs --format prom
    python -m repro perf --output BENCH_pipeline.json
    python -m repro perf --profile
    python -m repro profile search
    python -m repro profile simulator --events 100000 --no-write
    python -m repro lint --baseline
    python -m repro lint --format json src/repro/core
    python -m repro chaos
    python -m repro chaos --cells combo ratelimit-storm --json
    python -m repro monitor
    python -m repro monitor --json
    python -m repro monitor --format openmetrics
    python -m repro scale
    python -m repro scale --nodes 100000 --shards 16 --duration 5
    python -m repro scale --shards 4 --workers 2 --digest --json
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Dict, List, Optional

#: experiment alias -> (module, description)
EXPERIMENTS: Dict[str, tuple] = {
    "table1": ("repro.experiments.table1_properties",
               "Table I  — property matrix (behavioural probes)"),
    "table2": ("repro.experiments.table2_categorizer",
               "Table II — categorizer precision/recall"),
    "fig5": ("repro.experiments.fig5_reidentification",
             "Fig 5    — re-identification rates"),
    "fig6": ("repro.experiments.fig6_accuracy",
             "Fig 6    — correctness/completeness"),
    "fig7": ("repro.experiments.fig7_adaptive_k",
             "Fig 7    — adaptive-k CDF"),
    "fig8a": ("repro.experiments.fig8a_latency",
              "Fig 8a   — end-to-end latency CDFs"),
    "fig8b": ("repro.experiments.fig8b_k_latency",
              "Fig 8b   — latency vs k"),
    "fig8c": ("repro.experiments.fig8c_throughput",
              "Fig 8c   — throughput/latency saturation"),
    "fig8d": ("repro.experiments.fig8d_ratelimit",
              "Fig 8d   — rate-limit survival"),
    "ablations": ("repro.experiments.ablations",
                  "Ablations — adaptive k, fake source, paths, EPC"),
    "robustness": ("repro.experiments.robustness",
                   "Extension — Byzantine relays and churn"),
    "sweep": ("repro.experiments.sensitivity_sweep",
              "Extension — workload sensitivity sweep (§IX)"),
    "traffic": ("repro.experiments.traffic_analysis",
                "Extension — size-leak quantification (§IV)"),
    "calibration": ("repro.experiments.calibration",
                    "Tooling — generator-knob calibration sweep"),
    "fullstack": ("repro.experiments.fullstack_privacy",
                  "Validation — SimAttack vs the real network stack"),
    "scale": ("repro.experiments.shard_scale",
              "Extension — 10k-node churn+chaos on the sharded kernel"),
}

#: 'all' runs the cheap analytic experiments; the network-heavy
#: fig8a/fig8b are opt-in by name.
DEFAULT_SEQUENCE = ("table1", "table2", "fig5", "fig6", "fig7",
                    "fig8c", "fig8d", "ablations")


def _cmd_list() -> int:
    print("Reproducible experiments (python -m repro run <name>):\n")
    for alias, (_module, description) in EXPERIMENTS.items():
        print(f"  {alias:<11} {description}")
    return 0


def _cmd_run(names: List[str]) -> int:
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print("use `python -m repro list`", file=sys.stderr)
        return 2
    for name in names:
        module_name, _ = EXPERIMENTS[name]
        module = importlib.import_module(module_name)
        module.main()
    return 0


def _cmd_all() -> int:
    return _cmd_run(list(DEFAULT_SEQUENCE))


def _cmd_search(query: str, num_nodes: int, seed: int,
                kmax: Optional[int], trace: bool = False) -> int:
    from repro.core.client import CyclosaNetwork
    from repro.core.config import CyclosaConfig

    config = CyclosaConfig() if kmax is None else CyclosaConfig(kmax=kmax)
    print(f"bootstrapping a {num_nodes}-node overlay (seed {seed})...")
    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                       config=config, observe=trace)
    result = deployment.node(0).search(query)
    # lint: allow(taint-print) -- echoing the user's own query to their
    # own terminal; nothing wire- or adversary-visible.
    print(f"\nquery     : {query!r}")  # lint: allow(taint-print)
    print(f"status    : {result.status}")
    print(f"fakes (k) : {result.k}")
    print(f"latency   : {result.latency:.3f} s (simulated)")
    print("results   :")
    for url in result.documents:
        print(f"  - {url}")
    print("\nengine observed:")
    for entry in deployment.engine_log[-(result.k + 1):]:
        marker = "fake" if entry.is_fake else "REAL"
        # The demo's point: show the engine-side adversary view (real
        # query hidden among fakes) on the local terminal.
        print(f"  [{marker}] from {entry.identity}: {entry.text}")  # lint: allow(taint-print)
    if trace:
        _print_trace_report(result.trace_id)
    return 0 if result.ok else 1


def _print_trace_report(trace_id: Optional[str]) -> None:
    """Per-stage breakdown + metrics snapshot of an enabled obs run."""
    from repro import obs
    from repro.obs import (format_breakdown, prometheus_snapshot,
                           root_span, stage_breakdown)

    from repro.text.cache import install_metrics

    tracer = obs.get_tracer()
    spans = tracer.sink.spans if tracer is not None else []
    rows = stage_breakdown(spans, trace_id=trace_id)
    root = root_span(spans, trace_id=trace_id)
    print(f"\npipeline trace {trace_id or '(none)'}:")
    total = root.duration if root is not None and root.finished else None
    t0 = root.start if root is not None else None
    print(format_breakdown(rows, total=total, t0=t0))
    print("\nmetrics snapshot:")
    install_metrics(obs.get_registry())  # text-cache gauges in the dump
    print(prometheus_snapshot(obs.get_registry()))


#: Simulated seconds to drive the deployment past the real result, so
#: the fake legs' (late) responses and their relay spans land before
#: the trace is assembled.
_OBS_DRAIN_SECONDS = 60.0


def _cmd_obs(query: str, num_nodes: int, seed: int, fmt: str,
             run_audit: bool = False) -> int:
    """Run one traced search and dump observability output."""
    from repro.core.client import CyclosaNetwork

    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                       observe=True)
    from repro import obs

    if run_audit:
        report = obs.run_telemetry_audit(
            deployment, [query], drain_seconds=_OBS_DRAIN_SECONDS)
        print(report.format())
        return 0 if report.ok else 1

    result = deployment.node(0).search(query)
    from repro.obs import (chrome_trace, format_breakdown,
                           prometheus_snapshot, root_span,
                           stage_breakdown, trace_to_jsonl)

    tracer = obs.get_tracer()
    spans = tracer.sink.spans if tracer is not None else []
    if fmt == "jsonl":
        deployment.run(_OBS_DRAIN_SECONDS)
        if result.trace_id is not None:
            spans = deployment.assembled_trace(result.trace_id).spans
        else:
            spans = tracer.sink.spans + obs.OBS.router.all_spans()
        print(trace_to_jsonl(spans))
    elif fmt == "prom":
        from repro.text.cache import install_metrics

        install_metrics(obs.get_registry())
        print(prometheus_snapshot(obs.get_registry()), end="")
    elif fmt == "chrome":
        deployment.run(_OBS_DRAIN_SECONDS)
        if result.trace_id is not None:
            spans = deployment.assembled_trace(result.trace_id).spans
        else:
            spans = tracer.sink.spans + obs.OBS.router.all_spans()
        print(chrome_trace(spans))
    elif fmt == "critical":
        deployment.run(_OBS_DRAIN_SECONDS)
        if result.trace_id is None:
            print("(no trace id — was observability enabled?)")
            return 1
        assembled = deployment.assembled_trace(result.trace_id)
        print(f"query  : {query!r}  (status {result.status}, "  # lint: allow(taint-print) -- own terminal
              f"k={result.k}, seed {seed})")
        print(obs.format_report(obs.critical_path(assembled)))
        summaries = obs.relay_latency_summaries(obs.OBS.router.all_spans())
        stragglers = obs.find_stragglers(summaries)
        if stragglers:
            print("stragglers     : " + ", ".join(stragglers)
                  + "  (candidate §VI-b blacklist)")
    else:  # table
        print(f"query  : {query!r}  (status {result.status}, "  # lint: allow(taint-print) -- own terminal
              f"k={result.k}, seed {seed})")
        rows = stage_breakdown(spans, trace_id=result.trace_id)
        root = root_span(spans, trace_id=result.trace_id)
        total = root.duration if root is not None and root.finished else None
        t0 = root.start if root is not None else None
        print(format_breakdown(rows, total=total, t0=t0))
    return 0 if result.ok else 1


def _cmd_perf(args) -> int:
    """Run the pipeline perf benches; write the trajectory baseline."""
    import os

    from repro import perf

    only = None
    if args.only:
        only = [name for entry in args.only
                for name in entry.split(",") if name]
    try:
        results = perf.run_all(
            only=only, profile=args.profile,
            history_size=args.history, probes=args.probes,
            num_events=args.events, num_nodes=args.nodes,
            searches=args.searches, monitor_windows=args.monitor_windows,
            engine_queries=args.engine_queries,
            engine_docs_per_topic=args.engine_docs_per_topic,
            shard_nodes=args.shard_nodes, shard_workers=args.shard_workers,
            shard_count=args.shard_count,
            shard_duration=args.shard_duration,
            seed=args.seed)
    except ValueError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    print(perf.format_report(results))
    if not args.no_write:
        if only is not None and os.path.exists(args.output):
            # Partial run: refresh only the measured sections, keep the
            # rest of the committed baseline untouched.
            merged = perf.load_baseline(args.output)
            merged.update(results)
            results_to_write = merged
        else:
            results_to_write = results
        perf.write_baseline(results_to_write, args.output)
        print(f"\nwrote {args.output}")
    sens = results.get("sensitivity")
    if sens is not None and not sens["scores_bit_identical"]:
        print("ERROR: indexed linkability diverged from the linear scan",
              file=sys.stderr)
        return 1
    scaling = results.get("engine_scaling")
    if scaling is not None and not scaling["sharded_identical"]:
        print("ERROR: sharded engine results diverged from the "
              "unsharded baseline", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    """Profile a named scenario; print and write the deterministic
    attribution artifacts."""
    import os

    from repro import obs
    from repro.experiments import profiling

    try:
        report = profiling.run_scenario(
            args.scenario, seed=args.seed, nodes=args.nodes,
            searches=args.searches, sample_interval=args.interval,
            window_seconds=args.window, heap=not args.no_heap,
            num_events=args.events, monitor_seconds=args.monitor_seconds)
    except ValueError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2

    # The profile must be shareable: refuse to print or write anything
    # that fails the code-locations-only audit.
    violations = obs.audit_profile_output(
        report["collapsed"], report["cpu"], report["audit_needles"])
    if violations:
        print("ERROR: profile output failed the privacy audit:",
              file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1

    cpu = report["cpu"]
    if args.json:
        import json as _json

        print(_json.dumps(cpu, sort_keys=True, indent=2))
    else:
        print(f"profile scenario {args.scenario!r} "
              f"(seed {args.seed}, 1 sample / {args.interval} call events)")
        print(obs.format_attribution(cpu))
        stacks = obs.parse_collapsed(report["collapsed"])
        if stacks:
            print(f"\nhottest stacks (top {args.top}, leaf first):")
            print(obs.top_stacks(stacks, limit=args.top))
        final = report["heap"]["final"]
        if final is not None:
            print("\nlive heap by subsystem (end of run):")
            for sub, row in sorted(
                    final["subsystems"].items(),
                    key=lambda item: -item[1]["size_bytes"]):
                print(f"  {sub:<14} {row['size_bytes'] / 1024.0:>10.1f} KiB "
                      f"in {row['blocks']} blocks")

    if not args.no_write:
        os.makedirs(args.out, exist_ok=True)
        base = os.path.join(args.out, f"{args.scenario}-seed{args.seed}")
        import json as _json

        with open(f"{base}.collapsed", "w", encoding="utf-8") as handle:
            handle.write(report["collapsed"])
        with open(f"{base}.cpu.json", "w", encoding="utf-8") as handle:
            handle.write(_json.dumps(cpu, sort_keys=True, indent=2) + "\n")
        written = [f"{base}.collapsed", f"{base}.cpu.json"]
        if report["heap"]["windows"] or report["heap"]["final"]:
            with open(f"{base}.heap.json", "w", encoding="utf-8") as handle:
                handle.write(_json.dumps(report["heap"], sort_keys=True,
                                         indent=2) + "\n")
            written.append(f"{base}.heap.json")
        if report["chrome"] is not None:
            with open(f"{base}.chrome.json", "w", encoding="utf-8") as handle:
                handle.write(report["chrome"] + "\n")
            written.append(f"{base}.chrome.json")
        print("\nwrote " + ", ".join(written))
    return 0


def _cmd_lint(args) -> int:
    """Run the static analyzer; exit 1 on non-baselined findings."""
    from pathlib import Path

    from repro.lint import (default_root, findings_to_json, format_baseline,
                            format_text, load_baseline, run_lint)
    from repro.lint.baseline import DEFAULT_BASELINE_NAME

    root = Path(args.root).resolve() if args.root else default_root()
    paths = [Path(p) for p in args.paths] or None
    findings = run_lint(root=root, paths=paths, jobs=args.jobs)

    if args.write_baseline:
        target = Path(args.baseline or DEFAULT_BASELINE_NAME)
        target.write_text(format_baseline(findings), encoding="utf-8")
        print(f"wrote {len(findings)} entr{'y' if len(findings) == 1 else 'ies'}"
              f" to {target} (fill in the JUSTIFY comments)")
        return 0

    baseline = None
    if args.baseline is not None or args.use_baseline:
        baseline_path = Path(args.baseline or DEFAULT_BASELINE_NAME)
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            print(f"baseline file not found: {baseline_path}",
                  file=sys.stderr)
            return 2

    if baseline is not None:
        fresh, grandfathered = baseline.apply(findings)
    else:
        fresh, grandfathered = list(findings), []

    if args.format == "json":
        print(findings_to_json(fresh))
    else:
        print(format_text(fresh))
        if grandfathered:
            print(f"({len(grandfathered)} baselined finding"
                  f"{'s' if len(grandfathered) != 1 else ''} suppressed)")
        if baseline is not None:
            stale = baseline.stale_entries(findings)
            if stale:
                print(f"note: {len(stale)} stale baseline entr"
                      f"{'ies' if len(stale) != 1 else 'y'} "
                      "(fixed — remove from the baseline):")
                for rule, path, _message in stale:
                    print(f"  {rule}\t{path}")
    return 1 if fresh else 0


def _cmd_chaos(args) -> int:
    """Run the fault-matrix sweep; exit 1 on any broken invariant."""
    from repro.faults import chaos

    if args.list_cells:
        for cell in chaos.default_matrix():
            print(f"  {cell.name:<20} {cell.description}")
        return 0
    cells = chaos.matrix_cells(args.cells or None,
                               plan_seed=args.plan_seed)
    report = chaos.run_matrix(cells, num_nodes=args.nodes,
                              num_queries=args.queries, seed=args.seed,
                              k=args.k)
    if args.json:
        print(chaos.report_json(report))
    else:
        print(f"fault matrix: {args.nodes} nodes, "
              f"{args.queries} queries/cell, seed {args.seed}, "
              f"k={args.k}\n")
        print(chaos.format_report(report))
    broken = [row["cell"] for row in report["cells"]
              if row["hung_searches"] or row["disjointness_violations"]]
    if broken:
        print(f"\nBROKEN INVARIANT in: {', '.join(broken)} "
              "(hung search or relay-disjointness violation)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_monitor(args) -> int:
    """Run the churn+chaos soak under the flight recorder."""
    from repro.experiments import monitor

    profiler = None
    if args.profile:
        from repro import obs

        profiler = obs.DeterministicProfiler(sample_interval=256)
    report = monitor.run_scenario(
        num_nodes=args.nodes, seed=args.seed, plan_seed=args.plan_seed,
        duration=args.duration, window_seconds=args.window,
        query_interval=args.interval, clients=args.clients, k=args.k,
        profiler=profiler)
    if args.format == "json":
        print(monitor.report_json(report))
    elif args.format == "openmetrics":
        from repro import obs

        windows = _windows_from_report(report)
        print(obs.openmetrics_timeseries(windows), end="")
    else:
        print(monitor.format_dashboard(report))
        if profiler is not None:
            from repro import obs

            print("\nCPU attribution (traffic + drain phase):")
            print(obs.format_attribution(report["profile"]))
    if report["traffic"]["hung_searches"]:
        print(f"\nBROKEN INVARIANT: "
              f"{report['traffic']['hung_searches']} hung searches",
              file=sys.stderr)
        return 1
    if args.strict and report["slo"]["verdict"] != "ok":
        return 1
    return 0


def _cmd_scale(args) -> int:
    """Run the sharded-kernel churn+chaos scenario."""
    from repro.experiments import shard_scale

    try:
        report = shard_scale.run(
            num_nodes=args.nodes, shards=args.shards, workers=args.workers,
            duration=args.duration, seed=args.seed, digest=args.digest,
            fanout=args.fanout, query_interval=args.interval,
            response_drop=args.drop, churn_fraction=args.churn)
    except ValueError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(shard_scale.report_json(report))
    else:
        print(shard_scale.format_report(report))
    return 0


def _windows_from_report(report) -> list:
    """Rebuild Window rows from a report's window dicts (CLI-side glue
    so the OpenMetrics dump reuses the one exporter)."""
    from repro import obs

    windows = []
    for row in report["windows"]:
        windows.append(obs.Window(
            index=row["index"], start=row["start"], end=row["end"],
            counters=row["counters"], cumulative=row["cumulative"],
            gauges=row["gauges"],
            histograms={
                key: obs.WindowHistogram(
                    count=value["count"], sum=value["sum"], buckets=(),
                    quantiles={name: number
                               for name, number in value.items()
                               if name not in ("count", "sum")})
                for key, value in row["histograms"].items()}))
    return windows


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CYCLOSA reproduction — experiments and demos")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("names", nargs="+",
                            help="experiment aliases (see `list`)")

    subparsers.add_parser("all", help="run the full analytic sequence")

    search_parser = subparsers.add_parser(
        "search", help="one protected search on a demo overlay")
    search_parser.add_argument("query")
    search_parser.add_argument("--nodes", type=int, default=16)
    search_parser.add_argument("--seed", type=int, default=7)
    search_parser.add_argument("--kmax", type=int, default=None)
    search_parser.add_argument(
        "--trace", action="store_true",
        help="enable repro.obs and print the per-stage latency "
             "breakdown plus a Prometheus metrics snapshot")

    obs_parser = subparsers.add_parser(
        "obs", help="run a traced search and dump observability output")
    obs_parser.add_argument("query", nargs="?",
                            default="flu symptoms treatment")
    obs_parser.add_argument("--nodes", type=int, default=16)
    obs_parser.add_argument("--seed", type=int, default=7)
    obs_parser.add_argument(
        "--format",
        choices=("table", "jsonl", "prom", "chrome", "critical"),
        default="table",
        help="table = per-stage breakdown, jsonl = assembled distributed "
             "trace dump, prom = Prometheus text snapshot, chrome = "
             "Chrome trace-event JSON (load in chrome://tracing or "
             "Perfetto), critical = cross-node critical-path report")
    obs_parser.add_argument(
        "--audit", action="store_true",
        help="run the telemetry privacy audit instead: wiretap the "
             "deployment, issue the query, and verify no trace ids or "
             "query text leak into wire metadata or span attributes")

    perf_parser = subparsers.add_parser(
        "perf", help="run the pipeline perf benches and write the "
                     "BENCH_pipeline.json trajectory baseline")
    perf_parser.add_argument("--history", type=int, default=None,
                             help="linkability history size (default 10000)")
    perf_parser.add_argument("--probes", type=int, default=None,
                             help="probe queries per pass (default 200)")
    perf_parser.add_argument("--events", type=int, default=None,
                             help="simulator events (default 200000)")
    perf_parser.add_argument("--nodes", type=int, default=None,
                             help="overlay size (default 16)")
    perf_parser.add_argument("--searches", type=int, default=None,
                             help="end-to-end searches (default 25)")
    perf_parser.add_argument("--monitor-windows", type=int, default=None,
                             help="flight-recorder flush windows "
                                  "(default 400)")
    perf_parser.add_argument("--engine-queries", type=int, default=None,
                             help="queries fired at the engine tier in "
                                  "the scale-out bench (default 400)")
    perf_parser.add_argument("--engine-docs-per-topic", type=int,
                             default=None,
                             help="corpus size knob for the engine "
                                  "scale-out bench (default 6000)")
    perf_parser.add_argument("--shard-nodes", type=int, nargs="+",
                             default=None, metavar="N",
                             help="overlay sizes of the sharded-kernel "
                                  "node curve (default 1000 2500 5000)")
    perf_parser.add_argument("--shard-workers", type=int, nargs="+",
                             default=None, metavar="W",
                             help="worker counts of the sharded-kernel "
                                  "worker curve (default 1 2 4 8)")
    perf_parser.add_argument("--shard-count", type=int, default=None,
                             help="shards in the sharded-kernel bench "
                                  "(default 8)")
    perf_parser.add_argument("--shard-duration", type=float, default=None,
                             help="simulated seconds per sharded-kernel "
                                  "run (default 5)")
    perf_parser.add_argument("--seed", type=int, default=None)
    perf_parser.add_argument(
        "--only", action="append", default=None, metavar="SECTION",
        help="run only these bench sections (repeatable or "
             "comma-separated; known: sensitivity, simulator, search, "
             "engine_scaling, shard_scaling, monitor, lint, profile). "
             "With --output, the "
             "measured sections are merged into an existing baseline "
             "file")
    perf_parser.add_argument(
        "--profile", action="store_true",
        help="include the deterministic-profiler attribution section "
             "(excluded from default runs; implies nothing about the "
             "other sections)")
    perf_parser.add_argument("--output", default="BENCH_pipeline.json",
                             help="baseline path (default ./BENCH_pipeline.json)")
    perf_parser.add_argument("--no-write", action="store_true",
                             help="print the report without writing the file")

    profile_parser = subparsers.add_parser(
        "profile", help="run a seeded scenario under the deterministic "
                        "sampling profiler and report per-subsystem "
                        "CPU/heap attribution (docs/observability.md)")
    profile_parser.add_argument(
        "scenario", nargs="?", default="search",
        choices=("search", "simulator", "sensitivity", "monitor"),
        help="workload to profile (default: search)")
    profile_parser.add_argument("--seed", type=int, default=0,
                                help="workload seed (default 0)")
    profile_parser.add_argument("--nodes", type=int, default=8,
                                help="overlay size for search/monitor "
                                     "scenarios (default 8)")
    profile_parser.add_argument("--searches", type=int, default=6,
                                help="protected searches in the search "
                                     "scenario (default 6)")
    profile_parser.add_argument("--interval", type=int, default=256,
                                help="sample every Nth call event "
                                     "(default 256)")
    profile_parser.add_argument("--window", type=float, default=5.0,
                                help="heap-snapshot window in simulated "
                                     "seconds (default 5)")
    profile_parser.add_argument("--events", type=int, default=30000,
                                help="events for the simulator scenario "
                                     "(default 30000)")
    profile_parser.add_argument("--monitor-seconds", type=float,
                                default=60.0,
                                help="traffic duration for the monitor "
                                     "scenario (default 60)")
    profile_parser.add_argument("--no-heap", action="store_true",
                                help="skip tracemalloc heap snapshots")
    profile_parser.add_argument("--top", type=int, default=5,
                                help="hottest stacks to print (default 5)")
    profile_parser.add_argument(
        "--json", action="store_true",
        help="print the CPU attribution JSON (byte-identical for "
             "identical arguments) instead of the table")
    profile_parser.add_argument("--out", default="profiles",
                                help="directory for the collapsed-stack / "
                                     "attribution / chrome-trace artifacts "
                                     "(default ./profiles)")
    profile_parser.add_argument("--no-write", action="store_true",
                                help="print the report without writing "
                                     "artifact files")

    lint_parser = subparsers.add_parser(
        "lint", help="trust-boundary / taint / determinism / layering "
                     "static analysis over src/ (docs/static-analysis.md)")
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: all of src/repro)")
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="text = human-readable findings, json = machine-readable")
    lint_parser.add_argument(
        "--baseline", nargs="?", const="", default=None, metavar="FILE",
        help="suppress findings recorded in the baseline file "
             "(default ./lint-baseline.txt when FILE is omitted)")
    lint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as a new baseline file and exit")
    lint_parser.add_argument(
        "--root", default=None,
        help="source root to lint instead of the installed src/ tree")
    lint_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan per-file analysis out over N worker processes "
             "(findings are byte-identical for any N)")

    chaos_parser = subparsers.add_parser(
        "chaos", help="run the seeded fault-matrix sweep over the "
                      "protected-search pipeline (docs/robustness.md)")
    chaos_parser.add_argument(
        "--cells", nargs="*", default=None, metavar="CELL",
        help="cells to run (default: the whole matrix; "
             "see --list-cells)")
    chaos_parser.add_argument("--list-cells", action="store_true",
                              help="list the matrix cells and exit")
    chaos_parser.add_argument("--nodes", type=int, default=10,
                              help="overlay size per cell (default 10)")
    chaos_parser.add_argument("--queries", type=int, default=6,
                              help="protected searches per cell "
                                   "(default 6)")
    chaos_parser.add_argument("--seed", type=int, default=7,
                              help="deployment seed (default 7)")
    chaos_parser.add_argument("--plan-seed", type=int, default=0,
                              help="fault-plan seed (default 0)")
    chaos_parser.add_argument("--k", type=int, default=2,
                              help="fake queries per search (default 2)")
    chaos_parser.add_argument(
        "--json", action="store_true",
        help="emit the deterministic per-cell JSON report instead of "
             "the table (byte-identical for identical arguments)")

    monitor_parser = subparsers.add_parser(
        "monitor", help="run the churn+chaos soak under the time-series "
                        "flight recorder and report SLO health "
                        "(docs/observability.md)")
    monitor_parser.add_argument("--nodes", type=int, default=12,
                                help="overlay size (default 12)")
    monitor_parser.add_argument("--clients", type=int, default=4,
                                help="nodes issuing searches (default 4)")
    monitor_parser.add_argument("--seed", type=int, default=11,
                                help="deployment seed (default 11)")
    monitor_parser.add_argument("--plan-seed", type=int, default=3,
                                help="fault-plan seed (default 3)")
    monitor_parser.add_argument("--duration", type=float, default=200.0,
                                help="traffic duration in simulated "
                                     "seconds (default 200)")
    monitor_parser.add_argument("--window", type=float, default=10.0,
                                help="aggregation window width in "
                                     "simulated seconds (default 10)")
    monitor_parser.add_argument("--interval", type=float, default=2.0,
                                help="seconds between searches (default 2)")
    monitor_parser.add_argument("--k", type=int, default=2,
                                help="fake queries per search (default 2)")
    monitor_parser.add_argument(
        "--format", choices=("dash", "json", "openmetrics"),
        default="dash",
        help="dash = per-window terminal dashboard, json = the "
             "deterministic report (byte-identical for identical "
             "arguments), openmetrics = the windowed series as "
             "OpenMetrics text with timestamps")
    monitor_parser.add_argument(
        "--json", dest="format", action="store_const", const="json",
        help="shorthand for --format json")
    monitor_parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 when the SLO verdict is breached (hung searches "
             "always exit 1)")
    monitor_parser.add_argument(
        "--profile", action="store_true",
        help="run the soak under the deterministic profiler and append "
             "the per-subsystem CPU attribution (dash format only; the "
             "json report gains a 'profile' section)")

    scale_parser = subparsers.add_parser(
        "scale", help="run a city-scale churn+chaos overlay on the "
                      "space-partitioned sharded kernel "
                      "(docs/performance.md)")
    scale_parser.add_argument("--nodes", type=int, default=10_000,
                              help="overlay size (default 10000)")
    scale_parser.add_argument("--shards", type=int, default=8,
                              help="space partitions of the node space "
                                   "(default 8)")
    scale_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes running the shards "
                                   "(1..shards; default 1 — results are "
                                   "byte-identical at any worker count)")
    scale_parser.add_argument("--duration", type=float, default=20.0,
                              help="simulated seconds (default 20)")
    scale_parser.add_argument("--seed", type=int, default=0,
                              help="run seed (default 0)")
    scale_parser.add_argument("--fanout", type=int, default=3,
                              help="peers queried per round (default 3)")
    scale_parser.add_argument("--interval", type=float, default=1.0,
                              help="seconds between query rounds "
                                   "(default 1.0)")
    scale_parser.add_argument("--drop", type=float, default=0.05,
                              help="chaos: probability a peer eats a "
                                   "query (default 0.05)")
    scale_parser.add_argument("--churn", type=float, default=0.10,
                              help="fraction of nodes that crash "
                                   "mid-run (default 0.10)")
    scale_parser.add_argument(
        "--digest", action="store_true",
        help="compute the event-order digest (byte-identity witness "
             "across shard/worker layouts; costs some throughput)")
    scale_parser.add_argument(
        "--json", action="store_true",
        help="emit the deterministic report JSON (wall-clock fields "
             "stripped; byte-identical for identical arguments)")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.names)
    if args.command == "all":
        return _cmd_all()
    if args.command == "search":
        return _cmd_search(args.query, args.nodes, args.seed, args.kmax,
                           trace=args.trace)
    if args.command == "obs":
        return _cmd_obs(args.query, args.nodes, args.seed, args.format,
                        run_audit=args.audit)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "lint":
        args.use_baseline = args.baseline is not None
        if args.baseline == "":
            args.baseline = None
            args.use_baseline = True
        return _cmd_lint(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "monitor":
        return _cmd_monitor(args)
    if args.command == "scale":
        return _cmd_scale(args)
    parser.print_help()
    return 0


if __name__ == "__main__":
    sys.exit(main())
