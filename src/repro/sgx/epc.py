"""Enclave Page Cache (EPC) model.

SGX v1 backs all enclave memory with a fixed pool of encrypted pages,
128 MB in the hardware the paper targets. When the combined working set
of all enclaves on a platform exceeds the EPC, the SGX driver pages
enclave memory to ordinary RAM — re-encrypting and integrity-tagging
each page — at a cost one to two orders of magnitude above a normal
access (§II-B cites SecureKeeper and SCONE measurements).

The paper's headline systems claim (§V-F) is that the CYCLOSA enclave is
only **1.7 MB**, so it never pages and sustains 40 k req/s. This module
gives the simulation the accounting needed to *demonstrate* that claim
and its converse (the ablation bench grows the working set past the
cliff and watches throughput collapse).

All costs are expressed in simulated seconds and consumed by the
discrete-event loop; nothing here touches wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs import OBS
from repro.sgx.errors import SgxError

PAGE_SIZE = 4096
DEFAULT_EPC_BYTES = 128 * 1024 * 1024

# Calibrated per-access costs (seconds). A resident EPC access is close
# to a normal cache/DRAM access; a paged access pays EWB/ELDU transitions
# plus re-encryption, measured at tens of microseconds in the literature.
RESIDENT_ACCESS_COST = 2e-8
PAGED_ACCESS_COST = 4e-5


class EpcError(SgxError):
    """Raised when an enclave allocation cannot be represented."""


@dataclass
class EpcRegion:
    """Pages charged to one enclave."""

    enclave_id: int
    pages: int = 0

    @property
    def size_bytes(self) -> int:
        return self.pages * PAGE_SIZE


@dataclass
class EnclavePageCache:
    """Platform-wide EPC: a fixed page budget shared by all enclaves.

    Tracks per-enclave committed pages and answers the single question
    the cost model needs: *what does one memory access cost right now?*
    When total committed pages fit in the EPC, every access is resident.
    When they exceed it, a fraction of accesses (proportional to the
    overflow) hit swapped pages and pay :data:`PAGED_ACCESS_COST`.
    """

    capacity_bytes: int = DEFAULT_EPC_BYTES
    _regions: Dict[int, EpcRegion] = field(default_factory=dict)
    #: Expected page faults served so far (fractional: past the cliff,
    #: each access faults on the overflow fraction of its pages).
    faults: float = 0.0
    #: Pages pushed out of the EPC by over-commit (EWB analogue),
    #: counted when an allocation grows the overflow.
    evictions: int = 0

    @property
    def capacity_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    @property
    def committed_pages(self) -> int:
        return sum(region.pages for region in self._regions.values())

    @property
    def committed_bytes(self) -> int:
        return self.committed_pages * PAGE_SIZE

    def register(self, enclave_id: int) -> None:
        """Create an (empty) accounting region for a new enclave."""
        if enclave_id in self._regions:
            raise EpcError(f"enclave {enclave_id} already registered")
        self._regions[enclave_id] = EpcRegion(enclave_id=enclave_id)

    def release(self, enclave_id: int) -> None:
        """Free every page of a destroyed enclave."""
        self._regions.pop(enclave_id, None)

    def allocate(self, enclave_id: int, nbytes: int) -> None:
        """Charge *nbytes* (rounded up to pages) to an enclave.

        SGX v1 has no dynamic EPC limit per enclave — over-commit is
        allowed and simply triggers paging — so this never fails except
        for unregistered enclaves or negative sizes.
        """
        if nbytes < 0:
            raise EpcError("allocation size must be non-negative")
        region = self._regions.get(enclave_id)
        if region is None:
            raise EpcError(f"enclave {enclave_id} not registered")
        overflow_before = max(0, self.committed_pages - self.capacity_pages)
        region.pages += -(-nbytes // PAGE_SIZE)
        overflow_after = max(0, self.committed_pages - self.capacity_pages)
        if overflow_after > overflow_before:
            evicted = overflow_after - overflow_before
            self.evictions += evicted
            if OBS.enabled:
                OBS.registry.counter(
                    "cyclosa_sgx_epc_evictions_total",
                    "EPC pages evicted to untrusted RAM (EWB analogue)"
                ).inc(evicted)

    def free(self, enclave_id: int, nbytes: int) -> None:
        """Return *nbytes* worth of pages from an enclave."""
        if nbytes < 0:
            raise EpcError("free size must be non-negative")
        region = self._regions.get(enclave_id)
        if region is None:
            raise EpcError(f"enclave {enclave_id} not registered")
        pages = -(-nbytes // PAGE_SIZE)
        if pages > region.pages:
            raise EpcError("freeing more pages than allocated")
        region.pages -= pages

    def usage(self, enclave_id: int) -> int:
        """Bytes currently charged to *enclave_id*."""
        region = self._regions.get(enclave_id)
        if region is None:
            raise EpcError(f"enclave {enclave_id} not registered")
        return region.size_bytes

    def paging_ratio(self) -> float:
        """Fraction of committed pages that live outside the EPC."""
        committed = self.committed_pages
        if committed <= self.capacity_pages or committed == 0:
            return 0.0
        return (committed - self.capacity_pages) / committed

    def access_cost(self, touched_bytes: int = PAGE_SIZE) -> float:
        """Simulated cost (seconds) of touching *touched_bytes* of
        enclave memory under the current residency mix.

        With no overflow this is the resident cost; past the EPC cliff
        the expected cost blends in the paging penalty proportionally to
        the overflow fraction — the cliff shape the ablation bench plots.
        """
        pages = max(1, -(-touched_bytes // PAGE_SIZE))
        ratio = self.paging_ratio()
        if OBS.enabled:
            # Register the fault counter even at zero faults: a
            # snapshot of a healthy run must *show* the no-paging
            # claim, not merely omit the metric.
            fault_counter = OBS.registry.counter(
                "cyclosa_sgx_epc_faults_total",
                "expected EPC page faults served (fractional past the "
                "paging cliff)")
            OBS.registry.gauge(
                "cyclosa_sgx_epc_committed_pages",
                "pages committed across all enclaves").set(
                    self.committed_pages)
            if ratio > 0.0:
                expected_faults = pages * ratio
                self.faults += expected_faults
                fault_counter.inc(expected_faults)
        elif ratio > 0.0:
            self.faults += pages * ratio
        per_page = (1.0 - ratio) * RESIDENT_ACCESS_COST + ratio * PAGED_ACCESS_COST
        return pages * per_page
