"""Simulated Intel SGX enclave runtime.

The paper's trust model places every component that touches *other
users'* queries inside an SGX enclave. Python cannot run real enclaves,
so this package provides a behavioural simulation that preserves the
properties the rest of the system (and the evaluation) depends on:

- **Isolation discipline** (:mod:`repro.sgx.enclave`): trusted state is
  only reachable through registered ``ecall`` gates; reading it from
  untrusted code raises. ``ocall``\\ s let trusted code invoke untrusted
  services (e.g. the network).
- **Cost model** (:mod:`repro.sgx.enclave`, :mod:`repro.sgx.epc`): each
  enclave crossing charges a calibrated latency, and enclave memory is
  accounted against the 128 MB EPC — exceeding it triggers a severe
  per-access paging penalty, reproducing the cliff reported for SGX v1.
- **Remote attestation** (:mod:`repro.sgx.attestation`): enclaves are
  measured (MRENCLAVE = hash of their code identity); platforms produce
  signed quotes; a simulated Intel Attestation Service verifies them.
  Key exchange is only completed after a quote verifies, exactly as in
  the paper's bootstrap (§V-D).
- **Sealed storage** (:mod:`repro.sgx.sealing`): data sealed to the
  enclave measurement survives restarts but is unreadable elsewhere.
"""

from repro.sgx.attestation import (
    AttestationError,
    IntelAttestationService,
    MeasurementPolicy,
    Quote,
    QuoteStatus,
    VerificationReport,
    attest_quote,
)
from repro.sgx.enclave import (
    CROSSING_COST,
    CostMeter,
    Enclave,
    EnclaveHost,
    LocalReport,
    ecall,
)
from repro.sgx.epc import PAGE_SIZE, EnclavePageCache, EpcError
from repro.sgx.errors import EnclaveError, EnclaveIsolationError, SgxError
from repro.sgx.sealing import SealedBlob, SealingError, SealingService

__all__ = [
    "AttestationError",
    "IntelAttestationService",
    "MeasurementPolicy",
    "Quote",
    "QuoteStatus",
    "VerificationReport",
    "attest_quote",
    "CROSSING_COST",
    "CostMeter",
    "Enclave",
    "EnclaveHost",
    "LocalReport",
    "ecall",
    "PAGE_SIZE",
    "EnclavePageCache",
    "EpcError",
    "EnclaveError",
    "EnclaveIsolationError",
    "SgxError",
    "SealedBlob",
    "SealingError",
    "SealingService",
]
