"""Remote attestation: quotes and a simulated Intel Attestation Service.

CYCLOSA's bootstrap (§V-D) requires every connecting peer to prove it
runs a *genuine* enclave with a *known* measurement before any key
material is exchanged. The flow simulated here mirrors EPID-style
attestation:

1. The enclave binds a value (e.g. its DH public key) into a local
   report (`EREPORT`).
2. The platform's quoting facility signs the report into a
   :class:`Quote` with its provisioned attestation key.
3. The verifier submits the quote to the :class:`IntelAttestationService`
   (IAS), which checks the platform signature and revocation state.
4. The verifier separately pins the measurement against its own list of
   known-good enclave builds (IAS vouches for *genuineness*, not for
   *which code* — that check is the relying party's).

Byzantine peers in the evaluation exercise every failure branch:
unknown platforms, revoked platforms, forged signatures and unknown
measurements are all rejected before any query material flows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.crypto.rsa import RsaPublicKey
from repro.sgx.errors import SgxError


class AttestationError(SgxError):
    """Raised when an attestation exchange cannot proceed at all."""


class QuoteStatus(enum.Enum):
    """IAS verification verdicts (subset of the real report statuses)."""

    OK = "OK"
    SIGNATURE_INVALID = "SIGNATURE_INVALID"
    UNKNOWN_PLATFORM = "UNKNOWN_PLATFORM"
    GROUP_REVOKED = "GROUP_REVOKED"


@dataclass(frozen=True)
class Quote:
    """A platform-signed statement: *this measurement ran here and said
    report_data*."""

    platform_id: int
    measurement: bytes
    report_data: bytes
    signature: bytes

    @staticmethod
    def body_bytes(platform_id: int, measurement: bytes,
                   report_data: bytes) -> bytes:
        """Canonical byte encoding of the signed portion."""
        return b"|".join([
            b"repro.sgx.quote.v1",
            platform_id.to_bytes(8, "big"),
            measurement,
            report_data,
        ])


@dataclass(frozen=True)
class VerificationReport:
    """The IAS response for one quote."""

    status: QuoteStatus
    platform_id: int
    measurement: bytes

    @property
    def ok(self) -> bool:
        return self.status is QuoteStatus.OK


class IntelAttestationService:
    """Simulated IAS: a registry of provisioned platforms.

    Platforms register their attestation public key out of band (in
    reality: during manufacturing / EPID provisioning). Verification
    checks the quote signature against the registered key and the
    platform's revocation status.
    """

    def __init__(self) -> None:
        self._platforms: Dict[int, RsaPublicKey] = {}
        self._revoked: Set[int] = set()

    def provision(self, platform_id: int, attestation_public: RsaPublicKey) -> None:
        """Register a platform's attestation key."""
        self._platforms[platform_id] = attestation_public

    def provision_host(self, host) -> None:
        """Convenience: provision an :class:`~repro.sgx.enclave.EnclaveHost`."""
        self.provision(host.platform_id, host.attestation_key.public)

    def revoke(self, platform_id: int) -> None:
        """Add a platform to the revocation list (e.g. key compromise)."""
        self._revoked.add(platform_id)

    def verify(self, quote: Quote) -> VerificationReport:
        """Check one quote; never raises — always returns a report."""
        key = self._platforms.get(quote.platform_id)
        if key is None:
            status = QuoteStatus.UNKNOWN_PLATFORM
        elif quote.platform_id in self._revoked:
            status = QuoteStatus.GROUP_REVOKED
        else:
            body = Quote.body_bytes(
                quote.platform_id, quote.measurement, quote.report_data)
            if key.verify(body, quote.signature):
                status = QuoteStatus.OK
            else:
                status = QuoteStatus.SIGNATURE_INVALID
        return VerificationReport(
            status=status,
            platform_id=quote.platform_id,
            measurement=quote.measurement,
        )


class MeasurementPolicy:
    """The relying party's list of known-good enclave measurements."""

    def __init__(self, allowed: Iterable[bytes] = ()) -> None:
        self._allowed: Set[bytes] = set(allowed)

    def allow(self, measurement: bytes) -> None:
        self._allowed.add(measurement)

    def allow_class(self, enclave_cls) -> None:
        """Allow every instance of an :class:`Enclave` subclass."""
        self._allowed.add(enclave_cls.measurement())

    def permits(self, measurement: bytes) -> bool:
        return measurement in self._allowed


def attest_quote(ias: IntelAttestationService, policy: MeasurementPolicy,
                 quote: Quote) -> VerificationReport:
    """Full relying-party check: IAS genuineness + measurement pinning.

    Raises :class:`AttestationError` if either fails; returns the OK
    report otherwise. This is the gate every CYCLOSA node applies before
    exchanging session keys with a peer (§V-D, §VI-a).
    """
    report = ias.verify(quote)
    if not report.ok:
        raise AttestationError(f"IAS rejected quote: {report.status.value}")
    if not policy.permits(quote.measurement):
        raise AttestationError("quote is genuine but measurement is unknown")
    return report
