"""Exception hierarchy for the simulated SGX runtime."""

from __future__ import annotations


class SgxError(Exception):
    """Base class for every SGX-simulation failure."""


class EnclaveError(SgxError):
    """Lifecycle misuse: calling into a destroyed or uninitialised enclave."""


class EnclaveIsolationError(SgxError):
    """Untrusted code attempted to touch enclave-private state directly.

    Real SGX makes this a hardware fault (EPC reads return ciphertext);
    the simulation makes it loud so tests can prove the trust boundary
    is respected by construction.
    """
