"""Sealed storage: persist enclave secrets to untrusted disk.

A sealing key is derived from a per-platform seal secret and the enclave
measurement (MRENCLAVE policy): the same enclave build on the same
platform can unseal; any other enclave, or the untrusted host, or the
same enclave on another platform, cannot. CYCLOSA uses this to let a
node's past-queries table survive browser restarts without ever exposing
other users' queries to the host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aead import AeadError, AeadKey, open_ as aead_open, seal as aead_seal
from repro.crypto.hashes import hkdf
from repro.sgx.errors import SgxError


class SealingError(SgxError):
    """Raised when a blob cannot be unsealed (wrong enclave/platform)."""


@dataclass(frozen=True)
class SealedBlob:
    """An opaque sealed payload plus the public metadata needed to route
    it back to the right enclave."""

    measurement: bytes
    platform_id: int
    ciphertext: bytes


class SealingService:
    """Per-platform sealing, keyed by a secret fused into the CPU.

    The host exposes the service, but the derivation binds the enclave
    measurement, so the host learns nothing it could decrypt.
    """

    def __init__(self, platform_id: int, rng) -> None:
        self.platform_id = platform_id
        self._seal_secret = bytes(rng.getrandbits(8) for _ in range(32))

    def _key_for(self, measurement: bytes) -> AeadKey:
        material = hkdf(self._seal_secret, b"repro.sgx.seal:" + measurement, 32)
        return AeadKey(material)

    def seal(self, measurement: bytes, plaintext: bytes, rng=None) -> SealedBlob:
        """Seal *plaintext* to (this platform, *measurement*)."""
        ciphertext = aead_seal(self._key_for(measurement), plaintext,
                               associated_data=measurement, rng=rng)
        return SealedBlob(measurement=measurement,
                          platform_id=self.platform_id,
                          ciphertext=ciphertext)

    def unseal(self, measurement: bytes, blob: SealedBlob) -> bytes:
        """Unseal a blob; fails unless platform and measurement match."""
        if blob.platform_id != self.platform_id:
            raise SealingError("sealed on a different platform")
        if blob.measurement != measurement:
            raise SealingError("sealed for a different enclave measurement")
        try:
            return aead_open(self._key_for(measurement), blob.ciphertext,
                             associated_data=measurement)
        except AeadError as exc:
            raise SealingError("sealed blob failed authentication") from exc
