"""Enclave lifecycle, ecall/ocall gates and the crossing cost model.

An :class:`Enclave` subclass is the simulation's unit of trusted code.
Methods decorated with :func:`ecall` are its only entry points; inside
them, ``self.trusted`` exposes the enclave's private state and
:meth:`Enclave.ocall` reaches back out to untrusted services registered
on the :class:`EnclaveHost`. Touching ``trusted`` from outside an ecall
raises :class:`~repro.sgx.errors.EnclaveIsolationError` — the simulated
equivalent of the MEE returning ciphertext to a curious host.

Costs: every gate crossing (ecall enter/exit, ocall exit/re-enter)
charges :data:`CROSSING_COST` simulated seconds to the host's meter, and
trusted-memory traffic is charged through the shared
:class:`~repro.sgx.epc.EnclavePageCache`. The network layer reads the
meter to advance simulated time, which is how SGX overheads end up in
the latency CDFs of Figures 8a-8c.
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.crypto.hashes import hkdf, hmac_sha256, sha256
from repro.crypto.keys import IdentityKeyPair
from repro.obs import OBS, close_remote_span, open_remote_span
from repro.sgx.epc import EnclavePageCache
from repro.sgx.errors import EnclaveError, EnclaveIsolationError

# One gate crossing is ~8,000-12,000 cycles on Skylake (≈3 µs at 3 GHz);
# an ecall round-trip is two crossings, an ocall from inside adds two more.
CROSSING_COST = 3e-6

# In-enclave crypto: a fixed setup cost per AEAD operation plus a
# per-byte term (~300 MB/s sustained for authenticated encryption with
# the MEE in the path). Enclave subclasses charge this for every
# seal/open they perform; it dominates the relay service time and thus
# the saturation throughput of Fig 8c.
CRYPTO_OP_COST = 2e-6
CRYPTO_COST_PER_BYTE = 3e-9

#: Buckets for the CostMeter charge histogram: individual charges run
#: from a single crossing (µs) to paged-EPC bulk traffic (ms).
METER_CHARGE_BUCKETS = (1e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4,
                        1e-3, 1e-2, 1e-1)

_ECALL_MARK = "_repro_sgx_ecall"


def _emit_gate_span(name: str, gate: str, remote, charged: float) -> None:
    """Record one gate transition as a span of a distributed trace.

    *remote* is the active ``OBS.remote`` tuple ``(node, TraceContext)``
    set via :func:`repro.obs.remote_context` by whichever protocol step
    is driving the enclave; *charged* is the simulated seconds this
    gate added to the cost meter (crossings + EPC + any crypto inside),
    which becomes the span's width. Attributes carry only the node,
    fan-out path and gate name — never payload contents.
    """
    node, ctx = remote
    span = open_remote_span(OBS.tracer, name, ctx, node=node,
                            attributes={"gate": gate})
    close_remote_span(OBS.router, node, span,
                      end_time=span.start + max(0.0, charged))


def ecall(fn: Callable) -> Callable:
    """Mark a method as a trusted entry point (an ``ecall``).

    The wrapper performs the call-gate bookkeeping: verifies the enclave
    is alive, charges two crossings (enter + exit), flips the
    inside-enclave flag for the duration of the call, and charges EPC
    access cost proportional to the enclave's declared working set.
    """

    gate_name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self: "Enclave", *args: Any, **kwargs: Any) -> Any:
        self._check_alive()
        remote = None
        meter_before = 0.0
        if OBS.enabled:
            registry = OBS.registry
            registry.counter(
                "cyclosa_sgx_ecalls_total",
                "ecall entries through the call gate",
                gate=gate_name).inc()
            registry.counter(
                "cyclosa_sgx_crossings_total",
                "gate crossings (ecall enter/exit, ocall exit/re-enter)").inc(2)
            registry.counter(
                "cyclosa_sgx_crossing_seconds_total",
                "simulated seconds spent crossing the call gate").inc(
                    2 * CROSSING_COST)
            remote = OBS.remote
            if remote is not None:
                meter_before = self._host.meter.total
        self._host.meter.charge(2 * CROSSING_COST)
        self._host.meter.charge(
            self._host.epc.access_cost(self._touched_bytes_per_call))
        self._depth += 1
        try:
            return fn(self, *args, **kwargs)
        finally:
            self._depth -= 1
            if remote is not None and OBS.enabled:
                _emit_gate_span("sgx.ecall", gate_name, remote,
                                self._host.meter.total - meter_before)

    setattr(wrapper, _ECALL_MARK, True)
    return wrapper


@dataclass
class CostMeter:
    """Accumulates simulated seconds of SGX overhead.

    The discrete-event layer drains it with :meth:`take` after driving
    enclave code, converting CPU-side costs into simulated time.
    """

    total: float = 0.0
    _unclaimed: float = 0.0

    def charge(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot charge negative cost")
        if OBS.enabled:
            OBS.registry.histogram(
                "cyclosa_sgx_meter_charge_seconds",
                "per-charge SGX overhead (crossings, EPC traffic, crypto)",
                buckets=METER_CHARGE_BUCKETS).observe(seconds)
        self.total += seconds
        self._unclaimed += seconds

    def take(self) -> float:
        """Return and reset the cost accrued since the last call."""
        taken = self._unclaimed
        self._unclaimed = 0.0
        return taken


class _TrustedState(dict):
    """Enclave-private key/value state (plain dict; access is gated)."""


class Enclave:
    """Base class for trusted code units.

    Subclasses declare:

    - ``ENCLAVE_VERSION``: bumped on any trusted-code change; part of the
      measurement, so old and new versions attest differently.
    - ecall methods via the :func:`ecall` decorator.
    - optionally ``BASE_FOOTPRINT_BYTES``: static trusted code+data size
      charged to the EPC at creation (CYCLOSA's enclave is 1.7 MB).
    """

    ENCLAVE_VERSION = "1"
    BASE_FOOTPRINT_BYTES = 1_700_000  # paper §V-F: 1.7 MB with mbedTLS
    #: Thread Control Structures: how many ecalls can execute
    #: concurrently (Fig 3: "executed by one of the enclave's threads").
    #: Used by the saturation models as the server count.
    NUM_TCS = 1

    def __init__(self, host: "EnclaveHost", enclave_id: int, rng) -> None:
        self._host = host
        self._enclave_id = enclave_id
        self._depth = 0
        self._destroyed = False
        self._trusted = _TrustedState()
        self._touched_bytes_per_call = 4096
        # Keys generated *inside* the enclave at start-up (§VI-a): the
        # report key authenticates local reports; the session identity
        # is used for post-attestation secure channels.
        self._report_key = hkdf(
            bytes(rng.getrandbits(8) for _ in range(32)),
            b"repro.sgx.report", 32)
        self.identity = IdentityKeyPair.generate(bits=512, rng=rng)

    # -- identity ----------------------------------------------------

    @classmethod
    def measurement(cls) -> bytes:
        """MRENCLAVE: a stable hash of the trusted code identity.

        Computed from the class's qualified name, declared version and
        the sorted list of its ecall entry points — any change to the
        trusted interface or version changes the measurement, so remote
        attesters can pin known-good builds.
        """
        gates = sorted(
            name for name in dir(cls)
            if getattr(getattr(cls, name, None), _ECALL_MARK, False))
        payload = "|".join([cls.__module__, cls.__qualname__,
                            cls.ENCLAVE_VERSION, *gates])
        return sha256(b"repro.sgx.mrenclave:", payload.encode("utf-8"))

    @property
    def enclave_id(self) -> int:
        return self._enclave_id

    # -- isolation gate ----------------------------------------------

    @property
    def trusted(self) -> _TrustedState:
        """Enclave-private state; only reachable from inside an ecall."""
        if self._depth == 0:
            raise EnclaveIsolationError(
                "attempt to read enclave memory from untrusted code")
        return self._trusted

    @property
    def inside(self) -> bool:
        """True while executing trusted code."""
        return self._depth > 0

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveError("ecall into destroyed enclave")

    # -- ocalls -------------------------------------------------------

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke an untrusted service registered on the host.

        Only legal from inside an ecall (real ocalls are proxied through
        the call gate). Charges two crossings (exit + re-enter).
        """
        if self._depth == 0:
            raise EnclaveError("ocall outside of trusted execution")
        handler = self._host.ocall_handler(name)
        remote = None
        meter_before = 0.0
        if OBS.enabled:
            registry = OBS.registry
            registry.counter(
                "cyclosa_sgx_ocalls_total",
                "ocalls from trusted code to untrusted services",
                service=name).inc()
            registry.counter(
                "cyclosa_sgx_crossings_total",
                "gate crossings (ecall enter/exit, ocall exit/re-enter)").inc(2)
            registry.counter(
                "cyclosa_sgx_crossing_seconds_total",
                "simulated seconds spent crossing the call gate").inc(
                    2 * CROSSING_COST)
            remote = OBS.remote
            if remote is not None:
                meter_before = self._host.meter.total
        self._host.meter.charge(2 * CROSSING_COST)
        self._depth -= 1  # untrusted code must not see trusted state
        try:
            return handler(*args, **kwargs)
        finally:
            self._depth += 1
            if remote is not None and OBS.enabled:
                _emit_gate_span("sgx.ocall", name, remote,
                                self._host.meter.total - meter_before)

    # -- memory -------------------------------------------------------

    def trusted_alloc(self, nbytes: int) -> None:
        """Grow the enclave heap (charged against the shared EPC)."""
        self._host.epc.allocate(self._enclave_id, nbytes)

    def trusted_free(self, nbytes: int) -> None:
        """Shrink the enclave heap."""
        self._host.epc.free(self._enclave_id, nbytes)

    def memory_usage(self) -> int:
        """Total bytes charged to this enclave (code + heap)."""
        return self._host.epc.usage(self._enclave_id)

    def charge_crypto(self, nbytes: int, operations: int = 1) -> None:
        """Charge the cost of *operations* AEAD ops over *nbytes* total."""
        if nbytes < 0 or operations < 0:
            raise ValueError("crypto cost arguments must be non-negative")
        self._host.meter.charge(
            operations * CRYPTO_OP_COST + nbytes * CRYPTO_COST_PER_BYTE)

    def set_touched_bytes_per_call(self, nbytes: int) -> None:
        """Declare the working set an average ecall touches.

        Used by the cost model: calls touching more memory pay more,
        especially once the platform EPC is over-committed.
        """
        if nbytes <= 0:
            raise ValueError("working set must be positive")
        self._touched_bytes_per_call = nbytes

    # -- local reports (consumed by attestation) ----------------------

    def create_report(self, report_data: bytes) -> "LocalReport":
        """Produce a MACed local report binding *report_data* to this
        enclave's measurement (the EREPORT analogue)."""
        measurement = type(self).measurement()
        mac = hmac_sha256(self._report_key, measurement, report_data)
        return LocalReport(
            enclave_id=self._enclave_id,
            measurement=measurement,
            report_data=report_data,
            mac=mac,
        )

    def _verify_report_mac(self, report: "LocalReport") -> bool:
        expected = hmac_sha256(
            self._report_key, report.measurement, report.report_data)
        return expected == report.mac


@dataclass(frozen=True)
class LocalReport:
    """EREPORT analogue: measurement + user data, MACed by the enclave."""

    enclave_id: int
    measurement: bytes
    report_data: bytes
    mac: bytes


class EnclaveHost:
    """One SGX-capable platform: EPC, cost meter, ocall table, quoting.

    The host is the *untrusted* side — it can observe everything except
    enclave-private state, can refuse service (DoS is out of scope per
    §III), but cannot forge quotes for measurements it does not run.
    """

    _platform_counter = itertools.count(1)

    def __init__(self, rng, epc: Optional[EnclavePageCache] = None) -> None:
        self.platform_id = next(self._platform_counter)
        self.epc = epc if epc is not None else EnclavePageCache()
        self.meter = CostMeter()
        self._rng = rng
        self._ocalls: Dict[str, Callable] = {}
        self._enclaves: Dict[int, Enclave] = {}
        self._next_enclave_id = itertools.count(1)
        # Platform attestation key, provisioned to the (simulated) IAS
        # out of band; quotes are signed with it.
        self.attestation_key = IdentityKeyPair.generate(bits=512, rng=rng)

    # -- lifecycle ----------------------------------------------------

    def create_enclave(self, enclave_cls, *args: Any, **kwargs: Any) -> Enclave:
        """ECREATE/EINIT analogue: instantiate trusted code, charge its
        static footprint to the EPC."""
        if not issubclass(enclave_cls, Enclave):
            raise EnclaveError("enclave classes must derive from Enclave")
        enclave_id = next(self._next_enclave_id)
        self.epc.register(enclave_id)
        enclave = enclave_cls(self, enclave_id, self._rng, *args, **kwargs)
        self.epc.allocate(enclave_id, enclave_cls.BASE_FOOTPRINT_BYTES)
        self._enclaves[enclave_id] = enclave
        # Enclave creation is expensive (EPC zeroing + measurement).
        self.meter.charge(50 * CROSSING_COST)
        return enclave

    def destroy_enclave(self, enclave: Enclave) -> None:
        """EREMOVE analogue: wipe trusted state and free EPC pages."""
        enclave._destroyed = True
        enclave._trusted.clear()
        self.epc.release(enclave.enclave_id)
        self._enclaves.pop(enclave.enclave_id, None)

    def enclaves(self):
        """Live enclaves on this platform."""
        return list(self._enclaves.values())

    # -- ocalls -------------------------------------------------------

    def register_ocall(self, name: str, handler: Callable) -> None:
        """Expose an untrusted service to trusted code under *name*."""
        self._ocalls[name] = handler

    def ocall_handler(self, name: str) -> Callable:
        try:
            return self._ocalls[name]
        except KeyError:
            raise EnclaveError(f"no ocall handler registered for {name!r}")

    # -- quoting ------------------------------------------------------

    def quote_report(self, report: LocalReport):
        """Quoting-enclave analogue: verify the local report came from an
        enclave on this platform, then sign it with the platform key.

        Returns a :class:`repro.sgx.attestation.Quote`.
        """
        from repro.sgx.attestation import Quote  # avoid import cycle

        enclave = self._enclaves.get(report.enclave_id)
        if enclave is None or not enclave._verify_report_mac(report):
            raise EnclaveError("local report does not verify on this platform")
        body = Quote.body_bytes(
            self.platform_id, report.measurement, report.report_data)
        signature = self.attestation_key.rsa.sign(body)
        return Quote(
            platform_id=self.platform_id,
            measurement=report.measurement,
            report_data=report.report_data,
            signature=signature,
        )
