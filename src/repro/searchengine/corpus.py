"""Synthetic web corpus for the search engine.

Documents are generated per topic from the shared vocabularies: a
document about "health" mostly contains health terms, a sprinkling of
general terms, and occasional cross-topic words (which is what makes
fake-query results sometimes collide with real-query results — the
correctness loss Fig 6 measures for filtering-based systems).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.datasets.vocabulary import (
    ALL_TOPICS,
    GENERAL_TERMS,
    build_topic_vocabularies,
)


@dataclass(frozen=True)
class Document:
    """One indexed web page."""

    doc_id: int
    url: str
    topic: str
    tokens: Tuple[str, ...]

    @property
    def title_terms(self) -> Tuple[str, ...]:
        """The first few distinct tokens act as the page title — the
        only document text a search client sees in result snippets
        (what OR-based systems filter on)."""
        seen = []
        for token in self.tokens:
            if token not in seen:
                seen.append(token)
            if len(seen) == 8:
                break
        return tuple(seen)


@dataclass
class Corpus:
    """A generated document collection."""

    documents: List[Document]
    _by_topic: Dict[str, List[Document]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_topic:
            for document in self.documents:
                self._by_topic.setdefault(document.topic, []).append(document)

    def __len__(self) -> int:
        return len(self.documents)

    def by_topic(self, topic: str) -> List[Document]:
        return list(self._by_topic.get(topic, []))


def build_corpus(docs_per_topic: int = 120, doc_length: int = 60,
                 cross_topic_rate: float = 0.08,
                 seed: int = 0) -> Corpus:
    """Generate a corpus covering every topic.

    Parameters
    ----------
    docs_per_topic:
        Documents per topic (12 topics → ~1.4 k documents at default).
    doc_length:
        Tokens per document.
    cross_topic_rate:
        Probability each token is borrowed from a random *other* topic —
        the polysemy/noise source that makes client-side filtering
        imperfect for OR-based systems.
    seed:
        Generator seed.
    """
    rng = random.Random(seed)
    vocabularies = build_topic_vocabularies()
    documents: List[Document] = []
    doc_id = 0
    for topic in ALL_TOPICS:
        own_terms = list(vocabularies[topic].terms)
        for _ in range(docs_per_topic):
            tokens: List[str] = []
            for _ in range(doc_length):
                roll = rng.random()
                if roll < cross_topic_rate:
                    other = rng.choice(ALL_TOPICS)
                    tokens.append(rng.choice(vocabularies[other].terms))
                elif roll < cross_topic_rate + 0.12:
                    tokens.append(rng.choice(GENERAL_TERMS))
                else:
                    # Zipf-ish skew towards the head of the topic vocab.
                    index = min(int(rng.expovariate(1.0 / 25.0)),
                                len(own_terms) - 1)
                    tokens.append(own_terms[index])
            documents.append(Document(
                doc_id=doc_id,
                url=f"https://web.example/{topic}/{doc_id}",
                topic=topic,
                tokens=tuple(tokens),
            ))
            doc_id += 1
    return Corpus(documents=documents)
