"""The search engine as a network service.

Wraps the pure :class:`~repro.searchengine.engine.SearchEngine` behind a
transport node with:

- a processing-latency model (commercial engines answer in a few
  hundred milliseconds; the default is calibrated for Fig 8a),
- the per-identity :class:`~repro.searchengine.ratelimit.RateLimiter`,
- the honest-but-curious :class:`~repro.searchengine.adversary.QueryLogTap`,
- TLS support, so enclaves can query over channels the relay host
  cannot read (§V-F: "CYCLOSA uses TLS connections to search engines
  ... established from within enclaves").

Two request flavours are served:

- ``search`` — plaintext payload ``{"query", "meta"}``; the identity
  logged is the transport source (used by Direct/TMN/GooPIR and by
  relays that terminate TLS themselves).
- ``searchtls`` — payload is a sealed record on an established secure
  channel; the engine decrypts, serves and responds sealed.

``meta`` carries *evaluation-only* ground truth (true user, fake flag,
group id). It rides inside the encrypted payload, is copied verbatim to
the log tap, and is read exclusively by metric code — never by the
attack, which sees only (identity, text, time).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.crypto.keys import IdentityKeyPair
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.transport import Network, NetNode, RequestContext
from repro.net.tls import SecureChannelManager, SignatureAuthenticator
from repro.obs import (OBS, TraceContext, close_remote_span,
                       open_remote_span, query_hash_bucket)
from repro.searchengine.adversary import QueryLogTap
from repro.searchengine.engine import SearchEngine
from repro.searchengine.ratelimit import RateLimiter, RateLimitVerdict

DEFAULT_PROCESSING = LogNormalLatency(median=0.32, sigma=0.35)


class SearchEngineNode(NetNode):
    """The engine's network front-end."""

    def __init__(self, network: Network, engine: SearchEngine, rng,
                 address: str = "engine",
                 processing: Optional[LatencyModel] = None,
                 rate_limiter: Optional[RateLimiter] = None,
                 log_capacity: Optional[int] = None) -> None:
        super().__init__(network, address)
        self.engine = engine
        self.rng = rng
        self.processing = processing or DEFAULT_PROCESSING
        self.rate_limiter = rate_limiter
        self.tap = QueryLogTap(capacity=log_capacity)
        self.identity = IdentityKeyPair.generate(bits=512, rng=rng)
        self.tls = SecureChannelManager(
            self, SignatureAuthenticator(self.identity), rng)

    # -- request handling --------------------------------------------------

    def handle_request(self, ctx: RequestContext) -> None:
        if self.tls.handle_handshake(ctx):
            return
        kind = ctx.request.kind
        if kind == "search.req":
            self._serve_plain(ctx)
        elif kind == "searchtls.req":
            self._serve_sealed(ctx)
        # Unknown kinds are silently dropped (the engine is not a peer).

    def _serve_plain(self, ctx: RequestContext) -> None:
        payload = ctx.request.payload
        query = payload["query"]
        meta = payload.get("meta") or {}
        identity = ctx.request.src
        self._admit_and_answer(ctx, identity, query, meta, sealed_for=None)

    def _serve_sealed(self, ctx: RequestContext) -> None:
        channel = self.tls.channel(ctx.request.src)
        if channel is None:
            return  # no channel: drop (client must handshake first)
        record = channel.open(ctx.request.payload)
        self._admit_and_answer(
            ctx, ctx.request.src, record["query"], record.get("meta") or {},
            sealed_for=channel, traceparent=record.get("tp"))

    def _emit_serve_span(self, traceparent: Optional[str], query: str,
                         status: str, hits: int, delay: float) -> None:
        """The engine-side span of a distributed trace.

        The propagated context arrived inside the sealed record; the
        span carries only a hash bucket of the query (never text) and
        the same attribute keys whatever the record held, so an
        observer of the telemetry cannot tell real from fake legs.
        """
        trace_ctx = TraceContext.from_traceparent(traceparent)
        if trace_ctx is None:
            return
        span = open_remote_span(
            OBS.tracer, "engine.serve", trace_ctx, node=self.address,
            attributes={"status": status, "hits": hits,
                        "query_bucket": query_hash_bucket(query)})
        close_remote_span(OBS.router, self.address, span,
                          end_time=span.start + delay)

    def _admit_and_answer(self, ctx: RequestContext, identity: str,
                          query: str, meta: Dict[str, Any],
                          sealed_for, traceparent: Optional[str] = None
                          ) -> None:
        now = self.network.simulator.now
        if self.rate_limiter is not None:
            verdict = self.rate_limiter.check(identity, now)
            if OBS.enabled:
                # Counted here, at the front-end, rather than inside
                # the limiter: fault injection can wrap the limiter
                # (rate-limit storms) and those forced captchas must
                # show up in the per-window verdict series too.
                OBS.registry.counter(
                    "cyclosa_engine_ratelimit_verdicts_total",
                    "admission verdicts issued by the engine front-end",
                    verdict=verdict.value).inc()
            if verdict is RateLimitVerdict.CAPTCHA:
                response: Dict[str, Any] = {"status": "captcha", "hits": []}
                if OBS.enabled:
                    self._emit_serve_span(traceparent, query,
                                          status="captcha", hits=0,
                                          delay=0.005)
                self._respond_after_delay(ctx, response, sealed_for,
                                          delay=0.005)
                return
        # Honest-but-curious: log *then* serve faithfully (§III).
        self.tap.record(
            identity=identity, text=query, timestamp=now,
            true_user=meta.get("true_user"),
            is_fake=bool(meta.get("is_fake", False)),
            group_id=meta.get("group_id"))
        if OBS.enabled:
            OBS.registry.counter("cyclosa_engine_queries_total",
                                 "queries served by the engine").inc()
        hits = self.engine.search(query)
        response = {
            "status": "ok",
            "hits": [
                {
                    "doc_id": hit.doc_id,
                    "url": hit.url,
                    "score": hit.score,
                    "title": list(self.engine.document(hit.doc_id).title_terms),
                }
                for hit in hits
            ],
        }
        delay = self.processing.sample(self.rng)
        if OBS.enabled:
            OBS.registry.histogram(
                "cyclosa_engine_processing_seconds",
                "engine-side processing latency per answered query"
            ).observe(delay)
            span = OBS.tracer.start_span("engine_processing", attributes={
                "identity": identity})
            OBS.tracer.end_span(span, end_time=span.start + delay)
            self._emit_serve_span(traceparent, query, status="ok",
                                  hits=len(response["hits"]), delay=delay)
        self._respond_after_delay(ctx, response, sealed_for, delay=delay)

    def _respond_after_delay(self, ctx: RequestContext, response: Dict[str, Any],
                             sealed_for, delay: float) -> None:
        def respond() -> None:
            if sealed_for is not None:
                ctx.respond(sealed_for.seal(response, rng=self.rng))
            else:
                ctx.respond(response)

        self.network.simulator.schedule(delay, respond)
