"""The search engine as a network service.

Wraps the pure :class:`~repro.searchengine.engine.SearchEngine` behind a
transport node with:

- a processing-latency model (commercial engines answer in a few
  hundred milliseconds; the default is calibrated for Fig 8a),
- the per-identity :class:`~repro.searchengine.ratelimit.RateLimiter`
  (one limiter per replica — Fig 8d reproduces per replica),
- the honest-but-curious :class:`~repro.searchengine.adversary.QueryLogTap`,
- TLS support, so enclaves can query over channels the relay host
  cannot read (§V-F: "CYCLOSA uses TLS connections to search engines
  ... established from within enclaves").

Two request flavours are served:

- ``search`` — plaintext payload ``{"query", "meta"}``; the identity
  logged is the transport source (used by Direct/TMN/GooPIR and by
  relays that terminate TLS themselves).
- ``searchtls`` — payload is a sealed record on an established secure
  channel; the engine decrypts, serves and responds sealed.

``meta`` carries *evaluation-only* ground truth (true user, fake flag,
group id). It rides inside the encrypted payload, is copied verbatim to
the log tap, and is read exclusively by metric code — never by the
attack, which sees only (identity, text, time).

Engine tier scale-out
---------------------
A node can be one replica of a sharded engine tier (*cluster* lists
every replica address, *engine* holds this replica's shard — see
:mod:`repro.searchengine.sharding`). The replica that receives a query
acts as its coordinator: it ranks its own shard, scatter-gathers
partial top-k lists from the sibling replicas over sealed channels
(kind ``shard``), and merges them into a result page byte-identical to
the unsharded engine's. A sibling that stays silent past
*shard_timeout* is skipped (degraded page from the surviving shards —
the chaos matrix's replica-crash cell exercises exactly this).

Two caches and a batch window cut the ranking CPU without touching the
wire (*privacy invariant*: a cache hit is indistinguishable from a miss
to a wiretap — message kinds, sealed sizes and the seeded response
timing are identical either way; only wall-clock ranking work is
skipped):

- *response_cache* — final result pages per query at the coordinator;
- *partial_cache* — per-shard partial top-k lists per term tuple;
- *batch_window* > 0 queues admitted queries on the simulated clock
  and serves each flush together: duplicates are ranked once and the
  whole batch shares one scatter-gather round per sibling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.crypto.keys import IdentityKeyPair
from repro.net.latency import LatencyModel, LogNormalLatency
from repro.net.tls import SecureChannelManager, SignatureAuthenticator, TlsError
from repro.net.transport import Network, NetNode, RequestContext
from repro.obs import (OBS, TraceContext, close_remote_span,
                       open_remote_span, query_hash_bucket)
from repro.searchengine.adversary import QueryLogTap
from repro.searchengine.cache import ResultCache
from repro.searchengine.engine import SearchEngine, SearchHit
from repro.searchengine.ratelimit import RateLimiter, RateLimitVerdict
from repro.searchengine.sharding import query_plan

DEFAULT_PROCESSING = LogNormalLatency(median=0.32, sigma=0.35)

#: RPC kind of the sealed replica-to-replica partial top-k exchange.
SHARD_KIND = "shard"


@dataclass
class _PendingQuery:
    """One admitted query waiting to be served (its batch, or its
    scatter-gather round, is still in flight)."""

    ctx: RequestContext
    identity: str
    query: str
    sealed_for: Any
    traceparent: Optional[str] = None


@dataclass
class _ScatterState:
    """Book-keeping of one scatter-gather round."""

    pending: int
    partials: Dict[str, Any] = field(default_factory=dict)
    done: bool = False


class SearchEngineNode(NetNode):
    """The engine's network front-end (one replica of the tier)."""

    def __init__(self, network: Network, engine: SearchEngine, rng,
                 address: str = "engine",
                 processing: Optional[LatencyModel] = None,
                 rate_limiter: Optional[RateLimiter] = None,
                 log_capacity: Optional[int] = None,
                 cluster: Optional[Sequence[str]] = None,
                 response_cache: Optional[ResultCache] = None,
                 partial_cache: Optional[ResultCache] = None,
                 batch_window: float = 0.0,
                 shard_timeout: float = 2.0) -> None:
        super().__init__(network, address)
        self.engine = engine
        self.rng = rng
        self.processing = processing or DEFAULT_PROCESSING
        self.rate_limiter = rate_limiter
        self.tap = QueryLogTap(capacity=log_capacity)
        self.identity = IdentityKeyPair.generate(bits=512, rng=rng)
        self.tls = SecureChannelManager(
            self, SignatureAuthenticator(self.identity), rng)
        self.cluster = list(cluster) if cluster else None
        self.siblings = ([peer for peer in self.cluster if peer != address]
                         if self.cluster else [])
        self.response_cache = response_cache
        self.partial_cache = partial_cache
        self.batch_window = batch_window
        self.shard_timeout = shard_timeout
        self._batch: List[_PendingQuery] = []

    # -- request handling --------------------------------------------------

    def handle_request(self, ctx: RequestContext) -> None:
        if self.tls.handle_handshake(ctx):
            return
        kind = ctx.request.kind
        if kind == "search.req":
            self._serve_plain(ctx)
        elif kind == "searchtls.req":
            self._serve_sealed(ctx)
        elif kind == f"{SHARD_KIND}.req":
            self._serve_shard(ctx)
        # Unknown kinds are silently dropped (the engine is not a peer).

    def _serve_plain(self, ctx: RequestContext) -> None:
        payload = ctx.request.payload
        query = payload["query"]
        meta = payload.get("meta") or {}
        identity = ctx.request.src
        self._admit_and_answer(ctx, identity, query, meta, sealed_for=None)

    def _serve_sealed(self, ctx: RequestContext) -> None:
        channel = self.tls.channel(ctx.request.src)
        if channel is None:
            return  # no channel: drop (client must handshake first)
        record = channel.open(ctx.request.payload)
        self._admit_and_answer(
            ctx, ctx.request.src, record["query"], record.get("meta") or {},
            sealed_for=channel, traceparent=record.get("tp"))

    def _emit_serve_span(self, traceparent: Optional[str], query: str,
                         status: str, hits: int, delay: float) -> None:
        """The engine-side span of a distributed trace.

        The propagated context arrived inside the sealed record; the
        span carries only a hash bucket of the query (never text) and
        the same attribute keys whatever the record held, so an
        observer of the telemetry cannot tell real from fake legs.
        """
        trace_ctx = TraceContext.from_traceparent(traceparent)
        if trace_ctx is None:
            return
        span = open_remote_span(
            OBS.tracer, "engine.serve", trace_ctx, node=self.address,
            attributes={"status": status, "hits": hits,
                        "query_bucket": query_hash_bucket(query)})
        close_remote_span(OBS.router, self.address, span,
                          end_time=span.start + delay)

    def _admit_and_answer(self, ctx: RequestContext, identity: str,
                          query: str, meta: Dict[str, Any],
                          sealed_for, traceparent: Optional[str] = None
                          ) -> None:
        now = self.network.simulator.now
        if self.rate_limiter is not None:
            verdict = self.rate_limiter.check(identity, now)
            if OBS.enabled:
                # Counted here, at the front-end, rather than inside
                # the limiter: fault injection can wrap the limiter
                # (rate-limit storms) and those forced captchas must
                # show up in the per-window verdict series too.
                OBS.registry.counter(
                    "cyclosa_engine_ratelimit_verdicts_total",
                    "admission verdicts issued by the engine front-end",
                    verdict=verdict.value).inc()
            if verdict is RateLimitVerdict.CAPTCHA:
                response: Dict[str, Any] = {"status": "captcha", "hits": []}
                if OBS.enabled:
                    self._emit_serve_span(traceparent, query,
                                          status="captcha", hits=0,
                                          delay=0.005)
                self._respond_after_delay(ctx, response, sealed_for,
                                          delay=0.005)
                return
        # Honest-but-curious: log *then* serve faithfully (§III).
        self.tap.record(
            identity=identity, text=query, timestamp=now,
            true_user=meta.get("true_user"),
            is_fake=bool(meta.get("is_fake", False)),
            group_id=meta.get("group_id"))
        if OBS.enabled:
            OBS.registry.counter("cyclosa_engine_queries_total",
                                 "queries served by the engine").inc()
            OBS.registry.counter(
                "cyclosa_engine_replica_queries_total",
                "queries served, per engine replica",
                replica=self.address).inc()
        job = _PendingQuery(ctx=ctx, identity=identity, query=query,
                            sealed_for=sealed_for, traceparent=traceparent)
        if self.batch_window > 0:
            self._batch.append(job)
            if len(self._batch) == 1:
                self.network.simulator.post(self.batch_window,
                                            self._flush_batch)
            return
        self._serve_jobs([job])

    # -- batching ----------------------------------------------------------

    def _flush_batch(self) -> None:
        jobs, self._batch = self._batch, []
        if not jobs:
            return
        if OBS.enabled:
            OBS.registry.histogram(
                "cyclosa_engine_batch_size",
                "admitted queries per batch-window flush").observe(len(jobs))
        self._serve_jobs(jobs)

    # -- serving -----------------------------------------------------------

    def _serve_jobs(self, jobs: List[_PendingQuery]) -> None:
        """Serve a set of admitted queries together: duplicates are
        ranked once, and (in a cluster) the whole set shares one
        scatter-gather round per sibling replica."""
        unique = list(dict.fromkeys(job.query for job in jobs))
        if not self.siblings:
            self._finish_jobs(jobs, unique, plans=None, sibling_partials={})
            return
        topk = self.engine.results_per_query
        plans = [query_plan(query, self.engine.or_support)
                 for query in unique]
        state = _ScatterState(pending=len(self.siblings))

        def conclude() -> None:
            if state.done or state.pending > 0:
                return
            state.done = True
            self._finish_jobs(jobs, unique, plans=plans,
                              sibling_partials=state.partials)

        request = {"q": plans, "k": topk}
        for sibling in self.siblings:
            channel = self.tls.channel(sibling)
            if channel is None:
                state.pending -= 1
                continue

            def on_reply(payload: Any, channel=channel,
                         sibling=sibling) -> None:
                try:
                    record = channel.open(payload)
                except TlsError:
                    record = None
                if isinstance(record, dict) and "p" in record:
                    state.partials[sibling] = record["p"]
                state.pending -= 1
                conclude()

            def on_timeout(sibling=sibling) -> None:
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_engine_shard_timeouts_total",
                        "sibling scatter-gather requests that timed out",
                        replica=self.address).inc()
                state.pending -= 1
                conclude()

            self.request(sibling, channel.seal(request, rng=self.rng),
                         on_reply, timeout=self.shard_timeout,
                         on_timeout=on_timeout, kind=SHARD_KIND)
        conclude()  # every sibling may have lacked a channel

    def _serve_shard(self, ctx: RequestContext) -> None:
        """Answer a sibling coordinator's sealed partial top-k request."""
        channel = self.tls.channel(ctx.request.src)
        if channel is None:
            return
        try:
            record = channel.open(ctx.request.payload)
        except TlsError:
            return
        topk = record["k"]
        partials = [
            [self._encode_hits(self._partial_rank(terms, topk))
             for terms in term_lists]
            for term_lists in record["q"]
        ]
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_engine_shard_requests_total",
                "sibling partial top-k requests served",
                replica=self.address).inc()
        ctx.respond(channel.seal({"p": partials}, rng=self.rng))

    def _partial_rank(self, terms: Sequence[str],
                      topk: int) -> List[SearchHit]:
        """This replica's shard partial for *terms*, through the
        partial cache when one is configured."""
        if self.partial_cache is None:
            return self.engine.rank_terms(terms, topk)
        key = (tuple(terms), topk)
        found, hits = self.partial_cache.get(key)
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_engine_shard_lookups_total",
                "partial-cache lookups at shard ranking time",
                replica=self.address,
                result="hit" if found else "miss").inc()
        if not found:
            hits = self.engine.rank_terms(terms, topk)
            self.partial_cache.put(key, hits)
        return hits

    def _encode_hits(self, hits: Sequence[SearchHit]) -> List[Dict[str, Any]]:
        return [
            {"d": hit.doc_id, "u": hit.url, "s": hit.score,
             "t": list(self.engine.document(hit.doc_id).title_terms)}
            for hit in hits
        ]

    def _result_page(self, query: str, plans, plan_index: int,
                     sibling_partials: Dict[str, Any]) -> List[Dict[str, Any]]:
        """The final ``hits`` page for one query (coordinator side)."""
        topk = self.engine.results_per_query
        if not self.siblings:
            hits = self.engine.search(query)
            return [
                {
                    "doc_id": hit.doc_id,
                    "url": hit.url,
                    "score": hit.score,
                    "title": list(self.engine.document(hit.doc_id).title_terms),
                }
                for hit in hits
            ]
        term_lists = plans[plan_index]
        rankings: List[List[Dict[str, Any]]] = []
        for sub_index, terms in enumerate(term_lists):
            candidates = self._encode_hits(self._partial_rank(terms, topk))
            for sibling in self.siblings:
                partial = sibling_partials.get(sibling)
                if partial is None:
                    continue  # silent sibling: degrade to surviving shards
                try:
                    candidates.extend(partial[plan_index][sub_index])
                except (IndexError, KeyError, TypeError):
                    continue  # malformed partial: treat as missing
            candidates.sort(key=lambda h: (-h["s"], h["d"]))
            rankings.append(candidates[:topk])
        if len(rankings) == 1:
            merged = rankings[0]
        else:
            # OR union, per-document best score (first sub-query wins
            # ties) — mirrors engine.or_union over wire-encoded hits.
            best: Dict[int, Dict[str, Any]] = {}
            for ranking in rankings:
                for hit in ranking:
                    existing = best.get(hit["d"])
                    if existing is None or hit["s"] > existing["s"]:
                        best[hit["d"]] = hit
            merged = sorted(best.values(),
                            key=lambda h: (-h["s"], h["d"]))[: 2 * topk]
        return [
            {"doc_id": hit["d"], "url": hit["u"], "score": hit["s"],
             "title": list(hit["t"])}
            for hit in merged
        ]

    def _finish_jobs(self, jobs: List[_PendingQuery], unique: List[str],
                     plans, sibling_partials: Dict[str, Any]) -> None:
        pages: Dict[str, List[Dict[str, Any]]] = {}
        for plan_index, query in enumerate(unique):
            if self.response_cache is not None:
                found, page = self.response_cache.get(query)
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_engine_cache_lookups_total",
                        "response-cache lookups at the replica front-end",
                        replica=self.address,
                        result="hit" if found else "miss").inc()
                if found:
                    pages[query] = page
                    continue
            page = self._result_page(query, plans, plan_index,
                                     sibling_partials)
            if self.response_cache is not None:
                self.response_cache.put(query, page)
            pages[query] = page
        for job in jobs:
            response = {"status": "ok", "hits": list(pages[job.query])}
            delay = self.processing.sample(self.rng)
            if OBS.enabled:
                OBS.registry.histogram(
                    "cyclosa_engine_processing_seconds",
                    "engine-side processing latency per answered query"
                ).observe(delay)
                span = OBS.tracer.start_span("engine_processing", attributes={
                    "identity": job.identity})
                OBS.tracer.end_span(span, end_time=span.start + delay)
                self._emit_serve_span(job.traceparent, job.query, status="ok",
                                      hits=len(response["hits"]), delay=delay)
            self._respond_after_delay(job.ctx, response, job.sealed_for,
                                      delay=delay)

    def _respond_after_delay(self, ctx: RequestContext, response: Dict[str, Any],
                             sealed_for, delay: float) -> None:
        def respond() -> None:
            if sealed_for is not None:
                ctx.respond(sealed_for.seal(response, rng=self.rng))
            else:
                ctx.respond(response)

        self.network.simulator.post(delay, respond)
