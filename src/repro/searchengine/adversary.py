"""Honest-but-curious query logging.

§III: the search engine "faithfully replies to search queries while
gathering information from incoming queries ... is able to build user
profiles and run re-identification attacks". The tap records exactly
what the engine sees — the *network identity* the request arrived from
and the query text — which is the input SimAttack consumes.

The crucial modelling point: under unlinkability systems the identity
the engine sees is a relay/exit/proxy, not the user; under
TrackMeNot/GooPIR it is the real user. The privacy experiments differ
only in what ends up in this log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.obs import OBS


@dataclass(frozen=True)
class LoggedQuery:
    """One engine-side observation."""

    identity: str
    text: str
    timestamp: float
    # Ground-truth annotations carried for evaluation only — the
    # adversary's attack code never reads them; metrics do.
    true_user: Optional[str] = None
    is_fake: bool = False
    group_id: Optional[int] = None
    #: Arrival rank at this tap (0, 1, 2, ...). Within one tap the
    #: deque is already arrival-ordered; the explicit rank exists so a
    #: *merge* across replica taps can break same-timestamp ties
    #: deterministically (see ``CyclosaNetwork.engine_log``).
    seq: int = 0


class QueryLogTap:
    """Accumulates the engine's view of incoming traffic.

    The log is a ring buffer: with *capacity* set, only the most
    recent observations are retained — a real honest-but-curious
    engine has bounded storage too, and long simulated runs must not
    grow memory without limit. Evictions are counted in
    :attr:`dropped` (and, when observability is enabled, in the
    ``cyclosa_engine_log_dropped_total`` counter).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("log capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._log: Deque[LoggedQuery] = deque(maxlen=capacity)
        #: Observations evicted from the ring so far.
        self.dropped = 0
        self._seq = 0

    def record(self, identity: str, text: str, timestamp: float,
               true_user: Optional[str] = None, is_fake: bool = False,
               group_id: Optional[int] = None) -> None:
        if self.capacity is not None and len(self._log) >= self.capacity:
            self.dropped += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "cyclosa_engine_log_dropped_total",
                    "engine-log observations evicted by the ring buffer"
                ).inc()
        self._log.append(LoggedQuery(
            identity=identity, text=text, timestamp=timestamp,
            true_user=true_user, is_fake=is_fake, group_id=group_id,
            seq=self._seq))
        self._seq += 1

    @property
    def entries(self) -> List[LoggedQuery]:
        """The retained observations, oldest first (a copy)."""
        return list(self._log)

    def __len__(self) -> int:
        return len(self._log)

    def clear(self) -> None:
        self._log.clear()
