"""Sharded TF-IDF: partition the posting lists, merge byte-identically.

The engine tier scales out by splitting the corpus across N replica
nodes (:mod:`repro.searchengine.node`), each indexing one shard. The
invariant everything here exists to preserve:

    **the merged sharded top-k is byte-identical to the unsharded
    engine's top-k, at any shard count.**

Three facts make that possible:

1. *Deterministic assignment* — document ``d`` lives in shard
   ``d.doc_id % num_shards`` and nowhere else, so every document is
   scored exactly once.
2. *Corpus-global IDF* — every shard scores with
   :meth:`SearchEngine.compute_idf` over the whole corpus, so a
   document's accumulated score is bit-for-bit the number the
   unsharded index would produce (same terms, same weights, same
   float-addition order).
3. *Total order* — rankings are ordered by ``(-score, doc_id)``; since
   per-document scores agree bitwise and ``doc_id`` is unique, merging
   per-shard partial top-k lists under the same key reproduces the
   global order exactly, and a global top-k document is necessarily in
   its own shard's top-k.

OR queries need care: the union-of-subquery-pages step truncates each
sub-query's page to the *global* top-k first (a document can sneak into
a small shard's page while missing the global page), so coordinators
merge per sub-query and only then apply :func:`or_union` — exactly the
order :class:`ShardedSearchEngine.search` implements.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence

from repro.searchengine.corpus import Corpus, Document
from repro.searchengine.engine import (OR_SEPARATOR, SearchEngine, SearchHit,
                                       or_union, split_or)
from repro.text.tokenize import tokenize


def shard_of(doc_id: int, num_shards: int) -> int:
    """The shard a document is assigned to (deterministic, total)."""
    return doc_id % num_shards


def shard_documents(corpus: Corpus,
                    num_shards: int) -> List[List[Document]]:
    """Partition the corpus documents by :func:`shard_of`, preserving
    corpus order within each shard."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    shards: List[List[Document]] = [[] for _ in range(num_shards)]
    for document in corpus.documents:
        shards[shard_of(document.doc_id, num_shards)].append(document)
    return shards


def build_shard_engines(corpus: Corpus, num_shards: int,
                        results_per_query: int = 10,
                        or_support: str = "native") -> List[SearchEngine]:
    """One :class:`SearchEngine` per shard, all sharing corpus-global
    IDF statistics."""
    idf = SearchEngine.compute_idf(corpus.documents)
    return [
        SearchEngine(corpus, results_per_query=results_per_query,
                     or_support=or_support, documents=shard, idf=idf)
        for shard in shard_documents(corpus, num_shards)
    ]


def merge_partials(partials: Sequence[Sequence[SearchHit]],
                   topk: int) -> List[SearchHit]:
    """Merge per-shard partial top-k lists into the global top-k.

    Byte-deterministic: ordered by ``(-score, doc_id)``, the same total
    order the unsharded engine ranks under. Each document appears in at
    most one partial, so no dedup is needed.
    """
    merged = sorted((hit for partial in partials for hit in partial),
                    key=lambda h: (-h.score, h.doc_id))
    return merged[:topk]


def query_plan(query: str, or_support: str) -> List[List[str]]:
    """The per-sub-query term lists a coordinator scatters to shards.

    One entry for a plain query; one entry per sub-query for a
    native-OR query (merging must happen per sub-query *before* the OR
    union — see the module docstring).
    """
    subqueries = split_or(query, or_support)
    if subqueries is not None:
        return [tokenize(subquery) for subquery in subqueries]
    return [tokenize(query.replace(OR_SEPARATOR, " "))]


def combine_subquery_rankings(rankings: Sequence[List[SearchHit]],
                              topk: int) -> List[SearchHit]:
    """Final result page from per-sub-query *global* rankings: the
    ranking itself for a plain query, the OR union otherwise."""
    if len(rankings) == 1:
        return rankings[0]
    return or_union(rankings, topk)


def replica_addresses(num_replicas: int) -> List[str]:
    """Transport addresses of the engine replica tier. Replica 0 keeps
    the historical ``engine`` address, so single-replica deployments
    stay byte-identical to the pre-sharding ones."""
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    return ["engine"] + [f"engine{index}"
                         for index in range(1, num_replicas)]


def route_to_replica(identity: str, addresses: Sequence[str]) -> str:
    """Deterministically assign a client identity to one replica.

    A stable content hash (crc32, seed-independent) keeps the mapping
    identical across runs and processes, so per-identity rate limiting
    (Fig 8d) keeps seeing every identity at the same replica.
    """
    if not addresses:
        raise ValueError("no replica addresses to route to")
    return addresses[zlib.crc32(identity.encode("utf-8")) % len(addresses)]


class ShardedSearchEngine:
    """In-process facade over N shard engines.

    Drop-in for :class:`SearchEngine` where ranking is concerned:
    ``search`` returns byte-identical results at any ``num_shards``
    (the equivalence the tier's tests pin). The network tier
    distributes the same computation across replica nodes; this class
    is the reference the wire protocol must agree with.
    """

    def __init__(self, corpus: Corpus, num_shards: int,
                 results_per_query: int = 10,
                 or_support: str = "native") -> None:
        self.corpus = corpus
        self.num_shards = num_shards
        self.results_per_query = results_per_query
        self.or_support = or_support
        self.shards = build_shard_engines(
            corpus, num_shards, results_per_query=results_per_query,
            or_support=or_support)

    def search(self, query: str,
               topk: Optional[int] = None) -> List[SearchHit]:
        topk = topk if topk is not None else self.results_per_query
        rankings = [self._global_rank(terms, topk)
                    for terms in query_plan(query, self.or_support)]
        return combine_subquery_rankings(rankings, topk)

    def search_batch(self, queries: Sequence[str],
                     topk: Optional[int] = None) -> List[List[SearchHit]]:
        memo: Dict[str, List[SearchHit]] = {}
        results: List[List[SearchHit]] = []
        for query in queries:
            ranked = memo.get(query)
            if ranked is None:
                ranked = self.search(query, topk)
                memo[query] = ranked
            results.append(list(ranked))
        return results

    def _global_rank(self, terms: List[str], topk: int) -> List[SearchHit]:
        return merge_partials(
            [shard.rank_terms(terms, topk) for shard in self.shards], topk)

    def document(self, doc_id: int) -> Document:
        return self.shards[shard_of(doc_id, self.num_shards)].document(doc_id)
