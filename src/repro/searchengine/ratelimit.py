"""Per-identity rate limiting and bot detection.

§II-A4 and §VIII-D: "after a high flow of queries, Google's bot
protection triggers and asks to fill a captcha". A centralized proxy
(PEAS, X-Search) funnels *all* users' real and fake queries through one
network identity and trips this defence almost immediately; CYCLOSA
spreads the same load over every participating node and stays far below
the threshold (Fig 8d).

Model: a sliding one-hour window per identity. Exceeding
``max_per_window`` flips the identity into a captcha state: requests
are rejected until the window drains below the threshold *and* a
cool-down elapses (bots do not solve captchas, so a blocked proxy stays
blocked while it keeps hammering).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.obs import OBS


class RateLimitVerdict(enum.Enum):
    """Outcome of one admission check."""

    ADMITTED = "admitted"
    CAPTCHA = "captcha"


@dataclass
class _IdentityState:
    window: Deque[float] = field(default_factory=deque)
    blocked_until: float = 0.0
    admitted: int = 0
    rejected: int = 0


class RateLimiter:
    """Sliding-window per-identity admission control.

    Parameters
    ----------
    max_per_window:
        Requests allowed per identity per window. The experiments use
        the paper's implied Google-ish threshold (hundreds per hour
        from one address; Fig 8d draws the "Limit" line at 1 000/h).
    window_seconds:
        Window length (default one hour).
    captcha_cooldown:
        Extra seconds an identity stays blocked after last exceeding
        the limit.
    """

    def __init__(self, max_per_window: int = 1000,
                 window_seconds: float = 3600.0,
                 captcha_cooldown: float = 600.0) -> None:
        if max_per_window < 1:
            raise ValueError("max_per_window must be >= 1")
        self.max_per_window = max_per_window
        self.window_seconds = window_seconds
        self.captcha_cooldown = captcha_cooldown
        self._states: Dict[str, _IdentityState] = {}

    def check(self, identity: str, now: float) -> RateLimitVerdict:
        """Admit or reject one request from *identity* at time *now*."""
        state = self._states.setdefault(identity, _IdentityState())
        window = state.window
        cutoff = now - self.window_seconds
        while window and window[0] <= cutoff:
            window.popleft()
        if now < state.blocked_until:
            # Bots do not solve captchas: hammering while blocked renews
            # the cooldown, so a saturating proxy never recovers.
            state.blocked_until = max(state.blocked_until,
                                      now + self.captcha_cooldown)
            state.rejected += 1
            self._count_verdict(blocked=True)
            return RateLimitVerdict.CAPTCHA
        if len(window) >= self.max_per_window:
            state.blocked_until = now + self.captcha_cooldown
            state.rejected += 1
            self._count_verdict(blocked=True)
            return RateLimitVerdict.CAPTCHA
        window.append(now)
        state.admitted += 1
        self._count_verdict(blocked=False)
        return RateLimitVerdict.ADMITTED

    @staticmethod
    def _count_verdict(blocked: bool) -> None:
        if not OBS.enabled:
            return
        if blocked:
            OBS.registry.counter(
                "cyclosa_engine_ratelimit_captcha_total",
                "requests rejected by the engine's bot protection").inc()
        else:
            OBS.registry.counter(
                "cyclosa_engine_ratelimit_admitted_total",
                "requests admitted by the engine's bot protection").inc()

    def admitted(self, identity: str) -> int:
        state = self._states.get(identity)
        return state.admitted if state else 0

    def rejected(self, identity: str) -> int:
        state = self._states.get(identity)
        return state.rejected if state else 0

    def is_blocked(self, identity: str, now: float) -> bool:
        state = self._states.get(identity)
        return bool(state and now < state.blocked_until)
