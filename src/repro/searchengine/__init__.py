"""The search-engine substrate.

CYCLOSA targets an unmodified commercial engine (Google in the paper);
the experiments need three engine behaviours, all modelled here:

- **Ranked retrieval** (:mod:`repro.searchengine.engine`): a TF-IDF
  engine over a synthetic corpus, so correctness/completeness of
  filtered results (Fig 6) can be measured exactly.
- **Bot defence** (:mod:`repro.searchengine.ratelimit`): per-identity
  sliding-window rate limiting with a captcha state, reproducing the
  "high flow of queries triggers Google's bot protection" behaviour
  that breaks centralized proxies (Fig 8d).
- **Honest-but-curious logging** (:mod:`repro.searchengine.adversary`):
  the engine faithfully answers while recording (identity, query)
  pairs; the SimAttack adversary reads this log (§III, §VII-E).
"""

from repro.searchengine.adversary import LoggedQuery, QueryLogTap
from repro.searchengine.corpus import Corpus, Document, build_corpus
from repro.searchengine.engine import SearchEngine, SearchHit
from repro.searchengine.ratelimit import RateLimiter, RateLimitVerdict

__all__ = [
    "LoggedQuery",
    "QueryLogTap",
    "Corpus",
    "Document",
    "build_corpus",
    "SearchEngine",
    "SearchHit",
    "RateLimiter",
    "RateLimitVerdict",
]
