"""TF-IDF ranked retrieval with optional OR-operator semantics.

The engine answers a query with its top-*k* documents under cosine
TF-IDF scoring. Two behaviours matter for the paper's accuracy argument
(§II-A3, Fig 6):

- ``or_support="native"``: ``a OR b`` returns a score-merged union of
  the sub-queries' results — the best case GooPIR/PEAS can hope for.
- ``or_support="none"``: the OR string is treated as one long bag of
  words (what §II-A3 reports real engines do), diluting the real
  query's terms among the fakes' and wrecking result relevance.

Either way the response to an OR query is a single merged list in which
the client cannot tell which document answered which sub-query — the
root cause of the correctness/completeness losses CYCLOSA avoids by
never aggregating queries.

Sharding support: an engine instance can index a *subset* of the corpus
(one shard) while scoring with corpus-global IDF statistics. Because a
document's score accumulates exactly the same terms with exactly the
same weights whether its shard or the full index ranks it, a shard's
partial top-k carries bit-identical scores — which is what lets
:mod:`repro.searchengine.sharding` merge partials into a result list
byte-identical to the unsharded engine's (see there).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.searchengine.corpus import Corpus, Document
from repro.text.tokenize import tokenize

OR_SEPARATOR = " OR "


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    doc_id: int
    url: str
    score: float
    snippet_terms: Tuple[str, ...]


def split_or(query: str, or_support: str) -> Optional[List[str]]:
    """The sub-queries of a native-OR query, or ``None`` when the query
    is served as one bag of words (plain query, or OR without native
    support)."""
    if OR_SEPARATOR in query and or_support == "native":
        subqueries = [part for part in query.split(OR_SEPARATOR)
                      if part.strip()]
        if subqueries:
            return subqueries
    return None


def or_union(rankings: Iterable[Sequence[SearchHit]],
             topk: int) -> List[SearchHit]:
    """Union of per-subquery rankings, merged by score.

    An OR query matches more documents, so the engine returns a
    proportionally larger result page (up to ``2 * topk``). The client
    still cannot tell which document answered which sub-query —
    recovering the real answer from this merged list is the filtering
    problem that costs OR systems accuracy (Fig 6). A document hit by
    several sub-queries keeps its best score (first sub-query wins
    ties, matching iteration order).
    """
    best: Dict[int, SearchHit] = {}
    for ranking in rankings:
        for hit in ranking:
            existing = best.get(hit.doc_id)
            if existing is None or hit.score > existing.score:
                best[hit.doc_id] = hit
    merged = sorted(best.values(), key=lambda h: (-h.score, h.doc_id))
    # The engine's OR result page is larger than a plain page but
    # not k+1 pages: sub-queries compete for the slots. This is the
    # completeness loss OR systems pay (and it worsens with k).
    return merged[: 2 * topk]


class SearchEngine:
    """An inverted-index TF-IDF engine over a :class:`Corpus`.

    Pass *documents* to index only a subset (one shard) and *idf* to
    score with precomputed corpus-global statistics; by default the
    engine indexes and computes statistics over the whole corpus.
    """

    def __init__(self, corpus: Corpus, results_per_query: int = 10,
                 or_support: str = "native", *,
                 documents: Optional[Sequence[Document]] = None,
                 idf: Optional[Dict[str, float]] = None) -> None:
        if or_support not in ("native", "none"):
            raise ValueError("or_support must be 'native' or 'none'")
        self.corpus = corpus
        self.results_per_query = results_per_query
        self.or_support = or_support
        self._postings: Dict[str, List[Tuple[int, float]]] = {}
        self._doc_norms: Dict[int, float] = {}
        self._documents: Dict[int, Document] = {}
        self._build_index(
            corpus.documents if documents is None else documents, idf)

    @staticmethod
    def compute_idf(documents: Sequence[Document]) -> Dict[str, float]:
        """Smoothed IDF over *documents* — the corpus-global statistics
        every shard must share for scores to stay bit-identical."""
        num_docs = len(documents)
        term_doc_freq: Dict[str, int] = {}
        for document in documents:
            for term in dict.fromkeys(document.tokens):
                term_doc_freq[term] = term_doc_freq.get(term, 0) + 1
        return {
            term: math.log((1 + num_docs) / (1 + df)) + 1.0
            for term, df in term_doc_freq.items()
        }

    def _build_index(self, documents: Sequence[Document],
                     idf: Optional[Dict[str, float]]) -> None:
        doc_term_counts: List[Tuple[int, Dict[str, int]]] = []
        term_doc_freq: Dict[str, int] = {}
        for document in documents:
            counts: Dict[str, int] = {}
            for token in document.tokens:
                counts[token] = counts.get(token, 0) + 1
            doc_term_counts.append((document.doc_id, counts))
            self._documents[document.doc_id] = document
            if idf is None:
                for term in counts:
                    term_doc_freq[term] = term_doc_freq.get(term, 0) + 1
        if idf is None:
            num_docs = len(documents)
            idf = {
                term: math.log((1 + num_docs) / (1 + df)) + 1.0
                for term, df in term_doc_freq.items()
            }
        self._idf = idf
        for doc_id, counts in doc_term_counts:
            norm_sq = 0.0
            for term, count in counts.items():
                weight = (1.0 + math.log(count)) * self._idf[term]
                self._postings.setdefault(term, []).append((doc_id, weight))
                norm_sq += weight * weight
            self._doc_norms[doc_id] = math.sqrt(norm_sq) or 1.0

    # -- querying --------------------------------------------------------

    def search(self, query: str, topk: int | None = None) -> List[SearchHit]:
        """Answer *query*; handles the OR operator per ``or_support``."""
        topk = topk if topk is not None else self.results_per_query
        subqueries = split_or(query, self.or_support)
        if subqueries is not None:
            return or_union(
                (self._rank(tokenize(subquery), topk)
                 for subquery in subqueries), topk)
        # Either a plain query, or an OR query on an engine without
        # native OR support: one big bag of words.
        return self._rank(tokenize(query.replace(OR_SEPARATOR, " ")), topk)

    def search_batch(self, queries: Sequence[str],
                     topk: int | None = None) -> List[List[SearchHit]]:
        """One result list per query, with duplicate queries ranked
        once — the term-lookup amortisation behind replica batching.
        Equivalent to ``[self.search(q, topk) for q in queries]``."""
        memo: Dict[str, List[SearchHit]] = {}
        results: List[List[SearchHit]] = []
        for query in queries:
            ranked = memo.get(query)
            if ranked is None:
                ranked = self.search(query, topk)
                memo[query] = ranked
            results.append(list(ranked))
        return results

    def rank_terms(self, terms: Sequence[str], topk: int) -> List[SearchHit]:
        """Rank a pre-tokenised term list — the partial top-k a shard
        serves to scatter-gather coordinators."""
        return self._rank(terms, topk)

    def _rank(self, terms: Sequence[str], topk: int) -> List[SearchHit]:
        scores: Dict[int, float] = {}
        query_terms = [t for t in terms if t in self._postings]
        if not query_terms:
            return []
        for term in query_terms:
            idf = self._idf[term]
            for doc_id, weight in self._postings[term]:
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * weight
        ranked = sorted(
            ((score / self._doc_norms[doc_id], doc_id)
             for doc_id, score in scores.items()),
            key=lambda pair: (-pair[0], pair[1]))
        hits = []
        for score, doc_id in ranked[:topk]:
            document = self._documents[doc_id]
            snippet = tuple(t for t in query_terms
                            if t in set(document.tokens))[:5]
            hits.append(SearchHit(
                doc_id=doc_id, url=document.url, score=score,
                snippet_terms=snippet))
        return hits

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]
