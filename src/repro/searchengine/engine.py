"""TF-IDF ranked retrieval with optional OR-operator semantics.

The engine answers a query with its top-*k* documents under cosine
TF-IDF scoring. Two behaviours matter for the paper's accuracy argument
(§II-A3, Fig 6):

- ``or_support="native"``: ``a OR b`` returns a score-merged union of
  the sub-queries' results — the best case GooPIR/PEAS can hope for.
- ``or_support="none"``: the OR string is treated as one long bag of
  words (what §II-A3 reports real engines do), diluting the real
  query's terms among the fakes' and wrecking result relevance.

Either way the response to an OR query is a single merged list in which
the client cannot tell which document answered which sub-query — the
root cause of the correctness/completeness losses CYCLOSA avoids by
never aggregating queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.searchengine.corpus import Corpus, Document
from repro.text.tokenize import tokenize

OR_SEPARATOR = " OR "


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    doc_id: int
    url: str
    score: float
    snippet_terms: Tuple[str, ...]


class SearchEngine:
    """An inverted-index TF-IDF engine over a :class:`Corpus`."""

    def __init__(self, corpus: Corpus, results_per_query: int = 10,
                 or_support: str = "native") -> None:
        if or_support not in ("native", "none"):
            raise ValueError("or_support must be 'native' or 'none'")
        self.corpus = corpus
        self.results_per_query = results_per_query
        self.or_support = or_support
        self._postings: Dict[str, List[Tuple[int, float]]] = {}
        self._doc_norms: Dict[int, float] = {}
        self._documents: Dict[int, Document] = {}
        self._build_index()

    def _build_index(self) -> None:
        num_docs = len(self.corpus.documents)
        term_doc_freq: Dict[str, int] = {}
        doc_term_counts: List[Tuple[int, Dict[str, int]]] = []
        for document in self.corpus.documents:
            counts: Dict[str, int] = {}
            for token in document.tokens:
                counts[token] = counts.get(token, 0) + 1
            doc_term_counts.append((document.doc_id, counts))
            self._documents[document.doc_id] = document
            for term in counts:
                term_doc_freq[term] = term_doc_freq.get(term, 0) + 1
        self._idf = {
            term: math.log((1 + num_docs) / (1 + df)) + 1.0
            for term, df in term_doc_freq.items()
        }
        for doc_id, counts in doc_term_counts:
            norm_sq = 0.0
            for term, count in counts.items():
                weight = (1.0 + math.log(count)) * self._idf[term]
                self._postings.setdefault(term, []).append((doc_id, weight))
                norm_sq += weight * weight
            self._doc_norms[doc_id] = math.sqrt(norm_sq) or 1.0

    # -- querying --------------------------------------------------------

    def search(self, query: str, topk: int | None = None) -> List[SearchHit]:
        """Answer *query*; handles the OR operator per ``or_support``."""
        topk = topk if topk is not None else self.results_per_query
        if OR_SEPARATOR in query and self.or_support == "native":
            subqueries = [part for part in query.split(OR_SEPARATOR) if part.strip()]
            return self._merge_subquery_results(subqueries, topk)
        # Either a plain query, or an OR query on an engine without
        # native OR support: one big bag of words.
        return self._rank(tokenize(query.replace(OR_SEPARATOR, " ")), topk)

    def _merge_subquery_results(self, subqueries: Sequence[str],
                                topk: int) -> List[SearchHit]:
        """Union of per-subquery rankings, merged by score.

        An OR query matches more documents, so the engine returns a
        proportionally larger result page (up to *topk* per sub-query).
        The client still cannot tell which document answered which
        sub-query — recovering the real answer from this merged list is
        the filtering problem that costs OR systems accuracy (Fig 6).
        """
        best: Dict[int, SearchHit] = {}
        for subquery in subqueries:
            for hit in self._rank(tokenize(subquery), topk):
                existing = best.get(hit.doc_id)
                if existing is None or hit.score > existing.score:
                    best[hit.doc_id] = hit
        merged = sorted(best.values(), key=lambda h: (-h.score, h.doc_id))
        # The engine's OR result page is larger than a plain page but
        # not k+1 pages: sub-queries compete for the slots. This is the
        # completeness loss OR systems pay (and it worsens with k).
        return merged[: 2 * topk]

    def _rank(self, terms: Sequence[str], topk: int) -> List[SearchHit]:
        scores: Dict[int, float] = {}
        query_terms = [t for t in terms if t in self._postings]
        if not query_terms:
            return []
        for term in query_terms:
            idf = self._idf[term]
            for doc_id, weight in self._postings[term]:
                scores[doc_id] = scores.get(doc_id, 0.0) + idf * weight
        ranked = sorted(
            ((score / self._doc_norms[doc_id], doc_id)
             for doc_id, score in scores.items()),
            key=lambda pair: (-pair[0], pair[1]))
        hits = []
        for score, doc_id in ranked[:topk]:
            document = self._documents[doc_id]
            snippet = tuple(t for t in query_terms
                            if t in set(document.tokens))[:5]
            hits.append(SearchHit(
                doc_id=doc_id, url=document.url, score=score,
                snippet_terms=snippet))
        return hits

    def document(self, doc_id: int) -> Document:
        return self._documents[doc_id]
