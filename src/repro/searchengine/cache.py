"""Bounded LRU result cache for the engine tier.

Two caches use this class (see :mod:`repro.searchengine.node`):

- the per-replica **response cache** — final result pages keyed by
  query text, so a repeated query skips ranking and merging entirely;
- the per-shard **partial cache** — partial top-k lists keyed by the
  ranked term tuple, so sibling scatter-gather requests for a repeated
  query cost a dictionary lookup instead of a postings walk.

Privacy invariant (enforced by
:func:`repro.obs.audit.audit_cache_indistinguishability`): a cache hit
must be *indistinguishable from a miss to the adversary wiretap*. The
cache therefore never changes what goes on the wire or when — message
kinds, sealed sizes and response timing (drawn from the seeded latency
model) are identical either way. Only the wall-clock ranking CPU is
saved. That is why this class is a plain memo with statistics: all the
wire behaviour lives in the node, which consults the cache strictly
*after* the message flow for the query has been decided.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple


class ResultCache:
    """A bounded LRU mapping with hit/miss/eviction statistics."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Tuple[bool, Any]:
        """``(found, value)``; a found entry becomes most-recently-used."""
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return False, None
        self._entries.move_to_end(key)
        self.hits += 1
        return True, value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = value

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
