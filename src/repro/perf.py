"""The perf-trajectory bench harness (``python -m repro perf``).

Measures the three hot paths every future perf PR has to beat, and
writes the numbers to ``BENCH_pipeline.json`` at the repo root — the
committed trajectory baseline that ``benchmarks/check_regression.py``
guards:

- **sensitivity assessments/sec** — the full §V-A pipeline (semantic
  dictionaries + linkability against a 10 k-query history), cold
  (text caches empty) and warm (second pass over the same probes),
  plus the indexed-vs-linear linkability comparison that proves the
  inverted index both speeds scoring up and changes no score.
- **simulator events/sec** — the discrete-event loop on a synthetic
  self-rescheduling workload with a cancellation component.
- **protected searches/sec** — end-to-end wall-clock throughput of
  ``CyclosaUser.search`` on a demo overlay, plus the per-stage
  *simulated* latency breakdown from one traced search
  (:mod:`repro.obs`), so regressions can be localised to a stage.

Everything is seeded; the only nondeterminism in the output is the
wall clock itself. Keep workload parameters in the JSON (under
``meta.params``) so a regression check can re-run the *same* workload.
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from typing import Any, Dict, List, Optional

#: Default name of the committed trajectory baseline, at the repo root.
DEFAULT_BASELINE_NAME = "BENCH_pipeline.json"

#: The (section, key) pairs ``check_regression`` compares —
#: higher-is-better throughput numbers only.
THROUGHPUT_KEYS = (
    ("sensitivity", "cold_assessments_per_sec"),
    ("sensitivity", "warm_assessments_per_sec"),
    ("sensitivity", "linkability_indexed_scores_per_sec"),
    ("simulator", "events_per_sec"),
    ("search", "searches_per_sec"),
    ("monitor", "windows_per_sec"),
    ("monitor", "disabled_events_per_sec"),
)

#: Default workload parameters (overridable via CLI flags / kwargs).
DEFAULT_PARAMS: Dict[str, Any] = {
    "history_size": 10000,
    "probes": 200,
    "linear_probes": 20,
    "num_events": 200000,
    "chains": 64,
    "num_nodes": 16,
    "searches": 25,
    "monitor_windows": 400,
    "seed": 0,
    # Best-of-N for the short micro passes: the cold/warm/indexed
    # windows are milliseconds long, so a single sample is dominated
    # by scheduler noise. Min-time is the standard stabiliser.
    "repeats": 5,
}


def workload_queries(count: int, seed: int = 0) -> List[str]:
    """*count* realistic query strings from the synthetic AOL generator
    (repetitive within and across users, like the real trace)."""
    from repro.datasets.aol import generate_aol_log

    texts: List[str] = []
    log_seed = seed
    while len(texts) < count:
        log = generate_aol_log(num_users=max(20, count // 60),
                               mean_queries_per_user=80.0, seed=log_seed)
        texts.extend(record.text for record in log.records)
        log_seed += 1
    return texts[:count]


# -- 1. the §V-A sensitivity pipeline -----------------------------------


def bench_sensitivity(history_size: int = 10000, probes: int = 200,
                      linear_probes: int = 20, seed: int = 0,
                      repeats: int = 3,
                      **_ignored: Any) -> Dict[str, Any]:
    """Assessments/sec cold vs. warm, and indexed-vs-linear linkability.

    The probe passes last milliseconds, so each is sampled *repeats*
    times and the minimum is reported (best-of-N filters out scheduler
    noise without changing what is measured).
    """
    from repro.core.sensitivity import (LinkabilityAssessor,
                                        SemanticAssessor,
                                        SensitivityAnalysis)
    from repro.text.cache import clear_caches
    from repro.text.wordnet import SyntheticWordNet

    repeats = max(1, repeats)
    texts = workload_queries(history_size + probes, seed=seed)
    history, probe_queries = texts[:history_size], texts[history_size:]
    semantic = SemanticAssessor.from_resources(
        wordnet=SyntheticWordNet.build(seed=seed), mode="wordnet")

    clear_caches()
    begin = time.perf_counter()
    linkability = LinkabilityAssessor(history=history)
    index_build_seconds = time.perf_counter() - begin
    analysis = SensitivityAnalysis(semantic, linkability)

    cold_seconds = float("inf")
    for _ in range(repeats):
        clear_caches()
        begin = time.perf_counter()
        for query in probe_queries:
            analysis.assess(query)
        cold_seconds = min(cold_seconds, time.perf_counter() - begin)

    warm_seconds = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        for query in probe_queries:
            analysis.assess(query)
        warm_seconds = min(warm_seconds, time.perf_counter() - begin)

    # Indexed vs. the pre-index linear scan, same probes, and the
    # scores must agree bit-for-bit.
    reference = probe_queries[:linear_probes]
    indexed_seconds = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        indexed_scores = [linkability.score(query) for query in reference]
        indexed_seconds = min(indexed_seconds, time.perf_counter() - begin)
    begin = time.perf_counter()
    linear_scores = [linkability.score_linear(query) for query in reference]
    linear_seconds = time.perf_counter() - begin

    return {
        "history_size": history_size,
        "probes": probes,
        "index_build_seconds": index_build_seconds,
        "cold_assessments_per_sec": probes / cold_seconds,
        "warm_assessments_per_sec": probes / warm_seconds,
        "linkability_indexed_scores_per_sec":
            len(reference) / indexed_seconds if indexed_seconds else 0.0,
        "linkability_linear_scores_per_sec":
            len(reference) / linear_seconds if linear_seconds else 0.0,
        "linkability_speedup":
            linear_seconds / indexed_seconds if indexed_seconds else 0.0,
        "scores_bit_identical": indexed_scores == linear_scores,
    }


# -- 2. the discrete-event loop -----------------------------------------


def bench_simulator(num_events: int = 200000, chains: int = 64,
                    seed: int = 0, repeats: int = 3,
                    **_ignored: Any) -> Dict[str, Any]:
    """Events/sec on self-rescheduling chains with ~10 % cancellations.
    Best of *repeats* full runs."""
    from repro.net.simulator import Simulator

    def one_run() -> Dict[str, Any]:
        simulator = Simulator()
        rng = random.Random(seed)
        state = {"remaining": num_events, "cancelled": 0}

        def tick() -> None:
            if state["remaining"] <= 0:
                return
            state["remaining"] -= 1
            delay = 1e-4 + rng.random() * 1e-3
            simulator.schedule(delay, tick)
            if state["remaining"] % 10 == 0:
                # Exercise the cancellation path: dead entries must be
                # skipped for free.
                simulator.schedule(delay * 2.0, tick).cancel()
                state["cancelled"] += 1

        for _ in range(chains):
            simulator.schedule(rng.random() * 1e-3, tick)

        begin = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - begin
        return {
            "events": simulator.events_processed,
            "cancelled": state["cancelled"],
            "events_per_sec": simulator.events_processed / elapsed,
        }

    best = one_run()
    for _ in range(max(1, repeats) - 1):
        candidate = one_run()
        if candidate["events_per_sec"] > best["events_per_sec"]:
            best = candidate
    return best


# -- 3. end-to-end protected searches -----------------------------------


def bench_search(num_nodes: int = 16, searches: int = 25, seed: int = 0,
                 repeats: int = 3, **_ignored: Any) -> Dict[str, Any]:
    """Wall-clock protected searches/sec on a demo overlay, plus the
    per-stage simulated breakdown of one traced search. Best of
    *repeats* passes, each on a fresh (identically seeded) overlay."""
    from repro import obs
    from repro.core.client import CyclosaNetwork
    from repro.obs import root_span, stage_breakdown

    queries = workload_queries(searches, seed=seed)

    obs.disable(reset=True)
    deploy_seconds = float("inf")
    elapsed = float("inf")
    ok = 0
    for _ in range(max(1, repeats)):
        begin = time.perf_counter()
        deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed)
        deploy_seconds = min(deploy_seconds, time.perf_counter() - begin)
        user = deployment.node(0)

        pass_ok = 0
        begin = time.perf_counter()
        for query in queries:
            if user.search(query).ok:
                pass_ok += 1
        pass_elapsed = time.perf_counter() - begin
        if pass_elapsed < elapsed:
            elapsed = pass_elapsed
            ok = pass_ok

    # One traced search on a fresh overlay: the simulated per-stage
    # breakdown localises where a throughput regression lives.
    traced = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                   observe=True)
    result = traced.node(0).search(queries[0])
    spans = obs.get_tracer().sink.spans
    rows = stage_breakdown(spans, trace_id=result.trace_id)
    root = root_span(spans, trace_id=result.trace_id)
    obs.disable(reset=True)

    return {
        "num_nodes": num_nodes,
        "searches": searches,
        "ok": ok,
        "deploy_seconds": deploy_seconds,
        "searches_per_sec": searches / elapsed,
        "stage_breakdown_simulated_seconds": {
            row.stage: row.duration for row in rows},
        "simulated_end_to_end_seconds":
            root.duration if root is not None and root.finished else None,
    }


# -- 4. the time-series flight recorder ----------------------------------


def bench_monitor(monitor_windows: int = 400, repeats: int = 5,
                  seed: int = 0, **_ignored: Any) -> Dict[str, Any]:
    """Flush throughput of the :mod:`repro.obs.timeseries` recorder on
    a synthetic registry workload, plus the disabled-path guard.

    The registry carries a deployment-sized instrument population
    (labelled counters, gauges, full-bucket histograms) and every
    window sees fresh activity, so each flush pays the real cost:
    collect, delta, quantile interpolation, ring append. The second
    number times the ``OBS.enabled`` fast path that every hook in the
    hot code runs when observability is off — the whole telemetry
    layer must stay an attribute test when unused.
    """
    from repro.net.simulator import Simulator
    from repro.obs import OBS, MetricsRegistry, TimeSeriesRecorder

    rng = random.Random(seed)
    statuses = ("ok", "captcha", "relay-failure", "channel-failure")
    best = float("inf")
    windows_done = 0
    for _ in range(max(1, repeats)):
        simulator = Simulator()
        registry = MetricsRegistry()
        counters = [registry.counter(f"cyclosa_bench_c{i}_total", "bench",
                                     status=status)
                    for i in range(6) for status in statuses]
        gauges = [registry.gauge(f"cyclosa_bench_g{i}", "bench")
                  for i in range(8)]
        histograms = [registry.histogram(f"cyclosa_bench_h{i}_seconds",
                                         "bench") for i in range(4)]
        recorder = TimeSeriesRecorder(registry, simulator,
                                      window_seconds=1.0)
        recorder.start()

        def tick() -> None:
            for counter in counters:
                counter.inc(rng.randrange(4))
            for gauge in gauges:
                gauge.set(rng.random() * 50)
            for histogram in histograms:
                for _ in range(5):
                    histogram.observe(rng.random() * 2.0)

        for window in range(monitor_windows):
            simulator.schedule_at(window + 0.5, tick)
        begin = time.perf_counter()
        simulator.run(until=float(monitor_windows))
        best = min(best, time.perf_counter() - begin)
        windows_done = len(recorder.windows) + recorder.evicted
        recorder.stop()

    # Disabled-path guard: the per-event cost when obs is off is one
    # attribute test; meaningful only as a throughput floor.
    from repro import obs

    obs.disable(reset=True)
    assert not OBS.enabled
    guard_events = 2_000_000
    begin = time.perf_counter()
    fired = 0
    for _ in range(guard_events):
        if OBS.enabled:
            fired += 1
    guard_elapsed = time.perf_counter() - begin
    assert fired == 0

    return {
        "monitor_windows": monitor_windows,
        "windows_flushed": windows_done,
        "windows_per_sec": monitor_windows / best,
        "disabled_guard_events": guard_events,
        "disabled_events_per_sec": guard_events / guard_elapsed,
    }


# -- assembly ------------------------------------------------------------


def run_all(**overrides: Any) -> Dict[str, Any]:
    """Run every bench; *overrides* patch :data:`DEFAULT_PARAMS`."""
    params = dict(DEFAULT_PARAMS)
    unknown = set(overrides) - set(params)
    if unknown:
        raise TypeError(f"unknown perf parameters: {sorted(unknown)}")
    params.update({k: v for k, v in overrides.items() if v is not None})
    from repro.text.cache import cache_stats

    results = {
        "meta": {
            "schema": 1,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "params": params,
        },
        "sensitivity": bench_sensitivity(**params),
        "simulator": bench_simulator(**params),
        "search": bench_search(**params),
        "monitor": bench_monitor(**params),
    }
    results["text_caches"] = cache_stats()
    return results


def write_baseline(results: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def format_report(results: Dict[str, Any]) -> str:
    """The human-readable table ``repro perf`` prints."""
    sens = results["sensitivity"]
    sim = results["simulator"]
    search = results["search"]
    mon = results.get("monitor")
    lines = [
        "== CYCLOSA pipeline perf ==",
        f"python {results['meta']['python']}  "
        f"({results['meta']['platform']})",
        "",
        f"sensitivity ({sens['history_size']}-query history, "
        f"{sens['probes']} probes)",
        f"  cold assessments/sec      : {sens['cold_assessments_per_sec']:>12.1f}",
        f"  warm assessments/sec      : {sens['warm_assessments_per_sec']:>12.1f}",
        f"  linkability indexed/sec   : "
        f"{sens['linkability_indexed_scores_per_sec']:>12.1f}",
        f"  linkability linear/sec    : "
        f"{sens['linkability_linear_scores_per_sec']:>12.1f}",
        f"  indexed speedup           : "
        f"{sens['linkability_speedup']:>11.1f}x  "
        f"(scores identical: {sens['scores_bit_identical']})",
        "",
        f"simulator ({sim['events']} events, {sim['cancelled']} cancelled)",
        f"  events/sec                : {sim['events_per_sec']:>12.0f}",
        "",
        f"end-to-end ({search['num_nodes']} nodes, "
        f"{search['searches']} searches, {search['ok']} ok)",
        f"  searches/sec (wall)       : {search['searches_per_sec']:>12.2f}",
        f"  deploy seconds            : {search['deploy_seconds']:>12.2f}",
        "  simulated stage breakdown :",
    ]
    for stage, duration in search["stage_breakdown_simulated_seconds"].items():
        lines.append(f"    {stage:<20} {duration * 1000:>10.3f} ms")
    total = search.get("simulated_end_to_end_seconds")
    if total is not None:
        lines.append(f"    {'end-to-end':<20} {total * 1000:>10.3f} ms")
    if mon is not None:
        lines += [
            "",
            f"flight recorder ({mon['monitor_windows']} windows)",
            f"  windows/sec               : "
            f"{mon['windows_per_sec']:>12.1f}",
            f"  disabled-guard events/sec : "
            f"{mon['disabled_events_per_sec']:>12.0f}",
        ]
    return "\n".join(lines)


def compare(baseline: Dict[str, Any], fresh: Dict[str, Any],
            tolerance: float = 0.2) -> List[Dict[str, Any]]:
    """Per-metric comparison rows; a row regressed when the fresh
    throughput fell more than *tolerance* below the baseline."""
    rows = []
    for section, key in THROUGHPUT_KEYS:
        base = float(baseline[section][key])
        now = float(fresh[section][key])
        ratio = now / base if base else float("inf")
        rows.append({
            "metric": f"{section}.{key}",
            "baseline": base,
            "fresh": now,
            "ratio": ratio,
            "regressed": ratio < (1.0 - tolerance),
        })
    return rows
