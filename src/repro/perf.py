"""The perf-trajectory bench harness (``python -m repro perf``).

Measures the three hot paths every future perf PR has to beat, and
writes the numbers to ``BENCH_pipeline.json`` at the repo root — the
committed trajectory baseline that ``benchmarks/check_regression.py``
guards:

- **sensitivity assessments/sec** — the full §V-A pipeline (semantic
  dictionaries + linkability against a 10 k-query history), cold
  (text caches empty) and warm (second pass over the same probes),
  plus the indexed-vs-linear linkability comparison that proves the
  inverted index both speeds scoring up and changes no score.
- **simulator events/sec** — the discrete-event loop on a synthetic
  self-rescheduling workload with a cancellation component.
- **sharded-kernel events/sec** — the space-partitioned
  :class:`~repro.net.simulator.ShardedSimulator` on the churn+chaos
  workload: a nodes-vs-events/sec curve and a worker-count curve
  (see ``docs/performance.md``).
- **protected searches/sec** — end-to-end wall-clock throughput of
  ``CyclosaUser.search`` on a demo overlay, plus the per-stage
  *simulated* latency breakdown from one traced search
  (:mod:`repro.obs`), so regressions can be localised to a stage.

Everything is seeded; the only nondeterminism in the output is the
wall clock itself. Keep workload parameters in the JSON (under
``meta.params``) so a regression check can re-run the *same* workload.
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time
from typing import Any, Dict, List, Optional

#: Default name of the committed trajectory baseline, at the repo root.
DEFAULT_BASELINE_NAME = "BENCH_pipeline.json"

#: The (section, key) pairs ``check_regression`` compares —
#: higher-is-better throughput numbers only.
THROUGHPUT_KEYS = (
    ("sensitivity", "cold_assessments_per_sec"),
    ("sensitivity", "warm_assessments_per_sec"),
    ("sensitivity", "linkability_indexed_scores_per_sec"),
    ("simulator", "events_per_sec"),
    ("search", "searches_per_sec"),
    ("engine_scaling", "baseline_searches_per_sec"),
    ("engine_scaling", "best_searches_per_sec"),
    ("monitor", "windows_per_sec"),
    ("monitor", "disabled_events_per_sec"),
    ("lint", "files_per_sec_jobs1"),
    ("lint", "files_per_sec_pool"),
    ("shard_scaling", "events_per_sec_workers1"),
    ("shard_scaling", "best_events_per_sec"),
)

#: Default workload parameters (overridable via CLI flags / kwargs).
DEFAULT_PARAMS: Dict[str, Any] = {
    "history_size": 10000,
    "probes": 200,
    "linear_probes": 20,
    "num_events": 200000,
    "chains": 64,
    "num_nodes": 16,
    "searches": 25,
    "engine_queries": 400,
    "engine_unique": 24,
    "engine_docs_per_topic": 6000,
    # Stored as a list so the JSON baseline round-trips bit-identically.
    "replica_counts": [2, 4],
    "monitor_windows": 400,
    "lint_jobs": 2,
    "shard_nodes": [1000, 2500, 5000],
    "shard_workers": [1, 2, 4, 8],
    "shard_count": 8,
    "shard_duration": 5.0,
    "profile_nodes": 8,
    "profile_searches": 6,
    "profile_sample_interval": 256,
    "seed": 0,
    # Best-of-N for the short micro passes: the cold/warm/indexed
    # windows are milliseconds long, so a single sample is dominated
    # by scheduler noise. Min-time is the standard stabiliser.
    "repeats": 5,
}


def workload_queries(count: int, seed: int = 0) -> List[str]:
    """*count* realistic query strings from the synthetic AOL generator
    (repetitive within and across users, like the real trace)."""
    from repro.datasets.aol import generate_aol_log

    texts: List[str] = []
    log_seed = seed
    while len(texts) < count:
        log = generate_aol_log(num_users=max(20, count // 60),
                               mean_queries_per_user=80.0, seed=log_seed)
        texts.extend(record.text for record in log.records)
        log_seed += 1
    return texts[:count]


# -- 1. the §V-A sensitivity pipeline -----------------------------------


def bench_sensitivity(history_size: int = 10000, probes: int = 200,
                      linear_probes: int = 20, seed: int = 0,
                      repeats: int = 3,
                      **_ignored: Any) -> Dict[str, Any]:
    """Assessments/sec cold vs. warm, and indexed-vs-linear linkability.

    The probe passes last milliseconds, so each is sampled *repeats*
    times and the minimum is reported (best-of-N filters out scheduler
    noise without changing what is measured).
    """
    from repro.core.sensitivity import (LinkabilityAssessor,
                                        SemanticAssessor,
                                        SensitivityAnalysis)
    from repro.text.cache import clear_caches
    from repro.text.wordnet import SyntheticWordNet

    repeats = max(1, repeats)
    texts = workload_queries(history_size + probes, seed=seed)
    history, probe_queries = texts[:history_size], texts[history_size:]
    semantic = SemanticAssessor.from_resources(
        wordnet=SyntheticWordNet.build(seed=seed), mode="wordnet")

    clear_caches()
    begin = time.perf_counter()
    linkability = LinkabilityAssessor(history=history)
    index_build_seconds = time.perf_counter() - begin
    analysis = SensitivityAnalysis(semantic, linkability)

    cold_seconds = float("inf")
    for _ in range(repeats):
        clear_caches()
        begin = time.perf_counter()
        for query in probe_queries:
            analysis.assess(query)
        cold_seconds = min(cold_seconds, time.perf_counter() - begin)

    warm_seconds = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        for query in probe_queries:
            analysis.assess(query)
        warm_seconds = min(warm_seconds, time.perf_counter() - begin)

    # Indexed vs. the pre-index linear scan, same probes, and the
    # scores must agree bit-for-bit.
    reference = probe_queries[:linear_probes]
    indexed_seconds = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        indexed_scores = [linkability.score(query) for query in reference]
        indexed_seconds = min(indexed_seconds, time.perf_counter() - begin)
    begin = time.perf_counter()
    linear_scores = [linkability.score_linear(query) for query in reference]
    linear_seconds = time.perf_counter() - begin

    return {
        "history_size": history_size,
        "probes": probes,
        "index_build_seconds": index_build_seconds,
        "cold_assessments_per_sec": probes / cold_seconds,
        "warm_assessments_per_sec": probes / warm_seconds,
        "linkability_indexed_scores_per_sec":
            len(reference) / indexed_seconds if indexed_seconds else 0.0,
        "linkability_linear_scores_per_sec":
            len(reference) / linear_seconds if linear_seconds else 0.0,
        "linkability_speedup":
            linear_seconds / indexed_seconds if indexed_seconds else 0.0,
        "scores_bit_identical": indexed_scores == linear_scores,
    }


# -- 2. the discrete-event loop -----------------------------------------


def bench_simulator(num_events: int = 200000, chains: int = 64,
                    seed: int = 0, repeats: int = 3,
                    **_ignored: Any) -> Dict[str, Any]:
    """Events/sec on self-rescheduling chains with ~10 % cancellations.
    Best of *repeats* full runs.

    Mirrors the production scheduling mix: fire-and-forget events (the
    overwhelming majority — every message delivery) go through the
    no-handle ``post`` fast path, while the cancellation slice uses
    ``schedule`` and holds the :class:`EventHandle`, like the request
    timeouts in :mod:`repro.net.transport` do.
    """
    from repro.net.simulator import Simulator

    def one_run() -> Dict[str, Any]:
        simulator = Simulator()
        rng = random.Random(seed)
        state = {"remaining": num_events, "cancelled": 0}

        def tick() -> None:
            if state["remaining"] <= 0:
                return
            state["remaining"] -= 1
            delay = 1e-4 + rng.random() * 1e-3
            simulator.post(delay, tick)
            if state["remaining"] % 10 == 0:
                # Exercise the cancellation path: dead entries must be
                # skipped for free.
                simulator.schedule(delay * 2.0, tick).cancel()
                state["cancelled"] += 1

        for _ in range(chains):
            simulator.post(rng.random() * 1e-3, tick)

        begin = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - begin
        return {
            "events": simulator.events_processed,
            "cancelled": state["cancelled"],
            "events_per_sec": simulator.events_processed / elapsed,
        }

    best = one_run()
    for _ in range(max(1, repeats) - 1):
        candidate = one_run()
        if candidate["events_per_sec"] > best["events_per_sec"]:
            best = candidate
    return best


# -- 3. end-to-end protected searches -----------------------------------


def bench_search(num_nodes: int = 16, searches: int = 25, seed: int = 0,
                 repeats: int = 3, **_ignored: Any) -> Dict[str, Any]:
    """Wall-clock protected searches/sec on a demo overlay, plus the
    per-stage simulated breakdown of one traced search. Best of
    *repeats* passes, each on a fresh (identically seeded) overlay."""
    from repro import obs
    from repro.core.client import CyclosaNetwork
    from repro.obs import root_span, split_engine_service, stage_breakdown

    queries = workload_queries(searches, seed=seed)

    obs.disable(reset=True)
    deploy_seconds = float("inf")
    elapsed = float("inf")
    ok = 0
    for _ in range(max(1, repeats)):
        begin = time.perf_counter()
        deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed)
        deploy_seconds = min(deploy_seconds, time.perf_counter() - begin)
        user = deployment.node(0)

        pass_ok = 0
        begin = time.perf_counter()
        for query in queries:
            if user.search(query).ok:
                pass_ok += 1
        pass_elapsed = time.perf_counter() - begin
        if pass_elapsed < elapsed:
            elapsed = pass_elapsed
            ok = pass_ok

    # One traced search on a fresh overlay: the simulated per-stage
    # breakdown localises where a throughput regression lives.
    traced = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                   observe=True)
    result = traced.node(0).search(queries[0])
    spans = obs.get_tracer().sink.spans
    rows = stage_breakdown(spans, trace_id=result.trace_id)
    # The local "engine" stage span is the real leg's full round trip;
    # fold in the engine's remote engine.serve span so the table
    # separates engine service time from relay-path time.
    rows = split_engine_service(
        rows, list(spans) + obs.OBS.router.all_spans(),
        trace_id=result.trace_id)
    root = root_span(spans, trace_id=result.trace_id)
    obs.disable(reset=True)

    return {
        "num_nodes": num_nodes,
        "searches": searches,
        "ok": ok,
        "deploy_seconds": deploy_seconds,
        "searches_per_sec": searches / elapsed,
        "stage_breakdown_simulated_seconds": {
            row.stage: row.duration for row in rows},
        "simulated_end_to_end_seconds":
            root.duration if root is not None and root.finished else None,
    }


# -- 4. the engine tier under scale-out ----------------------------------


def bench_engine_scaling(engine_queries: int = 400, engine_unique: int = 24,
                         engine_docs_per_topic: int = 6000,
                         replica_counts=(2, 4), seed: int = 0,
                         repeats: int = 3,
                         **_ignored: Any) -> Dict[str, Any]:
    """Wall-clock searches/sec of the engine tier under fan-in.

    Drives a skewed (cache-friendly, AOL-like) query stream from 16
    senders straight at the engine nodes over the transport — no relay
    overlay, so the number isolates the tier itself: TF-IDF ranking
    over a corpus large enough that ranking dominates. The *baseline*
    is one replica with no cache and no batching; each *scaled*
    configuration runs sharded replicas with the response/partial
    caches and a batch window on. Each configuration is sampled
    best-of-``min(repeats, 3)`` (the indexes are built once and
    shared; only nodes, caches and the transport are fresh per pass).
    The report also pins ``sharded_identical``: every scaled
    configuration's result pages byte-equal the baseline's.
    """
    from repro.net.latency import LogNormalLatency
    from repro.net.simulator import Simulator
    from repro.net.transport import Network, NetNode
    from repro.searchengine.cache import ResultCache
    from repro.searchengine.corpus import build_corpus
    from repro.searchengine.engine import SearchEngine
    from repro.searchengine.node import SearchEngineNode
    from repro.searchengine.sharding import (build_shard_engines,
                                             replica_addresses,
                                             route_to_replica)

    corpus = build_corpus(docs_per_topic=engine_docs_per_topic, seed=seed)
    unique = workload_queries(engine_unique, seed=seed)
    draw_rng = random.Random(seed + 1)
    # Zipf-ish popularity: repeated queries are the norm, like a real
    # query log — the regime result caching exists for.
    weights = [1.0 / (rank + 1) for rank in range(engine_unique)]
    queries = draw_rng.choices(unique, weights=weights, k=engine_queries)
    engines_by_count = {1: [SearchEngine(corpus)]}
    for replicas in replica_counts:
        engines_by_count[replicas] = build_shard_engines(corpus, replicas)

    def run_tier(replicas: int, cached: bool, batch_window: float):
        simulator = Simulator()
        rng = random.Random(seed)
        network = Network(simulator, rng,
                          default_latency=LogNormalLatency(
                              median=0.005, sigma=0.1))
        addresses = replica_addresses(replicas)
        engines = engines_by_count[replicas]
        engine_nodes = [
            SearchEngineNode(
                network, engine, rng, address=address,
                processing=LogNormalLatency(median=0.05, sigma=0.2),
                cluster=addresses if replicas > 1 else None,
                response_cache=ResultCache(4096) if cached else None,
                partial_cache=(ResultCache(4096)
                               if cached and replicas > 1 else None),
                batch_window=batch_window)
            for address, engine in zip(addresses, engines)
        ]
        for first in engine_nodes:
            for second in engine_nodes:
                if first is not second:
                    network.set_link_latency(
                        first.address, second.address,
                        LogNormalLatency(median=0.002, sigma=0.1))
        for index, first in enumerate(engine_nodes):
            for second in engine_nodes[index + 1:]:
                first.tls.establish(second.address,
                                    on_ready=lambda channel: None)
        simulator.run(until=5.0)  # replica handshakes settle

        senders = [NetNode(network, f"sender{i:02d}") for i in range(16)]
        pages: Dict[int, Any] = {}

        def fire(index: int, query: str) -> None:
            sender = senders[index % len(senders)]
            target = route_to_replica(sender.address, addresses)
            sender.request(  # lint: allow(taint-wire) -- bench harness uses the engine's plaintext `search` flavour (as the Direct baseline does) to isolate tier throughput
                target, {"query": query, "meta": {}},
                lambda payload, i=index: pages.__setitem__(
                    i, payload["hits"]),
                timeout=120.0, kind="search")

        for index, query in enumerate(queries):
            simulator.post(index * 0.01, lambda i=index, q=query: fire(i, q))
        begin = time.perf_counter()
        simulator.run()
        elapsed = time.perf_counter() - begin
        assert len(pages) == len(queries), "engine tier lost queries"
        hit_rate = None
        if cached:
            hits = misses = 0
            for node in engine_nodes:
                stats = node.response_cache.stats()
                hits += stats["hits"]
                misses += stats["misses"]
            hit_rate = hits / (hits + misses) if hits + misses else 0.0
        return {
            "searches_per_sec": len(queries) / elapsed,
            "cache_hit_rate": hit_rate,
            "pages": [pages[i] for i in range(len(queries))],
        }

    def best_of(replicas: int, cached: bool, batch_window: float):
        best_row = run_tier(replicas, cached, batch_window)
        for _ in range(min(max(1, repeats), 3) - 1):
            candidate = run_tier(replicas, cached, batch_window)
            if candidate["searches_per_sec"] > best_row["searches_per_sec"]:
                best_row = candidate
        return best_row

    baseline = best_of(1, cached=False, batch_window=0.0)
    scaled_rows = []
    identical = True
    for replicas in replica_counts:
        row = best_of(replicas, cached=True, batch_window=0.2)
        identical = identical and row["pages"] == baseline["pages"]
        scaled_rows.append({
            "replicas": replicas,
            "searches_per_sec": row["searches_per_sec"],
            "cache_hit_rate": row["cache_hit_rate"],
        })
    best = max(scaled_rows, key=lambda row: row["searches_per_sec"])
    return {
        "engine_queries": engine_queries,
        "unique_queries": engine_unique,
        "corpus_docs": len(corpus.documents),
        "baseline_searches_per_sec": baseline["searches_per_sec"],
        "scaled": scaled_rows,
        "best_replicas": best["replicas"],
        "best_searches_per_sec": best["searches_per_sec"],
        "speedup": (best["searches_per_sec"]
                    / baseline["searches_per_sec"]),
        "sharded_identical": identical,
    }


# -- 4b. the sharded kernel under scale-out ------------------------------


def bench_shard_scaling(shard_nodes=(1000, 2500, 5000),
                        shard_workers=(1, 2, 4, 8), shard_count: int = 8,
                        shard_duration: float = 5.0, seed: int = 0,
                        **_ignored: Any) -> Dict[str, Any]:
    """Events/sec of the space-partitioned kernel as the node space and
    the worker pool grow.

    Two curves over the churn+chaos workload of
    :mod:`repro.experiments.shard_scale`:

    - **node curve** — overlay size vs events/sec at ``workers=1``
      (the in-process path), showing the kernel holds its throughput
      as the node space grows past what one heap tracks comfortably.
    - **worker curve** — at the largest overlay, events/sec as shards
      spread over forked workers. The report pins ``cpu_count``:
      speedup is bounded by the cores actually available, so on a
      single-core box the extra workers only measure barrier/IPC
      overhead — exactly the number that should not creep up.

    Byte-identity across the layouts is *not* re-proved here (digest
    off — hashing every event would measure the hash); that is the
    ``shard`` test suite's and ``benchmarks/check_shard_determinism``'s
    job. Only wall clocks differ between layouts.
    """
    import os

    from repro.experiments import shard_scale

    def one(num_nodes: int, workers: int) -> Dict[str, Any]:
        report = shard_scale.run(
            num_nodes=num_nodes, shards=shard_count, workers=workers,
            duration=shard_duration, seed=seed)
        return {
            "num_nodes": num_nodes,
            "workers": workers,
            "events": report["events"],
            "cross_shard_fraction":
                round(report["cross_shard_fraction"], 4),
            "events_per_sec": report["events_per_sec"],
        }

    node_curve = [one(num_nodes, 1) for num_nodes in shard_nodes]
    largest = max(shard_nodes)
    worker_curve = []
    for workers in shard_workers:
        if workers > shard_count:
            continue
        if workers == 1:
            row = dict(node_curve[-1])
        else:
            row = one(largest, workers)
        base = node_curve[-1]["events_per_sec"]
        row["speedup"] = row["events_per_sec"] / base if base else 0.0
        worker_curve.append(row)
    best = max(worker_curve, key=lambda row: row["events_per_sec"])
    return {
        "shards": shard_count,
        "duration": shard_duration,
        "cpu_count": os.cpu_count() or 1,
        "node_curve": node_curve,
        "worker_curve": worker_curve,
        "events_per_sec_workers1": node_curve[-1]["events_per_sec"],
        "best_workers": best["workers"],
        "best_events_per_sec": best["events_per_sec"],
        "best_speedup": best["speedup"],
    }


# -- 5. the time-series flight recorder ----------------------------------


def bench_monitor(monitor_windows: int = 400, repeats: int = 5,
                  seed: int = 0, **_ignored: Any) -> Dict[str, Any]:
    """Flush throughput of the :mod:`repro.obs.timeseries` recorder on
    a synthetic registry workload, plus the disabled-path guard.

    The registry carries a deployment-sized instrument population
    (labelled counters, gauges, full-bucket histograms) and every
    window sees fresh activity, so each flush pays the real cost:
    collect, delta, quantile interpolation, ring append. The second
    number times the ``OBS.enabled`` fast path that every hook in the
    hot code runs when observability is off — the whole telemetry
    layer must stay an attribute test when unused.
    """
    from repro.net.simulator import Simulator
    from repro.obs import OBS, MetricsRegistry, TimeSeriesRecorder

    rng = random.Random(seed)
    statuses = ("ok", "captcha", "relay-failure", "channel-failure")
    best = float("inf")
    windows_done = 0
    for _ in range(max(1, repeats)):
        simulator = Simulator()
        registry = MetricsRegistry()
        counters = [registry.counter(f"cyclosa_bench_c{i}_total", "bench",
                                     status=status)
                    for i in range(6) for status in statuses]
        gauges = [registry.gauge(f"cyclosa_bench_g{i}", "bench")
                  for i in range(8)]
        histograms = [registry.histogram(f"cyclosa_bench_h{i}_seconds",
                                         "bench") for i in range(4)]
        recorder = TimeSeriesRecorder(registry, simulator,
                                      window_seconds=1.0)
        recorder.start()

        def tick() -> None:
            for counter in counters:
                counter.inc(rng.randrange(4))
            for gauge in gauges:
                gauge.set(rng.random() * 50)
            for histogram in histograms:
                for _ in range(5):
                    histogram.observe(rng.random() * 2.0)

        for window in range(monitor_windows):
            simulator.schedule_at(window + 0.5, tick)
        begin = time.perf_counter()
        simulator.run(until=float(monitor_windows))
        best = min(best, time.perf_counter() - begin)
        windows_done = len(recorder.windows) + recorder.evicted
        recorder.stop()

    # Disabled-path guard: the per-event cost when obs is off is one
    # attribute test; meaningful only as a throughput floor.
    from repro import obs

    obs.disable(reset=True)
    assert not OBS.enabled
    guard_events = 2_000_000
    begin = time.perf_counter()
    fired = 0
    for _ in range(guard_events):
        if OBS.enabled:
            fired += 1
    guard_elapsed = time.perf_counter() - begin
    assert fired == 0

    return {
        "monitor_windows": monitor_windows,
        "windows_flushed": windows_done,
        "windows_per_sec": monitor_windows / best,
        "disabled_guard_events": guard_events,
        "disabled_events_per_sec": guard_events / guard_elapsed,
    }


# -- 6. deterministic profile attribution --------------------------------


def bench_lint(lint_jobs: int = 2, **_ignored: Any) -> Dict[str, Any]:
    """Static-analyzer throughput over the real ``src/`` tree.

    Runs the full pipeline — the four per-module checkers plus
    whole-program PDG linking and path queries — once serially
    (``--jobs 1``) and once over a *lint_jobs*-worker pool, and
    asserts the two reports are byte-identical (the pool contract).
    Both files/sec numbers feed ``check_regression``; on a single
    core the pool number mostly measures fork overhead, which is
    exactly what the gate should notice creeping up.
    """
    from repro.lint import findings_to_json, run_lint
    from repro.lint.engine import _file_list, default_root

    root = default_root()
    num_files = len(_file_list(root))

    start = time.perf_counter()
    serial = run_lint(root=root, jobs=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_lint(root=root, jobs=lint_jobs)
    pool_seconds = time.perf_counter() - start

    return {
        "files": num_files,
        "findings": len(serial),
        "jobs": lint_jobs,
        "wall_seconds_jobs1": round(serial_seconds, 3),
        "wall_seconds_pool": round(pool_seconds, 3),
        "files_per_sec_jobs1": round(num_files / serial_seconds, 1),
        "files_per_sec_pool": round(num_files / pool_seconds, 1),
        "identical_across_jobs":
            findings_to_json(serial) == findings_to_json(pooled),
    }


def bench_profile(profile_nodes: int = 8, profile_searches: int = 6,
                  profile_sample_interval: int = 256, seed: int = 0,
                  **_ignored: Any) -> Dict[str, Any]:
    """Per-subsystem CPU attribution of the end-to-end search scenario.

    Unlike every other section, nothing here is a wall-clock number:
    samples are taken on interpreter call-event counts
    (:mod:`repro.obs.profile`), so the subsystem shares — and the
    collapsed-stack digest — are byte-identical across runs *and
    machines* for one python version. That is what lets
    ``benchmarks/check_profile.py`` diff shares against the committed
    baseline with a tight tolerance, where the throughput gate must
    absorb hardware noise.

    Excluded from the default ``repro perf`` run (it measures shares,
    not speed); enabled by ``--profile`` or ``--only profile``.
    """
    import hashlib

    from repro.experiments.profiling import run_scenario

    report = run_scenario("search", seed=seed, nodes=profile_nodes,
                          searches=profile_searches,
                          sample_interval=profile_sample_interval,
                          heap=False)
    cpu = report["cpu"]
    digest = hashlib.sha256(report["collapsed"].encode("utf-8")).hexdigest()
    return {
        "scenario": "search",
        "nodes": profile_nodes,
        "searches": profile_searches,
        "sample_interval": profile_sample_interval,
        "samples": cpu["samples"],
        "call_events": cpu["call_events"],
        "distinct_stacks": cpu["distinct_stacks"],
        "collapsed_sha256": digest,
        "subsystems": cpu["subsystems"],
    }


# -- assembly ------------------------------------------------------------


#: Section name → bench function; ``repro perf --only <name>`` runs a
#: subset (new sections register here and nowhere else).
BENCH_SECTIONS = {
    "sensitivity": bench_sensitivity,
    "simulator": bench_simulator,
    "search": bench_search,
    "engine_scaling": bench_engine_scaling,
    "shard_scaling": bench_shard_scaling,
    "monitor": bench_monitor,
    "lint": bench_lint,
    "profile": bench_profile,
}


def run_all(only: Optional[List[str]] = None, profile: bool = False,
            **overrides: Any) -> Dict[str, Any]:
    """Run every bench (or just the *only* sections); *overrides* patch
    :data:`DEFAULT_PARAMS`. Unknown section names raise ``ValueError``,
    and so does an empty *only* list — running zero sections would
    produce a baseline holding nothing but metadata.

    The ``profile`` section only runs when asked for — ``profile=True``
    (the ``--profile`` flag) or an explicit ``--only profile``.
    """
    params = dict(DEFAULT_PARAMS)
    unknown = set(overrides) - set(params)
    if unknown:
        raise TypeError(f"unknown perf parameters: {sorted(unknown)}")
    params.update({k: v for k, v in overrides.items() if v is not None})
    sections = list(BENCH_SECTIONS)
    if only is not None:
        bad = [name for name in only if name not in BENCH_SECTIONS]
        if bad:
            raise ValueError(
                f"unknown perf sections: {', '.join(bad)} "
                f"(known: {', '.join(BENCH_SECTIONS)})")
        if not only:
            raise ValueError(
                "no perf sections selected "
                f"(known: {', '.join(BENCH_SECTIONS)})")
        wanted = set(only)
        sections = [name for name in sections if name in wanted]
    elif not profile:
        sections = [name for name in sections if name != "profile"]
    from repro.text.cache import cache_stats

    results: Dict[str, Any] = {
        "meta": {
            "schema": 1,
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "params": params,
        },
    }
    for name in sections:
        results[name] = BENCH_SECTIONS[name](**params)
    results["text_caches"] = cache_stats()
    return results


def write_baseline(results: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def format_report(results: Dict[str, Any]) -> str:
    """The human-readable table ``repro perf`` prints.

    Tolerates missing sections (``repro perf --only ...`` runs a
    subset); each block renders only when its section is present.
    """
    sens = results.get("sensitivity")
    sim = results.get("simulator")
    search = results.get("search")
    scaling = results.get("engine_scaling")
    mon = results.get("monitor")
    lines = [
        "== CYCLOSA pipeline perf ==",
        f"python {results['meta']['python']}  "
        f"({results['meta']['platform']})",
    ]
    if sens is not None:
        lines += [
            "",
            f"sensitivity ({sens['history_size']}-query history, "
            f"{sens['probes']} probes)",
            f"  cold assessments/sec      : "
            f"{sens['cold_assessments_per_sec']:>12.1f}",
            f"  warm assessments/sec      : "
            f"{sens['warm_assessments_per_sec']:>12.1f}",
            f"  linkability indexed/sec   : "
            f"{sens['linkability_indexed_scores_per_sec']:>12.1f}",
            f"  linkability linear/sec    : "
            f"{sens['linkability_linear_scores_per_sec']:>12.1f}",
            f"  indexed speedup           : "
            f"{sens['linkability_speedup']:>11.1f}x  "
            f"(scores identical: {sens['scores_bit_identical']})",
        ]
    if sim is not None:
        lines += [
            "",
            f"simulator ({sim['events']} events, "
            f"{sim['cancelled']} cancelled)",
            f"  events/sec                : {sim['events_per_sec']:>12.0f}",
        ]
    if search is not None:
        lines += [
            "",
            f"end-to-end ({search['num_nodes']} nodes, "
            f"{search['searches']} searches, {search['ok']} ok)",
            f"  searches/sec (wall)       : "
            f"{search['searches_per_sec']:>12.2f}",
            f"  deploy seconds            : "
            f"{search['deploy_seconds']:>12.2f}",
            "  simulated stage breakdown :",
        ]
        breakdown = search["stage_breakdown_simulated_seconds"]
        for stage, duration in breakdown.items():
            lines.append(f"    {stage:<20} {duration * 1000:>10.3f} ms")
        total = search.get("simulated_end_to_end_seconds")
        if total is not None:
            lines.append(f"    {'end-to-end':<20} {total * 1000:>10.3f} ms")
    if scaling is not None:
        lines += [
            "",
            f"engine tier ({scaling['engine_queries']} queries, "
            f"{scaling['unique_queries']} unique, "
            f"{scaling['corpus_docs']} docs)",
            f"  baseline searches/sec     : "
            f"{scaling['baseline_searches_per_sec']:>12.1f}  "
            "(1 replica, no cache/batch)",
        ]
        for row in scaling["scaled"]:
            hit = row["cache_hit_rate"]
            hit_text = f"{hit * 100:.0f}% cache hits" if hit is not None \
                else "no cache"
            lines.append(
                f"  {row['replicas']} replica(s) searches/sec : "
                f"{row['searches_per_sec']:>12.1f}  ({hit_text})")
        lines.append(
            f"  best speedup              : "
            f"{scaling['speedup']:>11.1f}x  "
            f"(sharded identical: {scaling['sharded_identical']})")
    sharding = results.get("shard_scaling")
    if sharding is not None:
        lines += [
            "",
            f"sharded kernel ({sharding['shards']} shards, "
            f"{sharding['duration']}s simulated, "
            f"{sharding['cpu_count']} cpu core(s))",
        ]
        for row in sharding["node_curve"]:
            lines.append(
                f"  {row['num_nodes']:>6} nodes events/sec    : "
                f"{row['events_per_sec']:>12.0f}  "
                f"({row['cross_shard_fraction'] * 100:.0f}% cross-shard)")
        for row in sharding["worker_curve"]:
            lines.append(
                f"  {row['workers']:>2} worker(s) events/sec   : "
                f"{row['events_per_sec']:>12.0f}  "
                f"({row['speedup']:.2f}x vs workers=1)")
    if mon is not None:
        lines += [
            "",
            f"flight recorder ({mon['monitor_windows']} windows)",
            f"  windows/sec               : "
            f"{mon['windows_per_sec']:>12.1f}",
            f"  disabled-guard events/sec : "
            f"{mon['disabled_events_per_sec']:>12.0f}",
        ]
    lint = results.get("lint")
    if lint is not None:
        lines += [
            "",
            f"static analysis ({lint['files']} files, "
            f"{lint['findings']} finding(s))",
            f"  files/sec (--jobs 1)      : "
            f"{lint['files_per_sec_jobs1']:>12.1f}",
            f"  files/sec (--jobs {lint['jobs']})      : "
            f"{lint['files_per_sec_pool']:>12.1f}",
            f"  identical across jobs     : "
            f"{lint['identical_across_jobs']}",
        ]
    prof = results.get("profile")
    if prof is not None:
        lines += [
            "",
            f"profile ({prof['scenario']} scenario, {prof['nodes']} nodes, "
            f"{prof['searches']} searches, 1 sample / "
            f"{prof['sample_interval']} call events)",
            f"  samples                   : {prof['samples']:>12d}",
            f"  call events               : {prof['call_events']:>12d}",
            f"  distinct stacks           : {prof['distinct_stacks']:>12d}",
            f"  collapsed sha256          : "
            f"{prof['collapsed_sha256'][:16]}...",
        ]
        shares = sorted(prof["subsystems"].items(),
                        key=lambda item: (-item[1]["self_pct"], item[0]))
        for subsystem, share in shares:
            lines.append(
                f"    {subsystem:<14} self {share['self_pct']:>6.2f}%  "
                f"cum {share['cum_pct']:>6.2f}%")
    return "\n".join(lines)


def compare(baseline: Dict[str, Any], fresh: Dict[str, Any],
            tolerance: float = 0.2) -> List[Dict[str, Any]]:
    """Per-metric comparison rows; a row regressed when the fresh
    throughput fell more than *tolerance* below the baseline."""
    rows = []
    for section, key in THROUGHPUT_KEYS:
        if section not in baseline or section not in fresh:
            continue  # partial run / older-schema baseline
        base = float(baseline[section][key])
        now = float(fresh[section][key])
        ratio = now / base if base else float("inf")
        rows.append({
            "metric": f"{section}.{key}",
            "baseline": base,
            "fresh": now,
            "ratio": ratio,
            "regressed": ratio < (1.0 - tolerance),
        })
    return rows
