"""Addressable nodes, messages and links over the event loop.

The transport layer is deliberately simple: a :class:`Network` owns the
simulator, a registry of :class:`NetNode` instances and the latency/loss
models. ``Network.send`` samples a one-way delay and schedules the
destination's ``on_message``. On top of that, :class:`NetNode` provides
a request/response (RPC) pattern with correlation ids, deferred
responders and timeouts — enough to express every protocol in the paper
(onion circuits, PEAS's two-server relay, CYCLOSA's fan-out).

Sizes matter: each message carries ``size_bytes`` because one of the
paper's arguments (§IV) is that an observer of *encrypted* traffic can
distinguish OR-aggregated queries from single queries **by size alone**
— the traffic-analysis test suite asserts exactly that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.shards import shard_of
from repro.net.simulator import EventHandle, Simulator
from repro.obs import OBS


class NetworkError(Exception):
    """Transport-level failure (unknown address, bad registration)."""


@dataclass(frozen=True)
class Message:
    """One datagram on the simulated network."""

    msg_id: int
    src: str
    dst: str
    kind: str
    payload: Any
    size_bytes: int
    sent_at: float


def _default_size(payload: Any) -> int:
    """Best-effort wire size when the sender does not specify one."""
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    return 256


@dataclass
class LinkStats:
    """Aggregate transport counters, exposed for the benchmarks."""

    messages: int = 0
    bytes: int = 0
    dropped: int = 0
    #: Messages whose endpoints live on different simulation shards
    #: (``Network(num_shards=...)``): the traffic that would cross a
    #: barrier under the sharded kernel. The cross-shard fraction is
    #: what sizes the barrier windows — see docs/performance.md.
    cross_shard: int = 0


class Network:
    """The simulated internet: nodes, links, latency, loss.

    Parameters
    ----------
    simulator:
        The shared event loop.
    rng:
        Seeded ``random.Random``; all latency/loss sampling flows
        through it.
    default_latency:
        Latency model used for any pair without an override.
    bandwidth_bytes_per_s:
        Optional serialisation bandwidth; when set, each message adds
        ``size/bandwidth`` to its delay (models large OR-queries being
        slower to ship).
    loss_probability:
        Uniform per-message drop probability (Byzantine/lossy links).
    num_shards:
        Space-partition granularity for shard-aware routing
        accounting: with ``num_shards > 1`` every message is
        classified local/cross-shard via :func:`repro.net.shards
        .shard_of` (``stats.cross_shard``, plus the
        ``cyclosa_net_cross_shard_total`` counter when observability
        is on). Delivery itself is unchanged — this measures, on the
        real single-heap deployment, how much traffic a
        :class:`~repro.net.simulator.ShardedSimulator` partition of
        the same node space would push through the barriers.
    """

    def __init__(self, simulator: Simulator, rng,
                 default_latency: Optional[LatencyModel] = None,
                 bandwidth_bytes_per_s: Optional[float] = None,
                 loss_probability: float = 0.0,
                 num_shards: int = 1) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss_probability must be in [0, 1)")
        if num_shards < 1:
            raise NetworkError("num_shards must be >= 1")
        self.num_shards = num_shards
        self.simulator = simulator
        self.rng = rng
        self.default_latency = default_latency or ConstantLatency(0.02)
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.loss_probability = loss_probability
        self.stats = LinkStats()
        self._nodes: Dict[str, "NetNode"] = {}
        self._departed: set = set()
        self._link_overrides: Dict[Tuple[str, str], LatencyModel] = {}
        self._node_latency: Dict[str, LatencyModel] = {}
        self._msg_ids = itertools.count(1)

    # -- topology ------------------------------------------------------

    def register(self, node: "NetNode") -> None:
        if node.address in self._nodes:
            raise NetworkError(f"address {node.address!r} already registered")
        self._nodes[node.address] = node

    def unregister(self, address: str) -> None:
        """Remove a node (churn / crash); in-flight messages are dropped
        on arrival, and anything the dead node's leftover timers try to
        send afterwards is dropped too (a crashed host cannot transmit)."""
        if self._nodes.pop(address, None) is not None:
            self._departed.add(address)

    def node(self, address: str) -> "NetNode":
        try:
            return self._nodes[address]
        except KeyError:
            raise NetworkError(f"unknown address {address!r}")

    def knows(self, address: str) -> bool:
        return address in self._nodes

    def addresses(self):
        return list(self._nodes)

    def shard_assignment(self) -> Dict[str, int]:
        """Every registered address's shard under ``num_shards``
        (all zeros on unsharded networks) — the partition a
        :class:`~repro.net.simulator.ShardedSimulator` run of this
        node space would use."""
        return {address: shard_of(address, self.num_shards)
                for address in self._nodes}

    def set_link_latency(self, src: str, dst: str, model: LatencyModel,
                         symmetric: bool = True) -> None:
        """Override the latency model for one directed (or both) links."""
        self._link_overrides[(src, dst)] = model
        if symmetric:
            self._link_overrides[(dst, src)] = model

    def set_node_latency(self, address: str, model: LatencyModel) -> None:
        """Override the access-link latency for every flow touching
        *address* (takes effect unless a pair override exists)."""
        self._node_latency[address] = model

    def _latency_for(self, src: str, dst: str) -> LatencyModel:
        override = self._link_overrides.get((src, dst))
        if override is not None:
            return override
        for endpoint in (dst, src):
            model = self._node_latency.get(endpoint)
            if model is not None:
                return model
        return self.default_latency

    # -- delivery --------------------------------------------------------

    def send(self, src: str, dst: str, kind: str, payload: Any,
             size_bytes: Optional[int] = None) -> Optional[Message]:
        """Send one message; returns it, or ``None`` if it was lost."""
        if src not in self._nodes:
            if src in self._departed:
                # A crashed host's leftover timer fired: silence, not a
                # crash of the whole simulation.
                self.stats.dropped += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_net_dropped_total",
                        "messages lost (loss, churn, dead senders)").inc()
                return None
            raise NetworkError(f"unknown sender {src!r}")
        size = size_bytes if size_bytes is not None else _default_size(payload)
        message = Message(
            msg_id=next(self._msg_ids), src=src, dst=dst, kind=kind,
            payload=payload, size_bytes=size, sent_at=self.simulator.now)
        self.stats.messages += 1
        self.stats.bytes += size
        crossing = (self.num_shards > 1
                    and shard_of(src, self.num_shards)
                    != shard_of(dst, self.num_shards))
        if crossing:
            self.stats.cross_shard += 1
        if OBS.enabled:
            registry = OBS.registry
            registry.counter("cyclosa_net_messages_total",
                             "messages offered to the network").inc()
            registry.counter("cyclosa_net_bytes_total",
                             "payload bytes offered to the network").inc(size)
            if crossing:
                registry.counter(
                    "cyclosa_net_cross_shard_total",
                    "messages whose endpoints live on different "
                    "simulation shards").inc()
        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.stats.dropped += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "cyclosa_net_dropped_total",
                    "messages lost (loss, churn, dead senders)").inc()
            return None
        delay = self._latency_for(src, dst).sample(self.rng)
        if self.bandwidth_bytes_per_s:
            delay += size / self.bandwidth_bytes_per_s
        if OBS.enabled:
            # Per-hop send span: its width is the sampled flight time,
            # stamped up front (the simulator realises it later).
            span = OBS.tracer.start_span("net.send", attributes={
                "src": src, "dst": dst, "kind": kind, "bytes": size})
            OBS.tracer.end_span(span, end_time=span.start + delay)
            OBS.registry.counter(
                "cyclosa_net_flight_seconds_total",
                "cumulative one-way flight time of delivered sends").inc(delay)
        self.simulator.post(delay, lambda: self._deliver(message))
        return message

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None:  # destination churned out mid-flight
            self.stats.dropped += 1
            if OBS.enabled:
                OBS.registry.counter(
                    "cyclosa_net_dropped_total",
                    "messages lost (loss, churn, dead senders)").inc()
            return
        if OBS.enabled:
            span = OBS.tracer.start_span("net.recv", attributes={
                "dst": message.dst, "kind": message.kind,
                "bytes": message.size_bytes})
            OBS.tracer.end_span(span)
            OBS.registry.counter("cyclosa_net_delivered_total",
                                 "messages delivered to a live node").inc()
        node.on_message(message)


class RequestContext:
    """Handed to RPC servers; supports immediate or deferred replies."""

    def __init__(self, node: "NetNode", request: Message) -> None:
        self._node = node
        self.request = request
        self.responded = False

    def respond(self, payload: Any, size_bytes: Optional[int] = None) -> None:
        """Send the response back to the requester (at most once)."""
        if self.responded:
            raise NetworkError("duplicate response to one request")
        self.responded = True
        self._node._send_rpc_response(self.request, payload, size_bytes)


@dataclass
class _PendingRequest:
    on_reply: Callable[[Any], None]
    on_timeout: Optional[Callable[[], None]]
    timeout_handle: Optional[EventHandle] = None


class NetNode:
    """Base class for every simulated host.

    Subclasses override :meth:`handle_request` (RPC server side) and/or
    :meth:`handle_datagram` (fire-and-forget messages). The RPC client
    side is :meth:`request`.
    """

    def __init__(self, network: Network, address: str) -> None:
        self.network = network
        self.address = address
        self._pending: Dict[int, _PendingRequest] = {}
        # Requests lost on the wire get locally-allocated *negative*
        # correlation ids: network msg ids start at 1, so a late or
        # duplicated rpc.rsp can never collide with a lost request's
        # bookkeeping entry.
        self._lost_ids = itertools.count(1)
        network.register(self)

    # -- outgoing --------------------------------------------------------

    def send(self, dst: str, kind: str, payload: Any,
             size_bytes: Optional[int] = None) -> None:
        """Fire-and-forget datagram."""
        self.network.send(self.address, dst, kind, payload, size_bytes)

    def request(self, dst: str, payload: Any,
                on_reply: Callable[[Any], None],
                timeout: Optional[float] = None,
                on_timeout: Optional[Callable[[], None]] = None,
                size_bytes: Optional[int] = None,
                kind: str = "rpc") -> None:
        """Send a request; *on_reply* fires with the response payload.

        With *timeout* set, *on_timeout* fires instead if no response
        arrives in time (used to blacklist unresponsive peers, §VI-b).
        """
        message = self.network.send(
            self.address, dst, f"{kind}.req", payload, size_bytes)
        if message is None:
            # Lost on the wire: only the timeout can save the caller.
            # Bookkeeping mirrors the delivered path — a registered
            # pending entry with a *cancellable* timeout handle — so
            # the correlation table never diverges between the two
            # branches (a duplicated delivery of some other response
            # finds exactly the same state either way).
            if timeout is None or on_timeout is None:
                return
            request_id = -next(self._lost_ids)
            pending = _PendingRequest(on_reply=on_reply,
                                      on_timeout=on_timeout)
            pending.timeout_handle = self.network.simulator.schedule(
                timeout, lambda: self._expire(request_id))
            self._pending[request_id] = pending
            return
        pending = _PendingRequest(on_reply=on_reply, on_timeout=on_timeout)
        if timeout is not None:
            pending.timeout_handle = self.network.simulator.schedule(
                timeout, lambda: self._expire(message.msg_id))
        self._pending[message.msg_id] = pending

    def _expire(self, request_id: int) -> None:
        pending = self._pending.pop(request_id, None)
        if pending is not None and pending.on_timeout is not None:
            pending.on_timeout()

    def _send_rpc_response(self, request: Message, payload: Any,
                           size_bytes: Optional[int]) -> None:
        self.network.send(
            self.address, request.src, "rpc.rsp",
            {"request_id": request.msg_id, "payload": payload}, size_bytes)

    # -- incoming --------------------------------------------------------

    def on_message(self, message: Message) -> None:
        if message.kind.endswith(".req"):
            self.handle_request(RequestContext(self, message))
        elif message.kind == "rpc.rsp":
            envelope = message.payload
            pending = self._pending.pop(envelope["request_id"], None)
            if pending is not None:
                if pending.timeout_handle is not None:
                    pending.timeout_handle.cancel()
                pending.on_reply(envelope["payload"])
        else:
            self.handle_datagram(message)

    def handle_request(self, ctx: RequestContext) -> None:
        """Override in RPC servers. Default: ignore (Byzantine silence)."""

    def handle_datagram(self, message: Message) -> None:
        """Override for non-RPC messages (gossip). Default: ignore."""
