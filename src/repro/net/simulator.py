"""The discrete-event loop.

A minimal, fast scheduler: events are ``(time, seq, callback)`` tuples
in a binary heap. ``seq`` is a monotonically increasing counter, so
events scheduled for the same instant run in FIFO order — this is what
makes every simulation in the repository bit-for-bit deterministic
given a seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already ran)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (useful for run-away detection)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) future events."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        event = _Event(time=self._now + delay, seq=next(self._seq),
                       callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* at absolute simulated time *when*."""
        return self.schedule(when - self._now, callback)

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this instant (events at
            exactly *until* still run). The clock is advanced to *until*.
        max_events:
            Safety valve for property tests; raises ``RuntimeError`` if
            exceeded, which usually signals an event loop in the model.
        """
        executed = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}")
            self.step()
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def advance(self, seconds: float) -> None:
        """Run all events within the next *seconds* of simulated time."""
        self.run(until=self._now + seconds)
