"""The discrete-event loop.

A minimal, fast scheduler: events are ``[time, seq, callback]`` entries
in a binary heap. ``seq`` is a monotonically increasing counter, so
events scheduled for the same instant run in FIFO order — this is what
makes every simulation in the repository bit-for-bit deterministic
given a seed.

The entries are plain lists, not objects: heap sift compares them with
C-level list comparison (``time`` first, then the unique ``seq``, so
the callback slot is never compared), and cancellation follows the
standard heapq recipe — the handle nulls the entry's callback slot in
place and the loop skips dead entries as they surface. No per-event
allocation beyond the list itself, no flag attribute, nothing retained
after an event is popped.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

#: Heap entry layout: [time, seq, callback]; a cancelled entry has its
#: callback slot set to None (the heapq "mark as removed" recipe).
_TIME, _SEQ, _CALLBACK = 0, 1, 2


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already ran)."""
        self._entry[_CALLBACK] = None

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    @property
    def time(self) -> float:
        return self._entry[_TIME]


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[list] = []
        self._seq = itertools.count()
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (useful for run-away detection)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) future events."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = [self._now + delay, next(self._seq), callback]
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* at absolute simulated time *when*."""
        return self.schedule(when - self._now, callback)

    def post(self, delay: float, callback: Callable[[], Any]) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        The handle object accounts for roughly a quarter of the
        scheduling cost (one extra allocation per event), and most
        call sites — message delivery above all — never cancel.  Use
        ``post`` whenever the caller drops the handle; use
        :meth:`schedule` only when cancellation is actually needed.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, [self._now + delay, next(self._seq), callback])

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty.

        Cancelled entries encountered on the way are discarded without
        executing anything — a ``True`` return always means exactly one
        live callback ran.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            self._now = entry[_TIME]
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this instant (events at
            exactly *until* still run). The clock is advanced to *until*.
        max_events:
            Safety valve for property tests; raises ``RuntimeError`` if
            exceeded, which usually signals an event loop in the model.
            The budget counts *executed callbacks* only: cancelled
            entries popped off the heap on the way are free, so the
            valve bounds real work deterministically regardless of how
            many scheduled events were later cancelled.
        """
        heap = self._heap
        executed = 0
        while heap:
            entry = heap[0]
            callback = entry[_CALLBACK]
            if callback is None:
                heapq.heappop(heap)
                continue
            when = entry[_TIME]
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}")
            heapq.heappop(heap)
            self._now = when
            self._events_processed += 1
            callback()
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def advance(self, seconds: float) -> None:
        """Run all events within the next *seconds* of simulated time."""
        self.run(until=self._now + seconds)
