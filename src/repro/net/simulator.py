"""The discrete-event loop.

A minimal, fast scheduler: events are ``[time, seq, callback]`` entries
in a binary heap. ``seq`` is a monotonically increasing counter, so
events scheduled for the same instant run in FIFO order — this is what
makes every simulation in the repository bit-for-bit deterministic
given a seed.

The entries are plain lists, not objects: heap sift compares them with
C-level list comparison (``time`` first, then the unique ``seq``, so
the callback slot is never compared), and cancellation follows the
standard heapq recipe — the handle nulls the entry's callback slot in
place and the loop skips dead entries as they surface. No per-event
allocation beyond the list itself, no flag attribute, nothing retained
after an event is popped.

Accounting distinguishes *live* events from *tombstones*: cancellation
leaves a dead entry in the heap (popped lazily, for free), so the raw
heap length over-reports the actual backlog whenever timeouts are
cancelled in bulk — e.g. every answered RPC in
:mod:`repro.net.transport`. :attr:`Simulator.pending` therefore counts
live (not-yet-fired, not-cancelled) events only — that is what the
``cyclosa_net_pending_events`` gauge reports — while
:attr:`Simulator.heap_size` exposes the raw entry count (live +
tombstones) for run-away valves and memory reasoning.

Absolute-time scheduling is exact: :meth:`Simulator.schedule_at`
stores *when* itself in the entry (never ``now + (when - now)``, which
can be an ULP off), so a callback scheduled for an absolute window
boundary observes ``sim.now == when`` bit-for-bit — the
:mod:`repro.obs.timeseries` / heap-sampler window flushes and
:mod:`repro.net.churn` departures rely on landing exactly on their
boundary, not a rounding error to either side.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: Heap entry layout: [time, seq, callback]; a dead entry (cancelled,
#: or already executed) has its callback slot set to None (the heapq
#: "mark as removed" recipe).
_TIME, _SEQ, _CALLBACK = 0, 1, 2


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already ran)."""
        if self._entry[_CALLBACK] is not None:
            self._entry[_CALLBACK] = None
            self._sim._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry[_CALLBACK] is None

    @property
    def time(self) -> float:
        return self._entry[_TIME]


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print(sim.now))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[list] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._live = 0

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events executed so far (useful for run-away detection)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* future events: scheduled and neither fired
        nor cancelled. Cancelled tombstones still sitting in the heap
        are excluded — this is the honest backlog number the
        ``cyclosa_net_pending_events`` gauge reports."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Raw heap entry count, live events plus cancelled tombstones
        awaiting their lazy pop (the memory-side run-away valve)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        entry = [self._now + delay, next(self._seq), callback]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def schedule_at(self, when: float, callback: Callable[[], Any]) -> EventHandle:
        """Run *callback* at absolute simulated time *when*.

        *when* is stored exactly: inside the callback ``sim.now ==
        when`` bit-for-bit. (Delegating to ``schedule(when - now)``
        would store ``now + (when - now)``, which for adversarial
        floats differs from *when* by an ULP and can drop an event on
        the wrong side of an absolute window boundary.)
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule into the past (when={when} < "
                f"now={self._now})")
        entry = [when, next(self._seq), callback]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return EventHandle(entry, self)

    def post(self, delay: float, callback: Callable[[], Any]) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        The handle object accounts for roughly a quarter of the
        scheduling cost (one extra allocation per event), and most
        call sites — message delivery above all — never cancel.  Use
        ``post`` whenever the caller drops the handle; use
        :meth:`schedule` only when cancellation is actually needed.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, [self._now + delay, next(self._seq), callback])
        self._live += 1

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty.

        Cancelled entries encountered on the way are discarded without
        executing anything — a ``True`` return always means exactly one
        live callback ran.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            callback = entry[_CALLBACK]
            if callback is None:
                continue
            # Mark consumed before running: a handle cancelled *after*
            # the event fired must not decrement the live count again.
            entry[_CALLBACK] = None
            self._live -= 1
            self._now = entry[_TIME]
            self._events_processed += 1
            callback()
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this instant (events at
            exactly *until* still run). The clock is advanced to *until*.
        max_events:
            Safety valve for property tests; raises ``RuntimeError`` if
            exceeded, which usually signals an event loop in the model.
            The budget counts *executed callbacks* only: cancelled
            entries popped off the heap on the way are free, so the
            valve bounds real work deterministically regardless of how
            many scheduled events were later cancelled.
        """
        heap = self._heap
        executed = 0
        while heap:
            entry = heap[0]
            callback = entry[_CALLBACK]
            if callback is None:
                heapq.heappop(heap)
                continue
            when = entry[_TIME]
            if until is not None and when > until:
                break
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}")
            heapq.heappop(heap)
            entry[_CALLBACK] = None  # consumed; see step()
            self._live -= 1
            self._now = when
            self._events_processed += 1
            callback()
            executed += 1
        if until is not None and self._now < until:
            self._now = until

    def advance(self, seconds: float) -> None:
        """Run all events within the next *seconds* of simulated time."""
        self.run(until=self._now + seconds)


# ---------------------------------------------------------------------------
# The sharded kernel: space-partitioned heaps behind time barriers.
# ---------------------------------------------------------------------------


@dataclass
class ShardRunReport:
    """What one :meth:`ShardedSimulator.run` produced."""

    num_nodes: int
    shards: int
    workers: int
    until: float
    windows: int
    #: Executed events, summed over every shard.
    events: int
    messages_sent: int
    cross_shard_messages: int
    timers_set: int
    dropped_to_departed: int
    departed: int
    #: Coordinator wall-clock seconds for the whole run.
    wall_seconds: float
    #: sha256 over the merged ``(time, key)`` executed-event stream
    #: (``digest=True`` runs only) — byte-identical across shard and
    #: worker counts for one seed.
    event_order_digest: Optional[str] = None
    #: Per-address model stats (``collect_node_stats=True`` runs only).
    node_stats: Optional[Dict[str, Dict[str, Any]]] = None
    #: Numeric model stats summed over every node (always present when
    #: node stats were collected).
    aggregate: Dict[str, float] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds else 0.0


def _aggregate_node_stats(node_stats: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
    """Sum every numeric per-node counter (bools count as 0/1)."""
    totals: Dict[str, float] = {}
    for stats in node_stats.values():
        for key, value in stats.items():
            if isinstance(value, (int, float)):
                totals[key] = totals.get(key, 0) + value
    return totals


def _shard_worker_main(conn, spec, shard_ids, actor_class,
                       actor_config) -> None:
    """Body of one forked shard worker (the DoubleX-style pool unit of
    work: build your partition once, then serve barrier rounds over
    the pipe until told to finish)."""
    from repro.net.shards import ShardRuntime

    try:
        runtimes = {shard_id: ShardRuntime(shard_id, spec, actor_class,
                                           actor_config)
                    for shard_id in shard_ids}
        while True:
            command = conn.recv()
            if command[0] == "advance":
                _, t_end, inbox = command
                outbox: List[tuple] = []
                records: List[List[tuple]] = []
                for shard_id in sorted(runtimes):
                    runtime = runtimes[shard_id]
                    routed = inbox.get(shard_id)
                    if routed:
                        runtime.inject(routed)
                    outbox.extend(runtime.run_window(t_end))
                    if spec.digest:
                        records.append(runtime.take_records())
                conn.send(("window", outbox, records))
            elif command[0] == "finish":
                stats = [runtimes[shard_id].stats
                         for shard_id in sorted(runtimes)]
                node_stats = None
                if spec.collect_node_stats:
                    node_stats = {}
                    for shard_id in sorted(runtimes):
                        node_stats.update(runtimes[shard_id].node_stats())
                conn.send(("done", stats, node_stats))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown command {command[0]!r}")
    except Exception:  # surface the real traceback in the parent
        import traceback

        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


class ShardedSimulator:
    """Space-partitioned discrete-event kernel over worker processes.

    Nodes (:class:`repro.net.shards.ShardActor` subclasses) are
    assigned to ``shards`` partitions by
    :func:`repro.net.shards.shard_of`; each shard runs its own event
    heap. Shards synchronise with a conservative **time-barrier
    protocol**: simulated time advances in windows of
    ``spec.barrier_window`` seconds, every message delay is at least
    the ``lookahead`` (== the widest allowed window), and cross-shard
    messages produced inside a window are routed to their destination
    shard at the window edge — provably before their arrival instant
    can execute. Within a window each shard executes its events in
    ``(time, key)`` order, where the key is a pure function of the
    causing actor's history; the merged stream is therefore
    byte-identical for any shard count and any worker count (the
    ``event_order_digest`` of a ``digest=True`` run pins exactly
    that, and ``benchmarks/check_shard_determinism.py`` gates on it).

    ``workers=1`` runs every shard in-process; ``workers>1`` forks
    persistent worker processes (round-robin shard ownership), each
    serving barrier rounds over a pipe. Requires the ``fork`` start
    method (POSIX); the in-process path is the portable fallback.
    """

    def __init__(self, actor_class, actor_config: Optional[dict] = None, *,
                 num_nodes: int, shards: int = 1, workers: int = 1,
                 seed: int = 0, lookahead: float = 0.05,
                 window: Optional[float] = None,
                 latency_jitter: float = 0.05, digest: bool = False,
                 collect_node_stats: bool = False) -> None:
        from repro.net.shards import ShardSpec

        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers > shards:
            raise ValueError(
                f"workers ({workers}) cannot exceed shards ({shards}): "
                "a worker without a shard would idle forever")
        self.actor_class = actor_class
        self.actor_config = dict(actor_config or {})
        self.spec = ShardSpec(
            num_nodes=num_nodes, num_shards=shards, seed=seed,
            lookahead=lookahead, window=window,
            latency_jitter=latency_jitter, digest=digest,
            collect_node_stats=collect_node_stats)
        self.workers = workers
        self._ran = False

    # -- driving -------------------------------------------------------

    def run(self, until: float) -> ShardRunReport:
        """Simulate the horizon ``[0, until)`` and return the report.

        One-shot: a second call raises (worker processes and actor
        state are not reusable across runs — build a fresh kernel)."""
        if self._ran:
            raise RuntimeError("ShardedSimulator.run is one-shot; "
                               "build a fresh instance for a new run")
        self._ran = True
        if until <= 0:
            raise ValueError("until must be > 0")
        begin = _time.perf_counter()
        if self.workers == 1:
            result = self._run_inprocess(until)
        else:
            result = self._run_forked(until)
        stats_list, node_stats, digest, windows = result
        report = ShardRunReport(
            num_nodes=self.spec.num_nodes, shards=self.spec.num_shards,
            workers=self.workers, until=until, windows=windows,
            events=sum(s.events for s in stats_list),
            messages_sent=sum(s.messages_sent for s in stats_list),
            cross_shard_messages=sum(s.cross_shard_messages
                                     for s in stats_list),
            timers_set=sum(s.timers_set for s in stats_list),
            dropped_to_departed=sum(s.dropped_to_departed
                                    for s in stats_list),
            departed=sum(s.departed for s in stats_list),
            wall_seconds=_time.perf_counter() - begin,
            event_order_digest=digest,
            node_stats=node_stats,
            aggregate=(_aggregate_node_stats(node_stats)
                       if node_stats is not None else {}))
        return report

    def _boundaries(self, until: float) -> List[float]:
        """The barrier instants: ``k * window`` clipped to *until*.

        Computed once, by multiplication (never by accumulating
        additions, whose rounding would depend on the loop count) —
        the exact same floats drive the in-process and forked paths.
        """
        window = self.spec.barrier_window
        edges: List[float] = []
        k = 1
        while True:
            edge = k * window
            if edge >= until:
                edges.append(until)
                return edges
            edges.append(edge)
            k += 1

    @staticmethod
    def _route(outbox, num_shards: int) -> Dict[int, List[tuple]]:
        """Group one window's cross-shard events by destination shard.

        Events are routed in deterministic order: sorted by ``(time,
        key)``, so a destination heap receives identical push sequences
        regardless of which worker produced each event."""
        outbox.sort(key=lambda event: (event[1], event[2]))
        routed: Dict[int, List[tuple]] = {}
        for event in outbox:
            routed.setdefault(event[0], []).append(event)
        return routed

    def _run_inprocess(self, until: float):
        from repro.net.shards import ShardRuntime

        spec = self.spec
        runtimes = {shard_id: ShardRuntime(shard_id, spec,
                                           self.actor_class,
                                           self.actor_config)
                    for shard_id in range(spec.num_shards)}
        hasher = hashlib.sha256() if spec.digest else None
        boundaries = self._boundaries(until)
        inbox: Dict[int, List[tuple]] = {}
        for t_end in boundaries:
            outbox: List[tuple] = []
            records: List[List[tuple]] = []
            for shard_id in sorted(runtimes):
                runtime = runtimes[shard_id]
                routed = inbox.get(shard_id)
                if routed:
                    runtime.inject(routed)
                outbox.extend(runtime.run_window(t_end))
                if spec.digest:
                    records.append(runtime.take_records())
            if hasher is not None:
                for record in heapq.merge(*records):
                    hasher.update(repr(record).encode("ascii"))
            inbox = self._route(outbox, spec.num_shards)
        stats_list = [runtimes[shard_id].stats
                      for shard_id in sorted(runtimes)]
        node_stats = None
        if spec.collect_node_stats:
            node_stats = {}
            for shard_id in sorted(runtimes):
                node_stats.update(runtimes[shard_id].node_stats())
        digest = hasher.hexdigest() if hasher is not None else None
        return stats_list, node_stats, digest, len(boundaries)

    def _run_forked(self, until: float):
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX
            raise RuntimeError(
                "ShardedSimulator workers>1 needs the 'fork' start "
                "method; run with workers=1 on this platform") from error
        spec = self.spec
        #: worker index -> the shards it owns (round-robin, so a curve
        #: over worker counts re-balances without moving the partition)
        ownership = {worker: [shard for shard in range(spec.num_shards)
                              if shard % self.workers == worker]
                     for worker in range(self.workers)}
        pipes = []
        processes = []
        for worker in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, spec, ownership[worker],
                      self.actor_class, self.actor_config),
                daemon=True)
            process.start()
            child_conn.close()
            pipes.append(parent_conn)
            processes.append(process)
        try:
            hasher = hashlib.sha256() if spec.digest else None
            boundaries = self._boundaries(until)
            inbox: Dict[int, List[tuple]] = {}
            for t_end in boundaries:
                for worker, conn in enumerate(pipes):
                    try:
                        conn.send(("advance", t_end,
                                   {shard: inbox[shard]
                                    for shard in ownership[worker]
                                    if shard in inbox}))
                    except BrokenPipeError:
                        # The worker died (its buffered "error" reply,
                        # if any, is still readable below).
                        pass
                outbox: List[tuple] = []
                records: List[List[tuple]] = []
                for conn in pipes:
                    reply = conn.recv()
                    if reply[0] == "error":
                        raise RuntimeError(
                            f"shard worker failed:\n{reply[1]}")
                    outbox.extend(reply[1])
                    records.extend(reply[2])
                if hasher is not None:
                    for record in heapq.merge(*records):
                        hasher.update(repr(record).encode("ascii"))
                inbox = self._route(outbox, spec.num_shards)
            stats_list = []
            node_stats = {} if spec.collect_node_stats else None
            for conn in pipes:
                conn.send(("finish",))
                reply = conn.recv()
                if reply[0] == "error":
                    raise RuntimeError(f"shard worker failed:\n{reply[1]}")
                stats_list.extend(reply[1])
                if node_stats is not None and reply[2] is not None:
                    node_stats.update(reply[2])
            digest = hasher.hexdigest() if hasher is not None else None
            return stats_list, node_stats, digest, len(boundaries)
        finally:
            for conn in pipes:
                conn.close()
            for process in processes:
                process.join(timeout=10.0)
                if process.is_alive():  # pragma: no cover - hard hang
                    process.terminate()

