"""Latency models for links and servers.

Each model is a distribution over per-message delays, sampled with the
caller's seeded RNG so simulations stay deterministic. The models used
by the experiment calibrations:

- LAN / same-region links: :class:`UniformLatency` around a few ms.
- WAN residential links (CYCLOSA peers): :class:`LogNormalLatency`,
  median ≈ 40 ms with a moderate tail.
- TOR circuits: :class:`HeavyTailLatency` (log-normal body with a
  Pareto tail), reproducing the multi-second medians and minute-scale
  tails the paper measures for full search round-trips over TOR.
- Search-engine processing: :class:`LogNormalLatency` around 150 ms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence


class LatencyModel(Protocol):
    """Anything that can sample a non-negative delay in seconds."""

    def sample(self, rng) -> float:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Always the same delay; the default for unit tests."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError("delay must be non-negative")

    def sample(self, rng) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """Uniform in [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError("require 0 <= low <= high")

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogNormalLatency:
    """Log-normal delay parameterised by its *median* and shape sigma.

    The log-normal is the standard empirical fit for WAN round-trip
    times: most samples near the median, an exponential-ish upper tail.
    """

    median: float
    sigma: float = 0.4

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise ValueError("median and sigma must be positive")

    def sample(self, rng) -> float:
        return self.median * math.exp(self.sigma * rng.gauss(0.0, 1.0))


@dataclass(frozen=True)
class HeavyTailLatency:
    """Log-normal body with a Pareto tail.

    With probability ``tail_prob`` the sample is drawn from a Pareto
    distribution starting at ``tail_scale`` with exponent ``tail_alpha``
    (alpha ≤ 2 gives the minute-scale stragglers seen on TOR circuits);
    otherwise from the log-normal body.
    """

    median: float
    sigma: float = 0.6
    tail_prob: float = 0.08
    tail_scale: float = 4.0
    tail_alpha: float = 1.6

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValueError("median must be positive")
        if not 0 <= self.tail_prob <= 1:
            raise ValueError("tail_prob must be a probability")
        if self.tail_alpha <= 0 or self.tail_scale <= 0:
            raise ValueError("tail parameters must be positive")

    def sample(self, rng) -> float:
        if rng.random() < self.tail_prob:
            # Inverse-CDF Pareto sample.
            u = 1.0 - rng.random()
            return self.tail_scale * u ** (-1.0 / self.tail_alpha)
        return self.median * math.exp(self.sigma * rng.gauss(0.0, 1.0))


@dataclass(frozen=True)
class CompositeLatency:
    """Sum of independent component delays (e.g. link + processing)."""

    components: Sequence[LatencyModel]

    def sample(self, rng) -> float:
        return sum(component.sample(rng) for component in self.components)


@dataclass(frozen=True)
class ScaledLatency:
    """A wrapped model scaled by a constant factor (for calibration)."""

    base: LatencyModel
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError("factor must be non-negative")

    def sample(self, rng) -> float:
        return self.factor * self.base.sample(rng)
