"""Message tracing: a wiretap for the simulated network.

The traffic-analysis experiments and several security tests need to
observe everything a passive network adversary would see — sources,
destinations, kinds and *sizes*, but not plaintext (most payloads are
sealed bytes). :class:`MessageTrace` installs itself around
``Network.send`` and records exactly that.

Usage::

    with MessageTrace(network, kinds=("cyclosa.fwd",)) as trace:
        ...drive traffic...
    sizes = [record.size_bytes for record in trace]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.net.transport import Network


@dataclass(frozen=True)
class TracedMessage:
    """One observed transmission (metadata only — what a passive
    adversary on the wire sees of encrypted traffic)."""

    time: float
    src: str
    dst: str
    kind: str
    size_bytes: int
    payload_is_bytes: bool


class MessageTrace:
    """Context manager capturing transmissions on a network."""

    def __init__(self, network: Network,
                 kinds: Optional[Sequence[str]] = None,
                 src: Optional[str] = None,
                 dst: Optional[str] = None) -> None:
        self.network = network
        self._kinds = tuple(kinds) if kinds else None
        self._src = src
        self._dst = dst
        self._records: List[TracedMessage] = []
        self._original_send: Optional[Callable] = None

    # -- capture lifecycle ------------------------------------------------

    def __enter__(self) -> "MessageTrace":
        if self._original_send is not None:
            raise RuntimeError("trace already installed")
        self._original_send = self.network.send

        def tapped(src: str, dst: str, kind: str, payload: Any,
                   size_bytes: Optional[int] = None):
            message = self._original_send(src, dst, kind, payload,
                                          size_bytes)
            if self._matches(src, dst, kind):
                size = (size_bytes if size_bytes is not None
                        else (len(payload)
                              if isinstance(payload, (bytes, bytearray))
                              else (message.size_bytes if message else 0)))
                self._records.append(TracedMessage(
                    time=self.network.simulator.now,
                    src=src, dst=dst, kind=kind, size_bytes=size,
                    payload_is_bytes=isinstance(payload,
                                                (bytes, bytearray))))
            return message

        self.network.send = tapped
        return self

    def __exit__(self, *exc_info) -> None:
        if self._original_send is not None:
            self.network.send = self._original_send
            self._original_send = None

    def _matches(self, src: str, dst: str, kind: str) -> bool:
        if self._kinds is not None and not any(
                kind.startswith(k) for k in self._kinds):
            return False
        if self._src is not None and src != self._src:
            return False
        if self._dst is not None and dst != self._dst:
            return False
        return True

    # -- inspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[TracedMessage]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[TracedMessage]:
        return list(self._records)

    def sizes(self) -> List[int]:
        return [record.size_bytes for record in self._records]

    def between(self, src: str, dst: str) -> List[TracedMessage]:
        return [r for r in self._records if r.src == src and r.dst == dst]
