"""Message tracing: a wiretap for the simulated network.

The traffic-analysis experiments and several security tests need to
observe everything a passive network adversary would see — sources,
destinations, kinds and *sizes*, but not plaintext (most payloads are
sealed bytes). :class:`MessageTrace` installs itself around
``Network.send`` and records exactly that.

Two extensions serve the observability subsystem:

- ``capture_plaintext=True`` additionally stores each message's *wire
  image*: the raw bytes for sealed payloads, the canonical
  :mod:`repro.net.wire` encoding for plaintext dict payloads
  (handshake hellos, engine control messages). The telemetry privacy
  audit (:mod:`repro.obs.audit`) scans these images for trace ids and
  query text — anything it finds there, a real adversary would find
  too.
- When obs is enabled, every matched transmission also feeds the
  metrics registry: ``cyclosa_net_traced_messages_total{kind=...}``
  and a per-kind byte histogram, so the wiretap's view shows up in
  ``repro obs --format prom`` instead of being a standalone list.

Usage::

    with MessageTrace(network, kinds=("cyclosa.fwd",)) as trace:
        ...drive traffic...
    sizes = [record.size_bytes for record in trace]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Sequence

from repro.net.transport import Network
from repro.obs import OBS, sinks

#: Histogram bounds for per-kind message sizes — aligned with the
#: 512-byte record envelope so padding regressions shift a bucket.
SIZE_BUCKETS = (64, 128, 256, 512, 768, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True)
class TracedMessage:
    """One observed transmission (metadata only — what a passive
    adversary on the wire sees of encrypted traffic)."""

    time: float
    src: str
    dst: str
    kind: str
    size_bytes: int
    payload_is_bytes: bool
    #: Raw wire bytes (sealed payloads verbatim; plaintext payloads in
    #: canonical encoding). Only populated under
    #: ``capture_plaintext=True``; ``None`` otherwise.
    wire_image: Optional[bytes] = None


def _encode_wire_image(payload: Any) -> bytes:
    """What the payload looks like on the (simulated) wire."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    try:
        from repro.net import wire
        return wire.encode(payload)
    except Exception:
        return repr(payload).encode("utf-8", "replace")


class MessageTrace:
    """Context manager capturing transmissions on a network."""

    #: The Network method this wiretap hooks — taken from the shared
    #: sink registry so the runtime capture point and the static taint
    #: pass's wire-egress sink list are one definition
    #: (``tests/lint/test_sinks_registry.py`` pins the identity).
    TAP_METHOD = sinks.RUNTIME_WIRE_TAP

    def __init__(self, network: Network,
                 kinds: Optional[Sequence[str]] = None,
                 src: Optional[str] = None,
                 dst: Optional[str] = None,
                 capture_plaintext: bool = False) -> None:
        self.network = network
        self._kinds = tuple(kinds) if kinds else None
        self._src = src
        self._dst = dst
        self._capture_plaintext = capture_plaintext
        self._records: List[TracedMessage] = []
        self._original_send: Optional[Callable] = None

    # -- capture lifecycle ------------------------------------------------

    def __enter__(self) -> "MessageTrace":
        if self._original_send is not None:
            raise RuntimeError("trace already installed")
        self._original_send = getattr(self.network, self.TAP_METHOD)

        def tapped(src: str, dst: str, kind: str, payload: Any,
                   size_bytes: Optional[int] = None):
            message = self._original_send(src, dst, kind, payload,
                                          size_bytes)
            if self._matches(src, dst, kind):
                size = (size_bytes if size_bytes is not None
                        else (len(payload)
                              if isinstance(payload, (bytes, bytearray))
                              else (message.size_bytes if message else 0)))
                wire_image = (_encode_wire_image(payload)
                              if self._capture_plaintext else None)
                self._records.append(TracedMessage(
                    time=self.network.simulator.now,
                    src=src, dst=dst, kind=kind, size_bytes=size,
                    payload_is_bytes=isinstance(payload,
                                                (bytes, bytearray)),
                    wire_image=wire_image))
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_net_traced_messages_total",
                        "Messages observed by the active wiretap.",
                        kind=kind).inc()
                    OBS.registry.histogram(
                        "cyclosa_net_traced_message_bytes",
                        "Wire sizes observed by the active wiretap.",
                        buckets=SIZE_BUCKETS, kind=kind).observe(size)
            return message

        setattr(self.network, self.TAP_METHOD, tapped)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._original_send is not None:
            setattr(self.network, self.TAP_METHOD, self._original_send)
            self._original_send = None

    def _matches(self, src: str, dst: str, kind: str) -> bool:
        if self._kinds is not None and not any(
                kind.startswith(k) for k in self._kinds):
            return False
        if self._src is not None and src != self._src:
            return False
        if self._dst is not None and dst != self._dst:
            return False
        return True

    # -- inspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[TracedMessage]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[TracedMessage]:
        return list(self._records)

    def sizes(self) -> List[int]:
        return [record.size_bytes for record in self._records]

    def between(self, src: str, dst: str) -> List[TracedMessage]:
        return [r for r in self._records if r.src == src and r.dst == dst]
