"""Canonical wire encoding for application payloads.

Protocols in this repository encrypt *bytes*; their payloads are small
JSON-able structures (queries, result lists, handshake fields) that may
embed raw byte strings (keys, quotes, nonces). This module provides a
deterministic, reversible encoding: JSON with sorted keys, where bytes
are tagged as ``{"__bytes__": "<hex>"}``.

Determinism matters twice: encrypted sizes must be stable for the
traffic-analysis experiments, and hashes over encoded structures (e.g.
attestation report data) must be reproducible.
"""

from __future__ import annotations

import json
from typing import Any

_BYTES_TAG = "__bytes__"


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_TAG: bytes(value).hex()}
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode(obj: Any) -> bytes:
    """Serialise *obj* to canonical bytes."""
    return json.dumps(_encode_value(obj), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    return _decode_value(json.loads(data.decode("utf-8")))
