"""Churn injection: drive node departures/failures over simulated time.

The paper's model lets peers "behave arbitrarily by crashing" (§III);
the overlay's answer is gossip self-healing plus per-query blacklisting
(§VI-b). :class:`ChurnProcess` schedules departures (and optional
crash-style silence) against any set of nodes so experiments and tests
can measure recovery instead of hand-killing nodes.

Two departure styles:

- ``"crash"``   — the node vanishes from the network mid-flight; no
  retirement from the bootstrap repository (stale entries remain, as in
  real deployments);
- ``"graceful"`` — the node retires from the repository first (clean
  shutdown), then leaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.obs import OBS


@dataclass
class ChurnEvent:
    """One scheduled departure, for post-hoc inspection."""

    time: float
    address: str
    style: str


class ChurnProcess:
    """Schedules departures of victim nodes over a time window."""

    def __init__(self, network, rng,
                 repository=None,
                 on_depart: Optional[Callable[[str], None]] = None) -> None:
        self.network = network
        self.rng = rng
        self.repository = repository
        self.on_depart = on_depart
        self.events: List[ChurnEvent] = []

    def schedule_departures(self, victims: Sequence, start: float,
                            duration: float,
                            style: str = "crash") -> List[ChurnEvent]:
        """Spread the victims' departures uniformly over the window.

        Each victim must expose ``address`` and (optionally) a
        ``pss.stop()`` to halt its gossip before vanishing.
        """
        if style not in ("crash", "graceful"):
            raise ValueError("style must be 'crash' or 'graceful'")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        now = self.network.simulator.now
        if start < now:
            # Validate up front: otherwise the first draw that lands
            # before `now` fails deep inside Simulator.schedule with an
            # opaque "cannot schedule into the past (delay=-…)".
            raise ValueError(
                f"departure window [{start}, {start + duration}] starts "
                f"in the past: the simulation is already at "
                f"sim.now={now}")
        scheduled: List[ChurnEvent] = []
        for victim in victims:
            when = start + self.rng.uniform(0.0, duration)
            event = ChurnEvent(time=when, address=victim.address,
                               style=style)
            scheduled.append(event)
            self.events.append(event)
            self.network.simulator.schedule_at(
                when, lambda v=victim, s=style: self._depart(v, s))
        return scheduled

    def _depart(self, victim, style: str) -> None:
        span = None
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_churn_departures_total",
                "Nodes removed from the overlay by churn injection.",
                style=style).inc()
            span = OBS.tracer.start_span(
                "churn.departure",
                attributes={"node": victim.address, "style": style})
        pss = getattr(victim, "pss", None)
        if pss is not None:
            pss.stop()
        if style == "graceful" and self.repository is not None:
            self.repository.retire(victim.address)
        self.network.unregister(victim.address)
        if self.on_depart is not None:
            self.on_depart(victim.address)
        if span is not None:
            OBS.tracer.end_span(span)
            # Mirror into the departing node's own sink so the event
            # shows up next to that node's relay spans in assembled
            # deployment timelines.
            OBS.router.record(victim.address, span)
