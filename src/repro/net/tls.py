"""Authenticated secure channels over the simulated transport.

A one-round-trip handshake modelled on TLS 1.3's DH + credential flow:

1. Initiator sends its ephemeral DH public value plus a credential
   binding that value to its identity.
2. Responder verifies the credential, replies with its own DH public
   value and credential, and derives the session key.
3. Initiator verifies and derives the same key.

The *credential* is pluggable:

- :class:`SignatureAuthenticator` — classic PKI: an RSA signature over
  the handshake context by the node's long-term identity key (used by
  the search engine front-end and the non-SGX baselines).
- :class:`SgxAuthenticator` — the paper's bootstrap (§V-D): the DH
  public value is bound into an enclave report, quoted by the platform,
  and the peer accepts only after the simulated IAS validates the quote
  *and* the measurement matches a known-good CYCLOSA build. A genuine
  handshake therefore cannot be completed by a client that bypasses the
  enclave (§VI-a).

Once established, a :class:`SecureChannel` seals every application
payload with a per-direction AEAD key; sequence numbers provide replay
detection (the mitigation discussed in §VI-b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Protocol

from repro.crypto.aead import AeadError, AeadKey, open_ as aead_open, seal as aead_seal
from repro.crypto.dh import DhKeyPair, DhParams
from repro.crypto.hashes import hkdf, sha256
from repro.crypto.keys import IdentityKeyPair
from repro.crypto.rsa import RsaPublicKey
from repro.net import wire
from repro.net.transport import NetNode, RequestContext


class TlsError(Exception):
    """Handshake or record-layer failure."""


class Authenticator(Protocol):
    """Produces and checks handshake credentials."""

    def prove(self, context: bytes) -> dict:  # pragma: no cover - protocol
        ...

    def verify(self, credential: dict, context: bytes) -> bool:  # pragma: no cover
        ...


class SignatureAuthenticator:
    """PKI-style credential: sign the context with a long-term RSA key.

    *trust_anchor* decides whether a presented public key is acceptable
    (e.g. pinned engine key, or any key for opportunistic encryption).
    """

    def __init__(self, identity: IdentityKeyPair,
                 trust_anchor: Optional[Callable[[RsaPublicKey], bool]] = None) -> None:
        self._identity = identity
        self._trust_anchor = trust_anchor or (lambda public: True)

    def prove(self, context: bytes) -> dict:
        return {
            "scheme": "rsa-sig",
            "n": self._identity.public.n,
            "e": self._identity.public.e,
            "signature": self._identity.rsa.sign(context),
        }

    def verify(self, credential: dict, context: bytes) -> bool:
        if credential.get("scheme") != "rsa-sig":
            return False
        public = RsaPublicKey(n=credential["n"], e=credential["e"])
        if not self._trust_anchor(public):
            return False
        return public.verify(context, credential["signature"])


class SgxAuthenticator:
    """Attestation credential: an SGX quote over the handshake context.

    ``prove`` asks the local enclave for a report whose ``report_data``
    is the hash of the handshake context and has the platform quote it.
    ``verify`` submits the peer quote to the IAS and pins the
    measurement (§V-D).
    """

    def __init__(self, enclave, host, ias, policy) -> None:
        self._enclave = enclave
        self._host = host
        self._ias = ias
        self._policy = policy

    def prove(self, context: bytes) -> dict:
        report = self._enclave.create_report(sha256(b"repro.tls:", context))
        quote = self._host.quote_report(report)
        return {
            "scheme": "sgx-quote",
            "platform_id": quote.platform_id,
            "measurement": quote.measurement,
            "report_data": quote.report_data,
            "signature": quote.signature,
        }

    def verify(self, credential: dict, context: bytes) -> bool:
        from repro.sgx.attestation import AttestationError, Quote, attest_quote

        if credential.get("scheme") != "sgx-quote":
            return False
        if credential["report_data"] != sha256(b"repro.tls:", context):
            return False
        quote = Quote(
            platform_id=credential["platform_id"],
            measurement=credential["measurement"],
            report_data=credential["report_data"],
            signature=credential["signature"],
        )
        try:
            attest_quote(self._ias, self._policy, quote)
        except AttestationError:
            return False
        return True


@dataclass
class SecureChannel:
    """An established, authenticated, replay-protected channel.

    Records carry an explicit sequence number (authenticated as
    associated data) because the simulated network reorders messages;
    the receiver accepts each sequence number at most once — a replayed
    record (the proxy-side attack §VI-b discusses) is rejected.
    """

    peer: str
    send_key: AeadKey
    recv_key: AeadKey

    def __post_init__(self) -> None:
        self._send_seq = 0
        self._seen_seqs: set = set()

    def seal(self, payload: Any, rng=None) -> bytes:
        """Encrypt one application payload (any wire-encodable object)."""
        seq = self._send_seq
        self._send_seq += 1
        header = seq.to_bytes(8, "big")
        return header + aead_seal(self.send_key, wire.encode(payload),
                                  associated_data=header, rng=rng)

    def open(self, sealed: bytes) -> Any:
        """Decrypt one record; raises on tampering or replay."""
        if len(sealed) < 8:
            raise TlsError("record too short")
        header, body = sealed[:8], sealed[8:]
        seq = int.from_bytes(header, "big")
        if seq in self._seen_seqs:
            raise TlsError("record replayed")
        try:
            plaintext = aead_open(self.recv_key, body,
                                  associated_data=header)
        except AeadError as exc:
            raise TlsError("record failed authentication") from exc
        self._seen_seqs.add(seq)
        return wire.decode(plaintext)


def _directional_keys(shared: bytes, initiator: bool):
    key_i2r = AeadKey(hkdf(shared, b"repro.tls.i2r", 32))
    key_r2i = AeadKey(hkdf(shared, b"repro.tls.r2i", 32))
    if initiator:
        return key_i2r, key_r2i
    return key_r2i, key_i2r


class SecureChannelManager:
    """Per-node channel establishment and caching.

    Attach one to a :class:`~repro.net.transport.NetNode`; wire its
    :meth:`handle_handshake` into the node's request dispatch for the
    ``tls`` RPC kind. Channels are cached per peer; re-handshaking
    replaces the cached channel (simple rekeying).
    """

    def __init__(self, node: NetNode, authenticator: Authenticator,
                 rng, dh_params: Optional[DhParams] = None,
                 kind: str = "tls",
                 on_established: Optional[Callable[[SecureChannel], None]] = None) -> None:
        self._node = node
        self._authenticator = authenticator
        self._rng = rng
        self._dh_params = dh_params or DhParams.small_test_group()
        self._channels: Dict[str, SecureChannel] = {}
        self.kind = kind
        self._on_established = on_established
        # In-flight initiated handshakes, for resolving simultaneous
        # cross-handshakes (both peers initiating at once).
        self._inflight: Dict[str, dict] = {}

    def channel(self, peer: str) -> Optional[SecureChannel]:
        return self._channels.get(peer)

    def establish(self, peer: str,
                  on_ready: Callable[[SecureChannel], None],
                  on_fail: Optional[Callable[[str], None]] = None,
                  timeout: Optional[float] = None) -> None:
        """Open (or refresh) a channel to *peer*; 1 network round trip.

        Simultaneous cross-handshakes (both sides initiating at once)
        are resolved deterministically: the lexicographically smaller
        address keeps the initiator role; the other side's initiation
        is satisfied by its responder-created channel.
        """
        ephemeral = DhKeyPair.generate(self._dh_params, rng=self._rng)
        context = _handshake_context(
            self._node.address, peer, ephemeral.public)
        hello = {
            "dh_public": ephemeral.public,
            "credential": self._authenticator.prove(context),
        }
        entry = {"on_ready": on_ready, "on_fail": on_fail, "done": False}
        self._inflight[peer] = entry

        def on_reply(response: dict) -> None:
            if entry["done"]:
                return
            if not isinstance(response, dict) or "dh_public" not in response:
                _fail("malformed server hello")
                return
            peer_context = _handshake_context(
                peer, self._node.address, response["dh_public"])
            if not self._authenticator.verify(
                    response["credential"], peer_context):
                _fail("peer credential rejected")
                return
            entry["done"] = True
            self._inflight.pop(peer, None)
            shared = ephemeral.shared_secret(response["dh_public"])
            send_key, recv_key = _directional_keys(shared, initiator=True)
            channel = SecureChannel(peer=peer, send_key=send_key,
                                    recv_key=recv_key)
            self._channels[peer] = channel
            if self._on_established is not None:
                self._on_established(channel)
            on_ready(channel)

        def _fail(reason: str) -> None:
            if entry["done"]:
                return
            entry["done"] = True
            self._inflight.pop(peer, None)
            if on_fail is not None:
                on_fail(reason)

        self._node.request(
            peer, hello, on_reply, timeout=timeout,
            on_timeout=lambda: _fail("handshake timeout"), kind=self.kind)

    def handle_handshake(self, ctx: RequestContext) -> bool:
        """Responder side; returns True if the request was a handshake."""
        if ctx.request.kind != f"{self.kind}.req":
            return False
        hello = ctx.request.payload
        peer = ctx.request.src
        entry = self._inflight.get(peer)
        if entry is not None and not entry["done"] \
                and self._node.address < peer:
            # Cross-handshake: we are the elected initiator — ignore the
            # peer's hello; our own handshake will serve both sides.
            return True
        context = _handshake_context(
            peer, self._node.address, hello["dh_public"])
        if not self._authenticator.verify(hello["credential"], context):
            # Silent drop: an unauthenticated initiator learns nothing.
            return True
        ephemeral = DhKeyPair.generate(self._dh_params, rng=self._rng)
        shared = ephemeral.shared_secret(hello["dh_public"])
        send_key, recv_key = _directional_keys(shared, initiator=False)
        channel = SecureChannel(peer=peer, send_key=send_key,
                                recv_key=recv_key)
        self._channels[peer] = channel
        my_context = _handshake_context(
            self._node.address, peer, ephemeral.public)
        ctx.respond({
            "dh_public": ephemeral.public,
            "credential": self._authenticator.prove(my_context),
        })
        if self._on_established is not None:
            self._on_established(channel)
        if entry is not None and not entry["done"]:
            # Our own initiation to this peer is now redundant: satisfy
            # its caller with the responder-created channel.
            entry["done"] = True
            self._inflight.pop(peer, None)
            entry["on_ready"](channel)
        return True


def _handshake_context(sender: str, receiver: str, dh_public: int) -> bytes:
    return b"|".join([
        b"repro.tls.hs.v1",
        sender.encode("utf-8"),
        receiver.encode("utf-8"),
        dh_public.to_bytes((dh_public.bit_length() + 7) // 8 or 1, "big"),
    ])
