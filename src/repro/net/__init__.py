"""Deterministic discrete-event network simulation.

Every latency and throughput figure in the paper was measured on a
physical testbed; this package replaces that testbed with a seeded
discrete-event simulator so the same figures become exactly
reproducible. Simulated time is the *only* clock in the repository —
`time.time()` never appears in measured paths.

- :mod:`repro.net.simulator` — the event loop (binary-heap scheduler,
  deterministic FIFO tie-breaking), plus the space-partitioned
  :class:`ShardedSimulator` kernel that runs shards of the node space
  in worker processes behind deterministic time barriers.
- :mod:`repro.net.shards`    — the sharded kernel's building blocks:
  :func:`shard_of` address partitioning, the per-shard
  :class:`ShardRuntime` heap, and the :class:`ShardActor` node API
  whose runs are byte-identical at any shard/worker count.
- :mod:`repro.net.latency`   — pluggable link/server latency models
  (constant, uniform, log-normal WAN, heavy-tailed TOR-like).
- :mod:`repro.net.transport` — addressable nodes, messages with byte
  sizes, per-link latency + bandwidth, loss injection, and an RPC
  helper with timeouts.
- :mod:`repro.net.tls`       — authenticated secure channels (DH +
  identity signatures, optionally gated on SGX remote attestation)
  carrying AEAD-sealed application payloads.
- :mod:`repro.net.trace`     — the *adversary's* wiretap
  (:class:`MessageTrace`): what a network observer sees, for traffic
  analysis. Performance telemetry is a different concern and lives in
  :mod:`repro.obs` — transport send/receive paths emit ``net.send`` /
  ``net.recv`` spans and byte counters there when observability is
  enabled.
"""

from repro.net.latency import (
    CompositeLatency,
    ConstantLatency,
    HeavyTailLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.shards import (
    ShardActor,
    ShardRuntime,
    ShardSpec,
    ShardStats,
    shard_of,
)
from repro.net.simulator import ShardedSimulator, ShardRunReport, Simulator
from repro.net.trace import MessageTrace, TracedMessage
from repro.net.transport import Message, NetworkError, Network, NetNode
from repro.net.tls import SecureChannel, SecureChannelManager, TlsError

__all__ = [
    "CompositeLatency",
    "ConstantLatency",
    "HeavyTailLatency",
    "LatencyModel",
    "LogNormalLatency",
    "UniformLatency",
    "Simulator",
    "ShardedSimulator",
    "ShardRunReport",
    "ShardActor",
    "ShardRuntime",
    "ShardSpec",
    "ShardStats",
    "shard_of",
    "MessageTrace",
    "TracedMessage",
    "Message",
    "NetworkError",
    "Network",
    "NetNode",
    "SecureChannel",
    "SecureChannelManager",
    "TlsError",
]
