"""Space-partitioned shards of the simulation: actors, per-shard heaps.

The single-heap :class:`~repro.net.simulator.Simulator` executes every
event of the whole world in one process; that caps CYCLOSA runs at toy
populations (ROADMAP item 1). The sharded kernel splits the *node
space* instead of the time axis: every node (here: :class:`ShardActor`)
is assigned to exactly one shard by :func:`shard_of`, each shard runs
its own event heap (:class:`ShardRuntime`), and shards only interact
through messages that are exchanged at deterministic time barriers
(driven by :class:`repro.net.simulator.ShardedSimulator`).

Determinism contract — the whole point of the design:

* Every event carries a **key** ``(rank, actor, seq)`` that is a pure
  function of the *causing actor's own history*: timers are keyed by
  the owning actor's timer counter, messages by the sender's send
  counter. Keys never depend on which shard (or worker process) ran
  the event, so the merged event order — sorted by ``(time, key)`` —
  is byte-identical for any shard count and any worker count.
* Every message delay is a pure hash of ``(seed, src, dst, send
  seq)`` — never a draw from a shared RNG stream, whose consumption
  order would differ between shard layouts. Each actor additionally
  owns a private ``random.Random`` seeded from ``(seed, address)``
  for model-level decisions.
* Every message delay is at least the **lookahead**: a message sent
  inside barrier window ``[kW, (k+1)W)`` cannot arrive before
  ``(k+1)W``, so exchanging outboxes at the window edge is always in
  time, and whether the sender happens to share a shard with the
  receiver is unobservable. (This is the classic conservative
  synchronisation argument; the lookahead plays the role of the
  minimum link latency.)

The per-shard heaps reuse the plain-list entry idiom of
:mod:`repro.net.simulator`; entries are ``[time, key, desc]`` with
picklable descriptor tuples, so a shard can live in a forked worker
and its cross-shard traffic can ride a pipe.
"""

from __future__ import annotations

import hashlib
import heapq
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ShardActor",
    "ShardRuntime",
    "ShardSpec",
    "ShardStats",
    "shard_of",
    "make_addresses",
]

#: Event-key ranks: timers order before message deliveries at the same
#: instant (both are then ordered by actor address and per-actor seq).
_RANK_TIMER, _RANK_MESSAGE = 0, 1


def shard_of(address: str, num_shards: int) -> int:
    """Deterministic shard assignment for *address* (stable across
    processes and Python hash randomisation — crc32, the same idiom
    :func:`repro.searchengine.sharding.route_to_replica` uses)."""
    if num_shards <= 1:
        return 0
    return zlib.crc32(address.encode("utf-8")) % num_shards


def make_addresses(num_nodes: int) -> List[str]:
    """The canonical address universe of a sharded run."""
    return [f"n{index:06d}" for index in range(num_nodes)]


def _actor_seed(seed: int, address: str) -> int:
    """Stable per-actor RNG seed (sha256, not ``hash()`` — the latter
    is salted per process for strings)."""
    digest = hashlib.sha256(f"{seed}|{address}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _pair_unit(seed: int, src: str, dst: str, seq: int) -> float:
    """A unit float in ``[0, 1)`` that is a pure function of the link
    and the sender's send counter — the jitter source for message
    delays. crc32 is plenty for spreading simulated arrivals and is an
    order of magnitude cheaper than a cryptographic hash on the
    per-message hot path."""
    return (zlib.crc32(f"{seed}|{src}|{dst}|{seq}".encode("utf-8"))
            & 0xFFFFFFFF) / 4294967296.0


@dataclass(frozen=True)
class ShardSpec:
    """Immutable description of a sharded run (picklable: it is what a
    forked worker receives to rebuild its shard partition)."""

    num_nodes: int
    num_shards: int = 1
    seed: int = 0
    #: Minimum message delay == maximum barrier window. Cross-shard
    #: exchange happens every ``window`` simulated seconds.
    lookahead: float = 0.05
    #: Barrier window width; defaults to the lookahead (the widest
    #: window that is still conservative).
    window: Optional[float] = None
    #: Message delay is ``lookahead + unit * latency_jitter``.
    latency_jitter: float = 0.05
    #: Record the executed-event stream for the order digest (costs
    #: memory + barrier bandwidth; determinism gates turn it on, the
    #: throughput bench leaves it off).
    digest: bool = False
    #: Collect per-actor model stats at the end of the run.
    collect_node_stats: bool = False

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.lookahead <= 0:
            raise ValueError("lookahead must be > 0 (it is the minimum "
                             "message delay the barrier relies on)")
        if self.latency_jitter < 0:
            raise ValueError("latency_jitter must be >= 0")
        if self.window is not None and not 0 < self.window <= self.lookahead:
            raise ValueError(
                f"barrier window ({self.window}) must be in (0, lookahead="
                f"{self.lookahead}]: a wider window would let a message "
                f"arrive inside the window it was sent in, after its "
                f"arrival instant was already executed")

    @property
    def barrier_window(self) -> float:
        return self.window if self.window is not None else self.lookahead


@dataclass
class ShardStats:
    """Kernel-level counters of one shard (model stats live on the
    actors)."""

    shard_id: int = 0
    actors: int = 0
    events: int = 0
    messages_sent: int = 0
    cross_shard_messages: int = 0
    timers_set: int = 0
    dropped_to_departed: int = 0
    departed: int = 0

    def merge(self, other: "ShardStats") -> None:
        self.actors += other.actors
        self.events += other.events
        self.messages_sent += other.messages_sent
        self.cross_shard_messages += other.cross_shard_messages
        self.timers_set += other.timers_set
        self.dropped_to_departed += other.dropped_to_departed
        self.departed += other.departed


class ShardActor:
    """Base class for sharded-simulation nodes.

    Subclasses override :meth:`on_start`, :meth:`on_timer` and
    :meth:`on_message`; they talk to the world exclusively through
    :meth:`send`, :meth:`set_timer` and :meth:`depart`. Payloads must
    be picklable primitives (they may cross a process boundary).

    ``self.rng`` is a private, per-actor seeded ``random.Random`` —
    the only sanctioned randomness source for model decisions (a
    shared stream would be consumed in shard-layout-dependent order
    and break the byte-identity contract).
    """

    def __init__(self, address: str, config: Dict[str, Any],
                 rng: random.Random) -> None:
        self.address = address
        self.config = config
        self.rng = rng
        self.alive = True
        self._runtime: Optional["ShardRuntime"] = None
        self._timer_seq = 0
        self._msg_seq = 0

    # -- model hooks ---------------------------------------------------

    def on_start(self) -> None:
        """Called once at simulated time 0 (address order per shard)."""

    def on_timer(self, tag: str) -> None:
        """A timer set by :meth:`set_timer` fired."""

    def on_message(self, src: str, kind: str, payload: Any) -> None:
        """A message from *src* arrived."""

    def node_stats(self) -> Dict[str, Any]:
        """Per-node model counters (``collect_node_stats`` runs)."""
        return {}

    # -- world API -----------------------------------------------------

    def send(self, dst: str, kind: str, payload: Any = None) -> None:
        """Send a message; it arrives after ``lookahead + jitter``
        seconds (the delay is a pure function of the link and this
        actor's send counter)."""
        self._runtime._send(self, dst, kind, payload)

    def set_timer(self, delay: float, tag: str) -> None:
        """Fire :meth:`on_timer` with *tag* after *delay* seconds."""
        self._runtime._set_timer(self, delay, tag)

    def depart(self) -> None:
        """Leave the simulation (churn): pending deliveries and timers
        addressed to this actor are dropped from now on."""
        if self.alive:
            self.alive = False
            self._runtime.stats.departed += 1


class ShardRuntime:
    """One shard: its actors, its event heap, its outbox.

    Heap entries are ``[time, key, desc]`` plain lists; ``key`` is the
    deterministic ``(rank, actor, seq)`` tuple and ``desc`` one of::

        ("t", address, tag)                  # timer
        ("m", dst, src, kind, payload)       # message delivery

    Cross-shard descriptors travel as ``(dst_shard, time, key, desc)``
    tuples through :attr:`outbox` / :meth:`inject`.
    """

    def __init__(self, shard_id: int, spec: ShardSpec, actor_class,
                 actor_config: Optional[Dict[str, Any]] = None,
                 addresses: Optional[Sequence[str]] = None) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self.now = 0.0
        self.heap: List[list] = []
        self.outbox: List[Tuple[int, float, tuple, tuple]] = []
        self.stats = ShardStats(shard_id=shard_id)
        self.records: List[tuple] = []
        config = actor_config or {}
        universe = (list(addresses) if addresses is not None
                    else make_addresses(spec.num_nodes))
        self.actors: Dict[str, ShardActor] = {}
        for address in universe:
            if shard_of(address, spec.num_shards) != shard_id:
                continue
            actor = actor_class(
                address, config,
                random.Random(_actor_seed(spec.seed, address)))
            actor._runtime = self
            self.actors[address] = actor
        self.stats.actors = len(self.actors)
        for address in sorted(self.actors):
            self.actors[address].on_start()

    # -- scheduling (called from actors) -------------------------------

    def _set_timer(self, actor: ShardActor, delay: float, tag: str) -> None:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        actor._timer_seq += 1
        key = (_RANK_TIMER, actor.address, actor._timer_seq)
        heapq.heappush(self.heap,
                       [self.now + delay, key, ("t", actor.address, tag)])
        self.stats.timers_set += 1

    def _send(self, actor: ShardActor, dst: str, kind: str,
              payload: Any) -> None:
        spec = self.spec
        actor._msg_seq += 1
        seq = actor._msg_seq
        src = actor.address
        delay = spec.lookahead + spec.latency_jitter * _pair_unit(
            spec.seed, src, dst, seq)
        when = self.now + delay
        key = (_RANK_MESSAGE, src, seq)
        desc = ("m", dst, src, kind, payload)
        self.stats.messages_sent += 1
        dst_shard = shard_of(dst, spec.num_shards)
        if dst_shard == self.shard_id:
            heapq.heappush(self.heap, [when, key, desc])
        else:
            self.stats.cross_shard_messages += 1
            self.outbox.append((dst_shard, when, key, desc))

    # -- barrier protocol ---------------------------------------------

    def inject(self, events: Sequence[Tuple[int, float, tuple, tuple]]) -> None:
        """Accept cross-shard events routed to this shard at a barrier."""
        heap = self.heap
        for _dst_shard, when, key, desc in events:
            heapq.heappush(heap, [when, key, desc])

    def run_window(self, t_end: float) -> List[Tuple[int, float, tuple, tuple]]:
        """Execute every event with ``time < t_end`` in ``(time, key)``
        order, advance the clock to *t_end*, and return (and clear)
        the outbox of cross-shard messages sent along the way."""
        heap = self.heap
        spec = self.spec
        record = self.records.append if spec.digest else None
        while heap and heap[0][0] < t_end:
            entry = heapq.heappop(heap)
            self.now = entry[0]
            desc = entry[2]
            self.stats.events += 1
            if record is not None:
                key = entry[1]
                record((entry[0], key[0], key[1], key[2], desc[0]))
            if desc[0] == "m":
                actor = self.actors[desc[1]]
                if not actor.alive:
                    self.stats.dropped_to_departed += 1
                    continue
                actor.on_message(desc[2], desc[3], desc[4])
            else:
                actor = self.actors[desc[1]]
                if not actor.alive:
                    self.stats.dropped_to_departed += 1
                    continue
                actor.on_timer(desc[2])
        self.now = t_end
        outbox, self.outbox = self.outbox, []
        return outbox

    def take_records(self) -> List[tuple]:
        """Drain this window's executed-event records, sorted by
        ``(time, key)``.

        Execution order may locally diverge from key order when a
        handler schedules a same-instant event with a smaller key than
        the one being executed; sorting restores the canonical merged
        order the digest is defined over (state evolution is
        unaffected — same-instant events never cross actors, because
        every message delay is at least the lookahead).
        """
        records, self.records = self.records, []
        records.sort()
        return records

    def node_stats(self) -> Dict[str, Dict[str, Any]]:
        return {address: actor.node_stats()
                for address, actor in self.actors.items()}
