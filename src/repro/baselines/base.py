"""Common interface of the analytic baseline pipelines.

An analytic system answers two questions per user query:

1. :meth:`PrivateSearchSystem.protect` — what does the search engine
   *observe*? A list of :class:`EngineObservation`: the network
   identity each message arrives from, its text (possibly an
   OR-aggregated group), and ground-truth annotations used only by the
   metrics.
2. :meth:`PrivateSearchSystem.results_for` — what does the *user* get
   back after the system's response handling (forwarding, filtering,
   merging)? A ranked list of result URLs, compared against the
   unprotected engine answer by the accuracy metrics (Fig 6).

Each system also declares its :class:`AttackSurface` — which SimAttack
variant applies (§VIII-A evaluates each system against the attack that
matches its protection model) — and its Table I property row.
"""

from __future__ import annotations

import abc
import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.searchengine.engine import OR_SEPARATOR, SearchEngine
from repro.text.tokenize import tokenize


class AttackSurface(enum.Enum):
    """Which re-identification game the adversary plays (§VII-E)."""

    #: Engine knows the user; no fakes (Direct) or fakes under the same
    #: identity (TrackMeNot): attacker separates real from fake.
    IDENTIFIED = "identified"
    #: Engine knows the user; one OR-group per query (GooPIR): attacker
    #: picks the real sub-query out of the group.
    GROUP_IDENTIFIED = "group_identified"
    #: Anonymous OR-group (PEAS, X-Search): attacker must pick the real
    #: sub-query *and* the originating user.
    GROUP_ANONYMOUS = "group_anonymous"
    #: Individually delivered anonymous queries (TOR, CYCLOSA):
    #: attacker attributes every arriving query to a user profile.
    ANONYMOUS_SINGLE = "anonymous_single"


@dataclass(frozen=True)
class EngineObservation:
    """One message as the engine sees it, plus evaluation ground truth."""

    identity: str
    text: str
    #: Ground truth (never read by attack code): the user whose real
    #: query this observation protects.
    true_user: str
    is_fake: bool = False
    #: For OR-groups: index of the real sub-query within ``text``.
    real_index: Optional[int] = None
    group_id: Optional[int] = None

    def subqueries(self) -> List[str]:
        """Split an OR-aggregated observation into its sub-queries."""
        if OR_SEPARATOR in self.text:
            return self.text.split(OR_SEPARATOR)
        return [self.text]


class PrivateSearchSystem(abc.ABC):
    """Base class of the analytic pipelines."""

    #: Display name, matching the paper's figures.
    name: str = "abstract"
    #: Which attack variant evaluates this system.
    attack_surface: AttackSurface = AttackSurface.IDENTIFIED
    #: Table I row: the properties the system is designed to provide.
    properties: Dict[str, bool] = {
        "unlinkability": False,
        "indistinguishability": False,
        "accuracy": False,
        "scalability": False,
    }

    def __init__(self) -> None:
        self._group_ids = itertools.count(1)

    @abc.abstractmethod
    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        """Process one user query; return the engine-side observations."""

    def results_for(self, engine: SearchEngine, query: str,
                    observations: List[EngineObservation]) -> List[str]:
        """URLs shown to the user. Default: the real query is served
        unmodified on its own (perfect accuracy systems)."""
        return [hit.url for hit in engine.search(query)]

    def next_group_id(self) -> int:
        return next(self._group_ids)


def or_aggregate(real_query: str, fakes: List[str], rng) -> "tuple[str, int]":
    """Build ``f1 OR .. OR q OR .. OR fk`` with the real query at a
    random position; returns (text, real_index)."""
    parts = list(fakes)
    index = rng.randrange(len(parts) + 1)
    parts.insert(index, real_query)
    return OR_SEPARATOR.join(parts), index


def filter_by_query_terms(query: str, hits: List[dict]) -> List[str]:
    """Client/proxy-side response filtering for OR systems (§II-A3):
    keep results whose visible text (title + snippet) contains at least
    one term of the original query; return their URLs in rank order."""
    query_terms = set(tokenize(query))
    kept = []
    for hit in hits:
        visible_terms = set(hit.get("title", ())) | set(hit.get("snippet", ()))
        if query_terms & visible_terms:
            kept.append(hit["url"])
    return kept


def hits_as_dicts(engine: SearchEngine, query: str) -> List[dict]:
    """Run *query* and package hits like the network engine node does."""
    return [
        {
            "doc_id": hit.doc_id,
            "url": hit.url,
            "score": hit.score,
            "title": list(engine.document(hit.doc_id).title_terms),
            "snippet": list(hit.snippet_terms),
        }
        for hit in engine.search(query)
    ]
