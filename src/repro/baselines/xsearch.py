"""X-Search: SGX proxy with past-query fakes (§II-A2, Fig 2d).

A single SGX-protected proxy receives encrypted client queries, keeps a
table of past queries inside its enclave, aggregates each real query
with ``k`` fakes drawn from that table, queries the engine, filters the
merged response, and returns it. Compared to PEAS: fakes are verbatim
real past queries (better indistinguishability), but it remains a
centralized choke point with one engine-facing identity — the Fig 8c/8d
scalability comparisons and the Fig 6 accuracy loss both stem from the
group aggregation at the proxy.

The network version (:class:`XSearchProxyNode` + :class:`XSearchClientNode`)
runs the proxy logic inside a simulated enclave for the latency and
throughput experiments.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
    filter_by_query_terms,
    hits_as_dicts,
    or_aggregate,
)
from repro.core.fake_queries import PastQueryTable
from repro.net.transport import Network, NetNode, RequestContext
from repro.net.tls import SecureChannelManager, SgxAuthenticator, SignatureAuthenticator
from repro.searchengine.engine import SearchEngine
from repro.sgx.enclave import Enclave, EnclaveHost, ecall


class XSearch(PrivateSearchSystem):
    """Analytic X-Search: group obfuscation at a central SGX proxy."""

    name = "X-Search"
    attack_surface = AttackSurface.GROUP_ANONYMOUS
    properties = {
        "unlinkability": True,
        "indistinguishability": True,
        "accuracy": False,
        "scalability": False,
    }

    PROXY_IDENTITY = "xsearch-proxy"

    def __init__(self, k: int = 3, table_capacity: int = 5000,
                 seed: int = 0) -> None:
        super().__init__()
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self._rng = random.Random(seed)
        self.table = PastQueryTable(capacity=table_capacity)

    def prime(self, past_queries: List[str]) -> None:
        """Pre-fill the proxy's past-query table."""
        self.table.extend(past_queries)

    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        fakes = self.table.sample(self.k, self._rng, exclude=query)
        self.table.add(query)
        text, real_index = or_aggregate(query, fakes, self._rng)
        return [EngineObservation(
            identity=self.PROXY_IDENTITY, text=text, true_user=user_id,
            real_index=real_index, group_id=self.next_group_id())]

    def results_for(self, engine: SearchEngine, query: str,
                    observations: List[EngineObservation]) -> List[str]:
        """The *proxy* filters the merged response before returning it
        (X-Search filters proxy-side, §II-A3)."""
        hits = hits_as_dicts(engine, observations[0].text)
        return filter_by_query_terms(query, hits)


# ---------------------------------------------------------------------------
# Network version (Figs 8a, 8c, 8d)
# ---------------------------------------------------------------------------


class XSearchEnclave(Enclave):
    """The proxy's trusted code: past-query table + obfuscation."""

    ENCLAVE_VERSION = "1.0"
    BASE_FOOTPRINT_BYTES = 2_000_000

    def __init__(self, host, enclave_id, rng,
                 table_capacity: int = 5000, k: int = 3) -> None:
        super().__init__(host, enclave_id, rng)
        self._rng = rng
        self.k = k
        self._depth += 1
        try:
            self.trusted["table"] = PastQueryTable(capacity=table_capacity)
            self.trusted["client_channels"] = {}
        finally:
            self._depth -= 1

    @ecall
    def install_client_channel(self, peer: str, channel) -> None:
        self.trusted["client_channels"][peer] = channel

    @ecall
    def obfuscate(self, src: str, sealed: bytes):
        """Decrypt a client query, build the OR group. Returns
        ``(query, group_text)`` — the group leaves the enclave only as
        the engine request."""
        channel = self.trusted["client_channels"].get(src)
        if channel is None:
            return None
        from repro.net.tls import TlsError

        try:
            record = channel.open(sealed)
        except TlsError:
            return None
        self.charge_crypto(len(sealed), operations=1)
        table: PastQueryTable = self.trusted["table"]
        query = record["query"]
        fakes = table.sample(self.k, self._rng, exclude=query)
        table.add(query)
        group_text, real_index = or_aggregate(query, fakes, self._rng)
        # Building and hashing the OR group costs one pass over it.
        self.charge_crypto(len(group_text), operations=1)
        return {
            "query": query,
            "meta": record.get("meta") or {},
            "group": group_text,
            "real_index": real_index,
        }

    @ecall
    def filter_and_wrap(self, src: str, query: str, hits: List[dict]):
        """Proxy-side filtering of the merged response, then re-seal for
        the client."""
        channel = self.trusted["client_channels"].get(src)
        if channel is None:
            return None
        urls = filter_by_query_terms(query, hits)
        kept = [hit for hit in hits if hit["url"] in set(urls)]
        sealed = channel.seal({"status": "ok", "hits": kept}, rng=self._rng)
        # Filtering scans the merged result page; the response is the
        # largest object the proxy seals — both make X-Search's service
        # time ~40 % above CYCLOSA's relay path (Fig 8c).
        self.charge_crypto(len(sealed) + 150 * max(1, len(hits)),
                           operations=2)
        return sealed


class XSearchProxyNode(NetNode):
    """The centralized X-Search proxy as a network service."""

    def __init__(self, network: Network, rng, engine_address: str,
                 ias, policy, address: str = "xsearch-proxy",
                 k: int = 3) -> None:
        super().__init__(network, address)
        self.rng = rng
        self.engine_address = engine_address
        self.host = EnclaveHost(rng)
        self.enclave: XSearchEnclave = self.host.create_enclave(
            XSearchEnclave, k=k)
        ias.provision_host(self.host)
        # The proxy proves with an SGX quote; clients have no enclave,
        # so their inbound credential is a plain signature.
        authenticator = _AsymmetricAuthenticator(
            prover=SgxAuthenticator(self.enclave, self.host, ias, policy),
            accept_schemes=("rsa-sig",))
        self.tls = SecureChannelManager(
            self, authenticator, rng, kind="xtls",
            on_established=lambda ch: self.enclave.install_client_channel(
                ch.peer, ch))
        self.queries_proxied = 0

    def prime(self, past_queries: List[str]) -> None:
        table = self.enclave._trusted["table"]  # test/bootstrap shortcut
        table.extend(past_queries)

    def handle_request(self, ctx: RequestContext) -> None:
        if self.tls.handle_handshake(ctx):
            return
        if ctx.request.kind != "xsearch.req":
            return
        payload = ctx.request.payload
        if not isinstance(payload, (bytes, bytearray)):
            return
        obfuscated = self.enclave.obfuscate(ctx.request.src, bytes(payload))
        if obfuscated is None:
            return
        self.queries_proxied += 1
        cost = self.host.meter.take()
        meta = dict(obfuscated["meta"])
        meta["group_id"] = self.queries_proxied
        meta["real_index"] = obfuscated["real_index"]

        def forward() -> None:
            self.request(
                self.engine_address,
                {"query": obfuscated["group"], "meta": meta},
                on_reply=lambda response: self._on_engine_reply(
                    ctx, obfuscated["query"], response),
                timeout=120.0, kind="search")

        self.network.simulator.post(cost, forward)

    def _on_engine_reply(self, ctx: RequestContext, query: str,
                         response: Any) -> None:
        hits = response.get("hits", []) if isinstance(response, dict) else []
        sealed = self.enclave.filter_and_wrap(ctx.request.src, query, hits)
        if sealed is None:
            return
        cost = self.host.meter.take()
        self.network.simulator.post(
            cost, lambda: ctx.respond(sealed, size_bytes=len(sealed)))


class XSearchClientNode(NetNode):
    """A user of the X-Search proxy."""

    def __init__(self, network: Network, address: str, rng,
                 proxy: XSearchProxyNode, ias, policy) -> None:
        super().__init__(network, address)
        from repro.crypto.keys import IdentityKeyPair

        self.rng = rng
        self.proxy = proxy
        # Clients prove with a plain signature and insist the proxy
        # presents a valid SGX quote for a known measurement.
        identity = IdentityKeyPair.generate(bits=512, rng=rng)
        authenticator = _AsymmetricAuthenticator(
            prover=SignatureAuthenticator(identity),
            accept_schemes=("sgx-quote",),
            sgx_verifier=SgxAuthenticator(None, None, ias, policy))
        self.tls = SecureChannelManager(self, authenticator, rng, kind="xtls")

    def connect(self, on_ready: Callable[[], None]) -> None:
        self.tls.establish(self.proxy.address,
                           on_ready=lambda ch: on_ready())

    def search(self, query: str,
               on_result: Callable[[Dict[str, Any]], None]) -> None:
        channel = self.tls.channel(self.proxy.address)
        if channel is None:
            self.connect(lambda: self.search(query, on_result))
            return
        issued_at = self.network.simulator.now
        sealed = channel.seal(
            {"query": query, "meta": {"true_user": self.address}},
            rng=self.rng)

        def on_reply(response: Any) -> None:
            if not isinstance(response, (bytes, bytearray)):
                return
            record = channel.open(bytes(response))
            on_result({
                "query": query,
                "status": record.get("status", "ok"),
                "hits": record.get("hits", []),
                "latency": self.network.simulator.now - issued_at,
                "k": self.proxy.enclave.k,
            })

        self.request(self.proxy.address, sealed, on_reply,
                     timeout=120.0, kind="xsearch", size_bytes=len(sealed))


class _AsymmetricAuthenticator:
    """One-sided attestation for the X-Search handshake.

    The proxy proves with an SGX quote but accepts signature clients;
    clients prove with a signature but demand a quote from the proxy.
    """

    def __init__(self, prover, accept_schemes, sgx_verifier=None) -> None:
        self._prover = prover
        self._accept = tuple(accept_schemes)
        self._sgx_verifier = sgx_verifier

    def prove(self, context: bytes) -> dict:
        return self._prover.prove(context)

    def verify(self, credential: dict, context: bytes) -> bool:
        scheme = credential.get("scheme")
        if scheme not in self._accept:
            return False
        if scheme == "sgx-quote":
            return self._sgx_verifier.verify(credential, context)
        # Plain signatures: accept any well-formed client key (the
        # proxy serves the public).
        from repro.crypto.rsa import RsaPublicKey

        public = RsaPublicKey(n=credential["n"], e=credential["e"])
        return public.verify(context, credential["signature"])
