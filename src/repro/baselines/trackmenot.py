"""TrackMeNot: periodic RSS-feed fake queries (§II-A2, Fig 2a).

The browser extension sends fake queries *under the user's own
identity*; over time the engine-side profile mixes real and fake
interests. Two weaknesses the paper measures:

- no unlinkability: the engine still knows exactly who queries;
- fakes come from RSS feeds, whose vocabulary rarely matches the
  user's actual interests — SimAttack separates real from fake easily
  (≈45 % of real queries retrieved, Fig 5).

The RSS feed is synthesised from headline-ish combinations of *seed*
terms of the neutral topics plus news glue words — deliberately a
different distribution from any user's personal Zipf preferences.
"""

from __future__ import annotations

import random
from typing import List

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
)
from repro.datasets.vocabulary import NEUTRAL_TOPICS, build_topic_vocabularies

_HEADLINE_GLUE = [
    "breaking", "report", "update", "announces", "latest", "today",
    "exclusive", "analysis", "reveals", "statement",
]


class RssFeedSource:
    """A stream of headline-derived fake queries."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        vocabularies = build_topic_vocabularies()
        self._seed_terms: List[str] = []
        for topic in NEUTRAL_TOPICS:
            self._seed_terms.extend(vocabularies[topic].seeds)

    def next_fake(self) -> str:
        length = self._rng.choice([2, 2, 3])
        terms = self._rng.sample(self._seed_terms, length)
        if self._rng.random() < 0.5:
            terms.insert(self._rng.randrange(len(terms) + 1),
                         self._rng.choice(_HEADLINE_GLUE))
        return " ".join(terms)


class TrackMeNot(PrivateSearchSystem):
    """Fake queries under the user's own identity.

    *fakes_per_query* models the extension's background query rate
    relative to the user's real search rate (TMN defaults to one fake
    every few minutes; ≈3 fakes per real query at typical usage).
    """

    name = "TrackMeNot"
    attack_surface = AttackSurface.IDENTIFIED
    properties = {
        "unlinkability": False,
        "indistinguishability": True,
        "accuracy": True,
        "scalability": True,
    }

    def __init__(self, fakes_per_query: int = 3, seed: int = 0) -> None:
        super().__init__()
        if fakes_per_query < 0:
            raise ValueError("fakes_per_query must be >= 0")
        self.fakes_per_query = fakes_per_query
        self._feed = RssFeedSource(seed=seed)

    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        observations = [EngineObservation(
            identity=user_id, text=query, true_user=user_id)]
        for _ in range(self.fakes_per_query):
            observations.append(EngineObservation(
                identity=user_id, text=self._feed.next_fake(),
                true_user=user_id, is_fake=True))
        return observations


# ---------------------------------------------------------------------------
# Network version: the periodic background extension
# ---------------------------------------------------------------------------


class TrackMeNotClientNode:
    """The extension as it actually behaves: a timer, not a per-query
    hook. Real queries go out when the user searches; fake queries go
    out on a Poisson clock regardless — which is why an attacker with
    timing can already correlate bursts of genuine activity.
    """

    def __init__(self, network, address: str, rng, engine_address: str,
                 fake_interval: float = 40.0, seed: int = 0) -> None:
        from repro.net.transport import NetNode

        class _Client(NetNode):
            def __init__(inner_self) -> None:
                super().__init__(network, address)

        self.node = _Client()
        self.address = address
        self.rng = rng
        self.engine_address = engine_address
        self.fake_interval = fake_interval
        self._feed = RssFeedSource(seed=seed)
        self.fakes_sent = 0
        self._running = False

    def start(self) -> None:
        """Start the background fake-query clock."""
        if self._running:
            return
        self._running = True
        self._schedule_fake()

    def stop(self) -> None:
        self._running = False

    def _schedule_fake(self) -> None:
        delay = self.rng.expovariate(1.0 / self.fake_interval)
        self.node.network.simulator.post(delay, self._send_fake)

    def _send_fake(self) -> None:
        if not self._running:
            return
        self.node.request(
            self.engine_address,
            {"query": self._feed.next_fake(),
             "meta": {"true_user": self.address, "is_fake": True}},
            on_reply=lambda response: None,  # fake responses are ignored
            timeout=60.0, kind="search")
        self.fakes_sent += 1
        self._schedule_fake()

    def search(self, query: str, on_result) -> None:
        """A real user search: direct to the engine, full accuracy."""
        issued_at = self.node.network.simulator.now

        def on_reply(response) -> None:
            on_result({
                "query": query,
                "status": response.get("status", "ok"),
                "hits": response.get("hits", []),
                "latency": self.node.network.simulator.now - issued_at,
                "k": 0,
            })

        self.node.request(
            self.engine_address,
            {"query": query, "meta": {"true_user": self.address}},
            on_reply, timeout=60.0, kind="search")
