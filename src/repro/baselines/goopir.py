"""GooPIR: OR-aggregation with dictionary fakes (§II-A2, Fig 2b).

Each real query is merged with ``k`` fake queries using the logical OR
operator and sent under the user's own identity. Fakes are drawn from a
keyword dictionary with frequencies similar to the real query's terms
(the h(k)-PIR construction of Domingo-Ferrer et al.).

Measured weaknesses (Figs 5 and 6): the engine knows the user, the
dictionary fakes are distributed differently from the user's real
interests (attacker picks the real sub-query ≈50 % of the time at
k = 7... trivially ≥ 1/(k+1) by chance), and the OR response mixes all
sub-queries' results — client-side filtering recovers the real answer
only imperfectly.
"""

from __future__ import annotations

import random
from typing import List

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
    filter_by_query_terms,
    hits_as_dicts,
    or_aggregate,
)
from repro.datasets.vocabulary import ALL_TOPICS, GENERAL_TERMS, build_topic_vocabularies
from repro.searchengine.engine import SearchEngine
from repro.text.tokenize import tokenize


class GooPir(PrivateSearchSystem):
    """OR-aggregated dictionary fakes under the user's identity."""

    name = "GooPIR"
    attack_surface = AttackSurface.GROUP_IDENTIFIED
    properties = {
        "unlinkability": False,
        "indistinguishability": True,
        "accuracy": False,
        "scalability": True,
    }

    def __init__(self, k: int = 3, seed: int = 0) -> None:
        super().__init__()
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self._rng = random.Random(seed)
        vocabularies = build_topic_vocabularies()
        # GooPIR's h(k) construction matches fake terms to the real
        # terms' frequency band. Per-topic pools keep each fake
        # *topically coherent* (frequency-matched words co-occur within
        # a domain), which is what makes them non-trivial to dismiss.
        self._topic_pools: List[List[str]] = [
            list(vocabularies[topic].terms) for topic in ALL_TOPICS
        ]

    def _fake_like(self, query: str) -> str:
        """A coherent fake with the same number of terms as the query."""
        width = max(1, len(tokenize(query, drop_stopwords=False)))
        pool = self._rng.choice(self._topic_pools)
        # Bias towards the head of the vocabulary (frequent words),
        # like the frequency-matching dictionary of the original.
        picks = []
        for _ in range(width):
            if self._rng.random() < 0.3:
                # Frequency matching pulls in the high-frequency glue
                # words real queries carry ("best", "free", ...) —
                # these overlap every profile a little, which is what
                # lets a fake occasionally outscore a weakly-linkable
                # real query.
                picks.append(self._rng.choice(GENERAL_TERMS))
                continue
            index = min(int(self._rng.expovariate(1.0 / 30.0)),
                        len(pool) - 1)
            picks.append(pool[index])
        return " ".join(picks)

    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        fakes = [self._fake_like(query) for _ in range(self.k)]
        text, real_index = or_aggregate(query, fakes, self._rng)
        return [EngineObservation(
            identity=user_id, text=text, true_user=user_id,
            real_index=real_index, group_id=self.next_group_id())]

    def results_for(self, engine: SearchEngine, query: str,
                    observations: List[EngineObservation]) -> List[str]:
        """The engine answers the OR group; the client filters by the
        original query's keywords (§II-A3)."""
        group_text = observations[0].text
        hits = hits_as_dicts(engine, group_text)
        return filter_by_query_terms(query, hits)


# ---------------------------------------------------------------------------
# Network version: client-side OR aggregation
# ---------------------------------------------------------------------------


class GooPirClientNode:
    """GooPIR as a network client: builds the OR group locally, sends
    it to the engine under its *own* identity, filters the merged
    response locally. No infrastructure at all — which is both its
    scalability strength and its privacy ceiling."""

    def __init__(self, network, address: str, rng, engine_address: str,
                 k: int = 3, seed: int = 0) -> None:
        from repro.net.transport import NetNode

        class _Client(NetNode):
            def __init__(inner_self) -> None:
                super().__init__(network, address)

        self.node = _Client()
        self.address = address
        self.engine_address = engine_address
        self._system = GooPir(k=k, seed=seed)

    def search(self, query: str, on_result) -> None:
        issued_at = self.node.network.simulator.now
        observation = self._system.protect(self.address, query)[0]

        def on_reply(response) -> None:
            hits = response.get("hits", [])
            urls = set(filter_by_query_terms(query, hits))
            on_result({
                "query": query,
                "status": response.get("status", "ok"),
                "hits": [hit for hit in hits if hit["url"] in urls],
                "latency": self.node.network.simulator.now - issued_at,
                "k": self._system.k,
            })

        self.node.request(
            self.engine_address,
            {"query": observation.text,
             "meta": {"true_user": self.address,
                      "group_id": observation.group_id,
                      "real_index": observation.real_index}},
            on_reply, timeout=120.0, kind="search")
