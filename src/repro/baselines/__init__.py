"""State-of-the-art private web-search baselines (§II, §VII-A).

Every system the paper compares against, implemented both as an
*analytic* pipeline (what reaches the engine, what the user gets back —
used by the privacy and accuracy experiments, Figs 5-7) and — where the
paper measures systems behaviour — as full network nodes over the
simulator (Figs 8a-8d):

- :mod:`repro.baselines.direct`     — no protection; the engine sees
  (user, query) directly.
- :mod:`repro.baselines.tor`        — onion routing: unlinkability
  only. The network version builds real 3-relay circuits with layered
  RSA-hybrid encryption over heavy-tailed relay links.
- :mod:`repro.baselines.trackmenot` — browser extension sending
  RSS-feed fake queries under the user's own identity.
- :mod:`repro.baselines.goopir`     — OR-aggregation of the real query
  with k dictionary-drawn fakes, client-side filtering.
- :mod:`repro.baselines.peas`       — proxy + issuer: unlinkability via
  the non-colluding pair, fakes from a co-occurrence matrix of other
  users' past queries, OR-aggregation.
- :mod:`repro.baselines.xsearch`    — SGX proxy: unlinkability via the
  proxy, fakes from the proxy's past-query table, group obfuscation.
- :mod:`repro.baselines.cyclosa_analytic` — CYCLOSA's protection logic
  in analytic form (adaptive k, past-query fakes, per-query relays),
  statistically identical to the full stack and fast enough for the
  30 k-query privacy runs.
"""

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
)
from repro.baselines.cyclosa_analytic import CyclosaAnalytic
from repro.baselines.direct import DirectSearch
from repro.baselines.goopir import GooPir
from repro.baselines.peas import Peas
from repro.baselines.tor import TorSearch
from repro.baselines.trackmenot import TrackMeNot
from repro.baselines.xsearch import XSearch

__all__ = [
    "AttackSurface",
    "EngineObservation",
    "PrivateSearchSystem",
    "CyclosaAnalytic",
    "DirectSearch",
    "GooPir",
    "Peas",
    "TorSearch",
    "TrackMeNot",
    "XSearch",
]
