"""No protection: the user queries the engine directly.

The engine sees (user identity, query) for every query. This is the
protection-free scenario of §VII-A, and also the accuracy reference
(``Ror`` in the Fig 6 metrics is by definition the direct answer).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
)
from repro.net.transport import Network, NetNode


class DirectSearch(PrivateSearchSystem):
    """Query the engine with no intermediary and no fakes."""

    name = "Direct"
    attack_surface = AttackSurface.IDENTIFIED
    properties = {
        "unlinkability": False,
        "indistinguishability": False,
        "accuracy": True,
        "scalability": True,
    }

    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        return [EngineObservation(
            identity=user_id, text=query, true_user=user_id)]


class DirectClientNode(NetNode):
    """Network version for the latency baseline of Fig 8a: one plain
    request to the engine, no intermediaries, no crypto."""

    def __init__(self, network: Network, address: str,
                 engine_address: str) -> None:
        super().__init__(network, address)
        self.engine_address = engine_address

    def search(self, query: str,
               on_result: Callable[[Dict[str, Any]], None]) -> None:
        issued_at = self.network.simulator.now

        def on_reply(response: Any) -> None:
            on_result({
                "query": query,
                "status": response.get("status", "ok"),
                "hits": response.get("hits", []),
                "latency": self.network.simulator.now - issued_at,
                "k": 0,
            })

        self.request(self.engine_address,
                     {"query": query, "meta": {"true_user": self.address}},
                     on_reply, timeout=120.0, kind="search")
