"""TOR: unlinkability through onion routing (§II-A1, Fig 1).

Two implementations:

- :class:`TorSearch` — the analytic pipeline: the engine observes each
  query from a random exit node's identity. No fakes, perfect
  accuracy. SimAttack attributes anonymous queries to user profiles;
  the paper measures ≈36 % success (and notes the same number applies
  to PEAS/X-Search/CYCLOSA at k = 0).
- :class:`TorNetwork` — the systems version for the latency CDF of
  Fig 8a: real 3-relay circuits. The client wraps the query in three
  layers of RSA-hybrid encryption (:mod:`repro.crypto.rsa`); each relay
  peels one layer and forwards; the exit contacts the engine; the
  response is sealed hop-by-hop on the way back. Relay links use the
  heavy-tailed latency model — the multi-second medians and minute
  tails the paper measures for full search round-trips over TOR.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
)
from repro.crypto.aead import AeadKey, open_ as aead_open, seal as aead_seal
from repro.crypto.keys import IdentityKeyPair
from repro.net.latency import HeavyTailLatency, LatencyModel
from repro.net.transport import Network, NetNode, RequestContext


class TorSearch(PrivateSearchSystem):
    """Analytic TOR: anonymous identity, no obfuscation."""

    name = "TOR"
    attack_surface = AttackSurface.ANONYMOUS_SINGLE
    properties = {
        "unlinkability": True,
        "indistinguishability": False,
        "accuracy": True,
        "scalability": True,
    }

    def __init__(self, num_exit_nodes: int = 50, seed: int = 0) -> None:
        super().__init__()
        if num_exit_nodes < 1:
            raise ValueError("need at least one exit node")
        self._rng = random.Random(seed)
        self._exits = [f"tor-exit-{i:03d}" for i in range(num_exit_nodes)]

    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        exit_node = self._rng.choice(self._exits)
        return [EngineObservation(
            identity=exit_node, text=query, true_user=user_id)]


# ---------------------------------------------------------------------------
# Network version (Fig 8a)
# ---------------------------------------------------------------------------

#: Per-hop circuit latency. TOR circuits interleave many overlay hops
#: and congested volunteer relays; the model's median/tail are
#: calibrated so a full query → results round trip lands near the
#: paper's measured 62.28 s median.
DEFAULT_RELAY_LATENCY = HeavyTailLatency(
    median=4.6, sigma=0.55, tail_prob=0.10, tail_scale=18.0, tail_alpha=1.7)


class TorRelayNode(NetNode):
    """One onion router: peels a layer, forwards, seals the way back."""

    def __init__(self, network: Network, address: str, rng) -> None:
        super().__init__(network, address)
        self.rng = rng
        self.identity = IdentityKeyPair.generate(bits=512, rng=rng)

    def handle_request(self, ctx: RequestContext) -> None:
        if ctx.request.kind != "onion.req":
            return
        try:
            layer = self.identity.rsa.decrypt(bytes(ctx.request.payload))
        except Exception:
            return  # malformed onion: drop
        from repro.net import wire

        inner = wire.decode(layer)
        backward_key = AeadKey(inner["backward_key"])

        if inner["type"] == "forward":
            # Middle of the circuit: pass the inner onion on.
            def on_reply(response: Any) -> None:
                if isinstance(response, (bytes, bytearray)):
                    ctx.respond(aead_seal(backward_key, bytes(response),
                                          rng=self.rng))

            self.request(inner["next"], inner["onion"], on_reply,
                         timeout=600.0, kind="onion",
                         size_bytes=len(inner["onion"]))
        elif inner["type"] == "exit":
            # Exit node: talk to the engine on the client's behalf.
            def on_engine_reply(response: Any) -> None:
                payload = wire.encode(response)
                ctx.respond(aead_seal(backward_key, payload, rng=self.rng))

            self.request(inner["engine"],
                         {"query": inner["query"], "meta": inner.get("meta") or {}},
                         on_engine_reply, timeout=600.0, kind="search")


class TorClientNode(NetNode):
    """A client that builds 3-relay circuits and onion-wraps queries."""

    def __init__(self, network: Network, address: str, rng,
                 relays: List[TorRelayNode], engine_address: str,
                 circuit_length: int = 3) -> None:
        super().__init__(network, address)
        if circuit_length < 1:
            raise ValueError("circuit length must be >= 1")
        if len(relays) < circuit_length:
            raise ValueError("not enough relays for the circuit length")
        self.rng = rng
        self.relays = relays
        self.engine_address = engine_address
        self.circuit_length = circuit_length

    def search(self, query: str,
               on_result: Callable[[Dict[str, Any]], None]) -> None:
        """Send *query* through a fresh random circuit."""
        from repro.net import wire

        issued_at = self.network.simulator.now
        circuit = self.rng.sample(self.relays, self.circuit_length)
        backward_keys = [AeadKey.generate(self.rng) for _ in circuit]

        # Innermost layer: the exit instruction.
        layer = wire.encode({
            "type": "exit",
            "engine": self.engine_address,
            "query": query,
            "meta": {"true_user": self.address},
            "backward_key": backward_keys[-1].key,
        })
        onion = circuit[-1].identity.public.encrypt(layer, rng=self.rng)
        # Wrap outward: each layer tells relay i to forward to relay i+1.
        for position in range(len(circuit) - 2, -1, -1):
            layer = wire.encode({
                "type": "forward",
                "next": circuit[position + 1].address,
                "onion": onion,
                "backward_key": backward_keys[position].key,
            })
            onion = circuit[position].identity.public.encrypt(
                layer, rng=self.rng)

        def on_reply(response: Any) -> None:
            payload = bytes(response)
            # Peel the backward onion: guard layers first.
            for key in backward_keys:
                payload = aead_open(key, payload)
            engine_response = wire.decode(payload)
            on_result({
                "query": query,
                "status": engine_response.get("status", "ok"),
                "hits": engine_response.get("hits", []),
                "latency": self.network.simulator.now - issued_at,
                "k": 0,
            })

        self.request(circuit[0].address, onion, on_reply,
                     timeout=1200.0, kind="onion", size_bytes=len(onion))


def build_tor_network(network: Network, rng, engine_address: str,
                      num_relays: int = 9,
                      relay_latency: Optional[LatencyModel] = None
                      ) -> List[TorRelayNode]:
    """Create relay nodes and install heavy-tailed circuit-hop latency
    on every link touching them."""
    latency = relay_latency or DEFAULT_RELAY_LATENCY
    relays = []
    for index in range(num_relays):
        relay = TorRelayNode(network, f"tor-relay-{index:03d}", rng)
        network.set_node_latency(relay.address, latency)
        relays.append(relay)
    return relays
