"""CYCLOSA's protection pipeline in analytic form.

The privacy and accuracy experiments (Figs 5-7) process tens of
thousands of test queries; running the full enclave + network stack for
each would dominate runtime without changing what the engine observes.
This class reproduces, exactly, the *observable* behaviour of the full
stack (verified against it by an equivalence test):

- adaptive ``k`` from the same :class:`~repro.core.sensitivity` code;
- fakes drawn from a past-queries table fed by the queries the system
  itself has carried (bootstrap-seeded from trends), as relays' tables
  are in the full stack;
- the real query and each fake emitted as *individual* observations,
  each from a distinct random relay identity;
- perfect result accuracy: the real query is answered alone, fakes'
  responses are dropped.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
)
from repro.core.adaptive import choose_k
from repro.core.fake_queries import PastQueryTable
from repro.core.sensitivity import (
    LinkabilityAssessor,
    SemanticAssessor,
    SensitivityAnalysis,
)
from repro.datasets.trends import trending_queries


class CyclosaAnalytic(PrivateSearchSystem):
    """Adaptive, decentralized protection — analytic pipeline."""

    name = "CYCLOSA"
    attack_surface = AttackSurface.ANONYMOUS_SINGLE
    properties = {
        "unlinkability": True,
        "indistinguishability": True,
        "accuracy": True,
        "scalability": True,
    }

    def __init__(self, semantic: SemanticAssessor,
                 kmax: int = 7, num_relays: int = 198,
                 table_capacity: int = 20000,
                 adaptive: bool = True,
                 seed: int = 0) -> None:
        super().__init__()
        if kmax < 0:
            raise ValueError("kmax must be >= 0")
        self.kmax = kmax
        self.adaptive = adaptive
        self._rng = random.Random(seed)
        self._semantic = semantic
        self._relays = [f"cyclosa-node-{i:03d}" for i in range(num_relays)]
        self.table = PastQueryTable(capacity=table_capacity)
        self.table.extend(trending_queries(50, seed=seed))
        self._linkability: Dict[str, LinkabilityAssessor] = {}
        self.k_history: List[int] = []

    def _analysis_for(self, user_id: str) -> SensitivityAnalysis:
        if user_id not in self._linkability:
            self._linkability[user_id] = LinkabilityAssessor()
        return SensitivityAnalysis(self._semantic,
                                   self._linkability[user_id])

    def preload_history(self, user_id: str, queries: List[str]) -> None:
        """Load a user's pre-CYCLOSA history for linkability scoring."""
        analysis = self._analysis_for(user_id)
        for query in queries:
            analysis.remember(query)

    def protect(self, user_id: str, query: str,
                k_override: Optional[int] = None) -> List[EngineObservation]:
        analysis = self._analysis_for(user_id)
        if k_override is not None:
            k = k_override
        elif self.adaptive:
            k = choose_k(analysis.assess(query), self.kmax)
        else:
            k = self.kmax
        analysis.remember(query)

        fakes = self.table.sample(k, self._rng, exclude=query)
        # Every query carried by the system lands in relay tables.
        self.table.add(query)
        self.k_history.append(len(fakes))

        relays = self._rng.sample(self._relays, len(fakes) + 1)
        group_id = self.next_group_id()
        observations = [EngineObservation(
            identity=relays[0], text=query, true_user=user_id,
            group_id=group_id)]
        for relay, fake in zip(relays[1:], fakes):
            observations.append(EngineObservation(
                identity=relay, text=fake, true_user=user_id,
                is_fake=True, group_id=group_id))
        self._rng.shuffle(observations)
        return observations
