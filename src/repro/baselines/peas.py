"""PEAS: proxy + issuer with co-occurrence fakes (§II-A2, Fig 2c).

Two non-colluding servers: the *proxy* knows who is asking but sees
only ciphertext; the *issuer* sees the query but not the user. The
issuer aggregates the real query with ``k`` fakes generated from a
co-occurrence matrix of terms it builds from *all* users' past queries
— syntactically much closer to real queries than RSS/dictionary fakes,
hence PEAS's better Fig 5 score; still synthetic, hence worse than
X-Search/CYCLOSA whose fakes are verbatim real queries.

The engine-side identity for every query is the issuer's address: a
single choke point — the scalability failure Fig 8d demonstrates.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.baselines.base import (
    AttackSurface,
    EngineObservation,
    PrivateSearchSystem,
    filter_by_query_terms,
    hits_as_dicts,
    or_aggregate,
)
from repro.searchengine.engine import SearchEngine
from repro.text.tokenize import tokenize


class CooccurrenceModel:
    """The issuer's term co-occurrence matrix.

    Built online from the queries flowing through the issuer. A fake is
    synthesised by a weighted walk: seed term ∝ unigram frequency, each
    next term ∝ co-occurrence with the previous one.
    """

    def __init__(self, rng) -> None:
        self._rng = rng
        self._unigrams: Dict[str, int] = {}
        self._pairs: Dict[str, Dict[str, int]] = {}

    def observe(self, query: str) -> None:
        terms = tokenize(query)
        for term in terms:
            self._unigrams[term] = self._unigrams.get(term, 0) + 1
        for a in terms:
            for b in terms:
                if a != b:
                    self._pairs.setdefault(a, {})[b] = (
                        self._pairs.get(a, {}).get(b, 0) + 1)

    def __len__(self) -> int:
        return len(self._unigrams)

    def _weighted_choice(self, weights: Dict[str, int]) -> str:
        total = sum(weights.values())
        threshold = self._rng.random() * total
        running = 0.0
        for term, weight in weights.items():
            running += weight
            if running >= threshold:
                return term
        return next(iter(weights))

    def generate_fake(self, length: int, teleport: float = 0.75) -> str:
        """Synthesise one fake query of roughly *length* terms.

        *teleport* is the probability of restarting from the unigram
        model instead of following a co-occurrence edge. It models what
        makes PEAS fakes weaker than verbatim past queries (X-Search,
        CYCLOSA): the generator blends term statistics *across* users,
        so a synthetic fake rarely matches any single profile as well
        as a real query does — the reason Fig 5 ranks PEAS above
        (worse than) X-Search.
        """
        if not self._unigrams:
            return "popular search"
        terms = [self._weighted_choice(self._unigrams)]
        while len(terms) < length:
            neighbours = self._pairs.get(terms[-1])
            if neighbours and self._rng.random() >= teleport:
                candidate = self._weighted_choice(neighbours)
            else:
                candidate = self._weighted_choice(self._unigrams)
            if candidate not in terms:
                terms.append(candidate)
            else:
                candidate = self._weighted_choice(self._unigrams)
                if candidate not in terms:
                    terms.append(candidate)
                else:
                    break
        return " ".join(terms)


class Peas(PrivateSearchSystem):
    """Proxy + issuer, OR-aggregation, co-occurrence fakes."""

    name = "PEAS"
    attack_surface = AttackSurface.GROUP_ANONYMOUS
    properties = {
        "unlinkability": True,
        "indistinguishability": True,
        "accuracy": False,
        "scalability": False,
    }

    #: The single engine-facing identity (the issuer's address).
    ISSUER_IDENTITY = "peas-issuer"

    def __init__(self, k: int = 3, seed: int = 0) -> None:
        super().__init__()
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self._rng = random.Random(seed)
        self.cooccurrence = CooccurrenceModel(self._rng)

    def prime(self, past_queries: List[str]) -> None:
        """Feed historical traffic into the issuer's matrix (the paper's
        issuer has seen other users' queries before the attack window)."""
        for query in past_queries:
            self.cooccurrence.observe(query)

    def protect(self, user_id: str, query: str) -> List[EngineObservation]:
        width = max(1, len(tokenize(query)))
        fakes = []
        for _ in range(self.k):
            fake = self.cooccurrence.generate_fake(width)
            for _attempt in range(5):
                if fake != query:
                    break
                # Never emit the protected query itself as a fake.
                fake = self.cooccurrence.generate_fake(width)
            fakes.append(fake)
        # The issuer observes the (real) query *after* generating fakes
        # for it — fakes never echo the query they protect.
        self.cooccurrence.observe(query)
        text, real_index = or_aggregate(query, fakes, self._rng)
        return [EngineObservation(
            identity=self.ISSUER_IDENTITY, text=text, true_user=user_id,
            real_index=real_index, group_id=self.next_group_id())]

    def results_for(self, engine: SearchEngine, query: str,
                    observations: List[EngineObservation]) -> List[str]:
        """Engine answers the OR group; filtering happens client-side
        (the issuer cannot filter — it must not learn which sub-query
        mattered... it generated the fakes, but PEAS filters at the
        client per §II-A3)."""
        hits = hits_as_dicts(engine, observations[0].text)
        return filter_by_query_terms(query, hits)


# ---------------------------------------------------------------------------
# Network version: the two non-colluding servers (Fig 2c)
# ---------------------------------------------------------------------------


class PeasIssuerNode:
    """The issuer: sees queries, not identities.

    Receives RSA-hybrid-encrypted queries relayed by the proxy,
    decrypts, obfuscates with co-occurrence fakes, queries the engine,
    and returns the merged response encrypted under a per-request key
    the *client* chose — so the proxy relaying it back learns nothing.
    """

    def __init__(self, network, rng, engine_address: str,
                 address: str = "peas-issuer", k: int = 3) -> None:
        from repro.crypto.keys import IdentityKeyPair
        from repro.net.transport import NetNode

        class _Issuer(NetNode):
            def __init__(inner_self) -> None:
                super().__init__(network, address)

            def handle_request(inner_self, ctx) -> None:
                self._handle(ctx)

        self._rng = rng
        self.k = k
        self.engine_address = engine_address
        self.identity = IdentityKeyPair.generate(bits=512, rng=rng)
        self.cooccurrence = CooccurrenceModel(rng)
        self.node = _Issuer()
        self.address = address

    def prime(self, past_queries: List[str]) -> None:
        for query in past_queries:
            self.cooccurrence.observe(query)

    def _handle(self, ctx) -> None:
        from repro.crypto.aead import AeadKey, seal as aead_seal
        from repro.crypto.rsa import RsaError
        from repro.net import wire

        if ctx.request.kind != "peas.req":
            return
        try:
            plaintext = self.identity.rsa.decrypt(bytes(ctx.request.payload))
        except (RsaError, TypeError):
            return
        record = wire.decode(plaintext)
        query = record["query"]
        width = max(1, len(tokenize(query)))
        fakes = [self.cooccurrence.generate_fake(width)
                 for _ in range(self.k)]
        self.cooccurrence.observe(query)
        group, _real_index = or_aggregate(query, fakes, self._rng)
        meta = dict(record.get("meta") or {})
        meta["group_id"] = id(record) % (1 << 30)

        def on_engine_reply(response) -> None:
            response_key = AeadKey(record["response_key"])
            sealed = aead_seal(response_key, wire.encode(response),
                               rng=self._rng)
            ctx.respond(sealed, size_bytes=len(sealed))

        self.node.request(self.engine_address,
                          {"query": group, "meta": meta},
                          on_engine_reply, timeout=120.0, kind="search")


class PeasProxyNode:
    """The proxy: sees identities, not queries (they are encrypted to
    the issuer's public key)."""

    def __init__(self, network, issuer_address: str,
                 address: str = "peas-proxy") -> None:
        from repro.net.transport import NetNode

        class _Proxy(NetNode):
            def __init__(inner_self) -> None:
                super().__init__(network, address)

            def handle_request(inner_self, ctx) -> None:
                if ctx.request.kind != "peas.req":
                    return
                inner_self.request(
                    issuer_address, ctx.request.payload,
                    on_reply=lambda response: ctx.respond(
                        response,
                        size_bytes=len(response)
                        if isinstance(response, (bytes, bytearray)) else None),
                    timeout=120.0, kind="peas",
                    size_bytes=ctx.request.size_bytes)

        self.node = _Proxy()
        self.address = address


class PeasClientNode:
    """A PEAS user: encrypts the query to the issuer, sends it via the
    proxy, filters the merged response locally."""

    def __init__(self, network, address: str, rng,
                 proxy: PeasProxyNode, issuer: PeasIssuerNode) -> None:
        from repro.net.transport import NetNode

        class _Client(NetNode):
            def __init__(inner_self) -> None:
                super().__init__(network, address)

        self._rng = rng
        self.node = _Client()
        self.address = address
        self.proxy = proxy
        self.issuer = issuer

    def search(self, query: str, on_result) -> None:
        from repro.crypto.aead import AeadKey, open_ as aead_open
        from repro.net import wire

        issued_at = self.node.network.simulator.now
        response_key = AeadKey.generate(self._rng)
        record = wire.encode({
            "query": query,
            "meta": {"true_user": self.address},
            "response_key": response_key.key,
        })
        ciphertext = self.issuer.identity.public.encrypt(record,
                                                         rng=self._rng)

        def on_reply(response) -> None:
            plaintext = aead_open(response_key, bytes(response))
            engine_response = wire.decode(plaintext)
            hits = engine_response.get("hits", [])
            urls = filter_by_query_terms(query, hits)
            on_result({
                "query": query,
                "status": engine_response.get("status", "ok"),
                "hits": [h for h in hits if h["url"] in set(urls)],
                "latency": self.node.network.simulator.now - issued_at,
                "k": self.issuer.k,
            })

        self.node.request(self.proxy.address, ciphertext, on_reply,
                          timeout=240.0, kind="peas",
                          size_bytes=len(ciphertext))
