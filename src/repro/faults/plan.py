"""Deterministic fault plans (§III adversary model, §VI-b failure path).

The paper lets remote peers "behave arbitrarily by crashing, being
subject to bugs or being under the control of malicious adversaries"
(§III), and answers with timeout → blacklist → retry (§VI-b). A
:class:`FaultPlan` turns that adversary into something *systematically
testable*: a seeded, composable set of fault specifications that the
injector (:mod:`repro.faults.inject`) realises over a live deployment
without touching any protocol code.

Two families of faults exist:

- **Link faults** (:class:`Drop`, :class:`Delay`, :class:`Duplicate`,
  :class:`Corrupt`, :class:`CrashAfterReceive`) act on individual
  messages crossing the simulated network, selected by a
  :class:`MessageMatch` (endpoints + wire kind) inside an activation
  window.
- **Service faults** (:class:`DenyAttestation`,
  :class:`RateLimitStorm`) act on deployment-wide services: the
  simulated IAS and the engine's bot protection.

Everything is a frozen dataclass: a plan is a value, equal plans
produce byte-identical chaos reports, and a plan embedded in a test is
self-describing. Randomised decisions (drop coin flips, jitter, the
corrupted byte position) come from one ``random.Random(plan.seed)``
owned by the injector — never from the deployment RNG, so installing a
plan does not perturb latency sampling or relay selection of the run
it observes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class MessageMatch:
    """Selects messages by link endpoints and wire kind.

    ``None`` fields match anything. *kind* matches exactly, or as a
    prefix when it ends with ``"*"`` (``"cyclosa.fwd*"`` covers the
    request kind and any future variants).
    """

    src: Optional[str] = None
    dst: Optional[str] = None
    kind: Optional[str] = None

    def matches(self, src: str, dst: str, kind: str) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if self.kind is not None:
            if self.kind.endswith("*"):
                if not kind.startswith(self.kind[:-1]):
                    return False
            elif kind != self.kind:
                return False
        return True

    def describe(self) -> str:
        return (f"{self.src or '*'}->{self.dst or '*'}"
                f":{self.kind or '*'}")


#: Matches every message.
MATCH_ALL = MessageMatch()

#: The client→relay forward request (the §VI-b retry trigger).
FORWARD_REQUESTS = MessageMatch(kind="cyclosa.fwd.req")

#: Every RPC response on its way back to a requester.
RPC_RESPONSES = MessageMatch(kind="rpc.rsp")


@dataclass(frozen=True)
class LinkFault:
    """Base shape of a per-message fault: a match, a probability and
    an activation window in simulated seconds."""

    match: MessageMatch = MATCH_ALL
    probability: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.end < self.start:
            raise ValueError("fault window ends before it starts")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class Drop(LinkFault):
    """Lose matching messages on the wire (never delivered)."""

    name = "drop"


@dataclass(frozen=True)
class Delay(LinkFault):
    """Hold matching messages for ``extra`` (+ up to ``jitter``)
    additional seconds before delivery — slow relays, congested links."""

    extra: float = 0.5
    jitter: float = 0.0
    name = "delay"


@dataclass(frozen=True)
class Duplicate(LinkFault):
    """Deliver matching messages a second time, ``extra_delay``
    seconds after the first copy (retransmission storms; exercises the
    at-most-once RPC and replay-protection paths)."""

    extra_delay: float = 0.05
    name = "duplicate"


@dataclass(frozen=True)
class Corrupt(LinkFault):
    """Flip one byte of matching ``bytes`` payloads at delivery; AEAD
    opens then fail, so the receiver treats the record as tampered and
    drops it (a Byzantine relay learns nothing, the sender times out)."""

    name = "corrupt"


@dataclass(frozen=True)
class CrashAfterReceive:
    """Mid-flight silence: *node*'s host crashes immediately after
    receiving its ``after``-th message matching *trigger*.

    The node consumes the triggering message (so the sender's record is
    gone) but everything it tries to transmit from then on is dropped —
    a crashed host cannot send. This is the nastiest §III behaviour for
    a relay: it accepts the sealed record and then never forwards or
    answers, leaving only the client-side timeout to recover.
    """

    node: str = ""
    trigger: MessageMatch = FORWARD_REQUESTS
    after: int = 1
    name = "crash"

    def __post_init__(self) -> None:
        if not self.node:
            raise ValueError("CrashAfterReceive needs a node address")
        if self.after < 1:
            raise ValueError("after must be >= 1")


@dataclass(frozen=True)
class DenyAttestation:
    """IAS-level denial: quotes from *nodes* verify as revoked during
    the window, so no new attested channel with them can be
    established (§V-D handshakes fail, §VI-b must re-draw)."""

    nodes: Tuple[str, ...] = ()
    start: float = 0.0
    end: float = math.inf
    name = "attest-deny"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("DenyAttestation needs node addresses")
        if self.end < self.start:
            raise ValueError("fault window ends before it starts")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class RateLimitStorm:
    """Engine bot-protection storm: every request is answered with a
    captcha during the window (§II-A4 taken to its worst case)."""

    start: float = 0.0
    end: float = math.inf
    name = "ratelimit-storm"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("fault window ends before it starts")

    def active(self, now: float) -> bool:
        return self.start <= now < self.end


#: Message-level faults, in the order the injector applies them.
LINK_FAULT_TYPES = (Drop, Delay, Duplicate, Corrupt, CrashAfterReceive)

#: Deployment-service faults.
SERVICE_FAULT_TYPES = (DenyAttestation, RateLimitStorm)


def _describe_value(value: Any) -> Any:
    if isinstance(value, MessageMatch):
        return value.describe()
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, tuple):
        return list(value)
    return value


def describe_fault(fault: Any) -> Dict[str, Any]:
    """A stable, JSON-friendly description of one fault spec."""
    out: Dict[str, Any] = {"fault": fault.name}
    for spec in fields(fault):
        out[spec.name] = _describe_value(getattr(fault, spec.name))
    return out


@dataclass(frozen=True)
class FaultPlan:
    """A seeded composition of faults.

    The plan is pure data; :func:`repro.faults.inject.install` makes
    it real. The same (plan, deployment seed) pair always produces the
    same run, which is what lets the chaos gate record success-rate
    floors and the CLI emit byte-identical reports.
    """

    seed: int = 0
    faults: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not isinstance(fault, LINK_FAULT_TYPES + SERVICE_FAULT_TYPES):
                raise TypeError(f"not a fault spec: {fault!r}")

    def link_faults(self) -> List[Any]:
        return [f for f in self.faults if isinstance(f, LINK_FAULT_TYPES)]

    def service_faults(self) -> List[Any]:
        return [f for f in self.faults if isinstance(f, SERVICE_FAULT_TYPES)]

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly plan description (embedded in chaos reports)."""
        return {"seed": self.seed,
                "faults": [describe_fault(f) for f in self.faults]}
