"""repro.faults — deterministic fault injection for the §VI-b path.

The paper's adversary may "behave arbitrarily by crashing" (§III);
CYCLOSA's answer is timeout → blacklist → retry (§VI-b). This package
makes that failure path systematically testable:

- :mod:`repro.faults.plan` — seeded, composable fault plans: per-link
  / per-kind drop, delay, duplication, corruption; crash-after-receive
  silence; attestation denial; engine rate-limit storms.
- :mod:`repro.faults.inject` — interceptors realising a plan over a
  live deployment (wrapping ``Network.send``/``_deliver``, the IAS and
  the engine rate limiter) without touching protocol code, with obs
  counters/spans per injection.
- :mod:`repro.faults.chaos` — the fault-matrix harness behind
  ``repro chaos`` and ``benchmarks/check_chaos.py``: per-cell success
  rate, statuses, retries, latency, and the zero-hung-searches /
  relay-disjointness invariants.

See ``docs/robustness.md``.
"""

from repro.faults.chaos import (ChaosCell, default_matrix, format_report,
                                matrix_cells, report_json, run_cell,
                                run_matrix)
from repro.faults.inject import (FaultInjectionError, FaultInjector,
                                 InstalledPlan, install)
from repro.faults.plan import (Corrupt, CrashAfterReceive, Delay,
                               DenyAttestation, Drop, Duplicate, FaultPlan,
                               FORWARD_REQUESTS, MATCH_ALL, MessageMatch,
                               RateLimitStorm, RPC_RESPONSES, describe_fault)

__all__ = [
    "ChaosCell",
    "Corrupt",
    "CrashAfterReceive",
    "Delay",
    "DenyAttestation",
    "Drop",
    "Duplicate",
    "FaultInjectionError",
    "FaultInjector",
    "FaultPlan",
    "FORWARD_REQUESTS",
    "InstalledPlan",
    "MATCH_ALL",
    "MessageMatch",
    "RateLimitStorm",
    "RPC_RESPONSES",
    "default_matrix",
    "describe_fault",
    "format_report",
    "install",
    "matrix_cells",
    "report_json",
    "run_cell",
    "run_matrix",
]
