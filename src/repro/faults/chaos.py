"""Seeded fault-matrix sweeps over the protected-search pipeline.

Each :class:`ChaosCell` names one failure scenario (a fault-plan
builder); :func:`run_cell` builds a fresh deployment, installs the
plan, issues protected searches from a client and reports what the
§VI-b machinery did with them — success rate, terminal statuses,
retries, blacklisting, latency, injections per fault kind, and the two
invariants every cell must hold:

- **zero hung searches** — after a drain, every issued search reached
  a terminal status (``outstanding_searches()`` is empty);
- **zero disjointness violations** — no real-query retry ever landed
  on a relay already carrying a fake leg of the same search (§V).

Reports are plain dicts of sorted, rounded values derived only from
seeded state: :func:`report_json` output for the same arguments is
byte-identical run over run, which is what the chaos CI gate
(``benchmarks/check_chaos.py``) and the ``repro chaos`` CLI pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.faults.inject import install
from repro.faults.plan import (CrashAfterReceive, Corrupt, Delay,
                               DenyAttestation, Drop, Duplicate, FaultPlan,
                               FORWARD_REQUESTS, MessageMatch,
                               RateLimitStorm, RPC_RESPONSES)

#: Simulated seconds the deployment is driven after the last search,
#: so stragglers (fake legs, retries in flight) settle before the
#: hang check.
DRAIN_SECONDS = 120.0


@dataclass(frozen=True)
class ChaosCell:
    """One named scenario of the fault matrix.

    ``build(relays, engine)`` receives the relay addresses (every node
    except the measuring client) and the engine address, and returns
    the cell's :class:`FaultPlan`. ``config_overrides`` are applied on
    top of :func:`run_cell`'s deployment config — the engine scale-out
    cells use this to stand up replicas before crashing one.
    """

    name: str
    description: str
    build: Callable[[List[str], str], FaultPlan]
    config_overrides: Optional[Dict[str, Any]] = None


def default_matrix(plan_seed: int = 0) -> List[ChaosCell]:
    """The standing fault matrix every scaling PR re-runs.

    One cell per degradation mode the §VI-b path must survive, plus a
    clean baseline and the drop+delay+crash combination cell.
    """

    def cell(name: str, description: str,
             faults: Callable[[List[str], str], tuple]) -> ChaosCell:
        return ChaosCell(
            name=name, description=description,
            build=lambda relays, engine: FaultPlan(
                seed=plan_seed, faults=faults(relays, engine)))

    return [
        cell("baseline", "no faults; records the healthy floor",
             lambda relays, engine: ()),
        cell("drop-forward", "25% of client->relay forwards lost",
             lambda relays, engine: (
                 Drop(match=FORWARD_REQUESTS, probability=0.25),)),
        cell("drop-response", "20% of RPC responses lost",
             lambda relays, engine: (
                 Drop(match=RPC_RESPONSES, probability=0.2),)),
        cell("slow-relays", "forwards delayed 0.6-0.9s (slow hosts)",
             lambda relays, engine: (
                 Delay(match=MessageMatch(kind="cyclosa.fwd*"),
                       extra=0.6, jitter=0.3),)),
        cell("duplicate-storm", "30% of responses delivered twice",
             lambda relays, engine: (
                 Duplicate(match=RPC_RESPONSES, probability=0.3),)),
        cell("corrupt-forward", "30% of forwards corrupted on the wire",
             lambda relays, engine: (
                 Corrupt(match=FORWARD_REQUESTS, probability=0.3),)),
        cell("crash-after-receive",
             "a third of relays crash on their first forward",
             lambda relays, engine: tuple(
                 CrashAfterReceive(node=address)
                 for address in relays[: max(1, len(relays) // 3)])),
        cell("attest-deny",
             "IAS denies a third of relays (channel establishment fails)",
             lambda relays, engine: (
                 DenyAttestation(
                     nodes=tuple(relays[: max(1, len(relays) // 3)])),)),
        cell("ratelimit-storm", "engine answers captcha until t=50s",
             lambda relays, engine: (
                 RateLimitStorm(start=0.0, end=50.0),)),
        ChaosCell(
            name="replica-crash",
            description="3 engine replicas with caching; replica "
                        "engine1 crashes on its first search — "
                        "searches routed elsewhere finish normally and "
                        "coordinators degrade to surviving shards",
            build=lambda relays, engine: FaultPlan(
                seed=plan_seed,
                faults=(CrashAfterReceive(
                    node="engine1",
                    trigger=MessageMatch(kind="search*")),)),
            config_overrides={"engine_replicas": 3,
                              "engine_cache_size": 256}),
        cell("combo", "drop + slow relays + crash, together",
             lambda relays, engine: (
                 Drop(match=FORWARD_REQUESTS, probability=0.15),
                 Delay(match=MessageMatch(kind="cyclosa.fwd*"),
                       extra=0.4, jitter=0.2),
                 CrashAfterReceive(node=relays[0]),)
             if relays else ()),
    ]


def matrix_cells(names: Optional[Sequence[str]] = None,
                 plan_seed: int = 0) -> List[ChaosCell]:
    """The default matrix, optionally filtered to *names* (in matrix
    order); unknown names raise ``ValueError``."""
    cells = default_matrix(plan_seed)
    if names is None:
        return cells
    by_name = {cell.name: cell for cell in cells}
    unknown = [n for n in names if n not in by_name]
    if unknown:
        raise ValueError(
            f"unknown chaos cells: {', '.join(unknown)} "
            f"(known: {', '.join(by_name)})")
    wanted = set(names)
    return [cell for cell in cells if cell.name in wanted]


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_cell(cell: ChaosCell, num_nodes: int = 10,
             num_queries: int = 6,
             seed: int = 7, k: int = 2,
             config: Optional[CyclosaConfig] = None,
             max_wait: float = 240.0) -> Dict[str, Any]:
    """Run one cell on a fresh deployment; return its report row."""
    config = config or CyclosaConfig(relay_timeout=1.5, max_retries=3)
    if cell.config_overrides:
        from dataclasses import replace
        config = replace(config, **cell.config_overrides)
    deployment = CyclosaNetwork.create(
        num_nodes=num_nodes, seed=seed, config=config, warmup_seconds=40.0)
    relays = [node.address for node in deployment.nodes[1:]]
    plan = cell.build(relays, deployment.engine_node.address)
    installed = install(plan, deployment)
    client = deployment.nodes[0]
    user = deployment.node(0)

    statuses: Dict[str, int] = {}
    latencies: List[float] = []
    for index in range(num_queries):
        result = user.search(f"chaos probe {index}", k_override=k,
                             max_wait=max_wait)
        statuses[result.status] = statuses.get(result.status, 0) + 1
        latencies.append(result.latency)
    deployment.run(DRAIN_SECONDS)
    hung = len(client.outstanding_searches())
    installed.uninstall()

    successes = statuses.get("ok", 0)
    return {
        "cell": cell.name,
        "description": cell.description,
        "queries": num_queries,
        "success_rate": round(successes / num_queries, 4),
        "statuses": dict(sorted(statuses.items())),
        "retries": client.stats.retries,
        "blacklisted": client.stats.blacklisted_peers,
        "hung_searches": hung,
        "disjointness_violations": client.stats.disjointness_violations,
        "latency_seconds": {
            "mean": round(sum(latencies) / len(latencies), 4),
            "p50": round(_percentile(latencies, 0.5), 4),
            "max": round(max(latencies), 4),
        },
        "faults_injected": installed.counts,
        "plan": plan.describe(),
    }


def run_matrix(cells: Optional[Sequence[ChaosCell]] = None,
               num_nodes: int = 10, num_queries: int = 6,
               seed: int = 7,
               k: int = 2, config: Optional[CyclosaConfig] = None,
               max_wait: float = 240.0) -> Dict[str, Any]:
    """Run every cell on its own fresh deployment (same seed)."""
    cells = list(cells) if cells is not None else default_matrix()
    rows = [run_cell(cell, num_nodes=num_nodes,
                     num_queries=num_queries,
                     seed=seed, k=k, config=config, max_wait=max_wait)
            for cell in cells]
    return {
        "nodes": num_nodes,
        "queries_per_cell": num_queries,
        "seed": seed,
        "k": k,
        "cells": rows,
    }


def report_json(report: Dict[str, Any]) -> str:
    """Canonical JSON encoding: sorted keys, fixed separators — the
    same report object always encodes to the same bytes."""
    return json.dumps(report, sort_keys=True, indent=2)


def format_report(report: Dict[str, Any]) -> str:
    """Aligned text table of a matrix report (the CLI's default view)."""
    header = ["cell", "success", "statuses", "retries", "hung",
              "p50 lat", "faults"]
    rows = []
    for row in report["cells"]:
        status_text = ",".join(
            f"{name}:{count}" for name, count in row["statuses"].items())
        fault_text = ",".join(
            f"{name}:{count}"
            for name, count in row["faults_injected"].items()) or "-"
        rows.append([
            row["cell"],
            f"{row['success_rate'] * 100:.0f} %",
            status_text,
            row["retries"],
            row["hung_searches"],
            f"{row['latency_seconds']['p50']:.2f} s",
            fault_text,
        ])
    widths = [len(str(h)) for h in header]
    for row in rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(str(value)))
    lines = ["  ".join(str(h).ljust(widths[i])
                       for i, h in enumerate(header))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(str(value).ljust(widths[i])
                               for i, value in enumerate(row)))
    return "\n".join(lines)
