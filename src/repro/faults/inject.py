"""Interceptors that realise a :class:`~repro.faults.plan.FaultPlan`.

Link faults install as wrappers around one
:class:`~repro.net.transport.Network` instance's ``send`` / ``_deliver``
methods — protocol code is untouched and unaware. Service faults wrap
the deployment's IAS ``verify`` and the engine front-end's rate
limiter. :func:`install` applies a whole plan to a deployment and
returns an :class:`InstalledPlan` that counts every injection and can
restore everything.

Where each fault acts:

- **Drop** and **silence** act at *delivery* time, not send time: the
  sender's transport bookkeeping (pending entry, cancellable timeout —
  see :meth:`repro.net.transport.NetNode.request`) behaves exactly as
  for a response that never comes, which is the §VI-b scenario under
  test. ``Network.stats.dropped`` and the obs drop counter stay
  truthful.
- **Delay** reschedules delivery once per message (faults still
  compose: a delayed message can be corrupted, or dropped by a
  separate drop fault when it re-enters delivery).
- **Duplicate** schedules a verbatim second delivery; the receiver's
  correlation table / replay protection must cope.
- **Corrupt** flips one byte of a ``bytes`` payload at delivery; AEAD
  authentication fails downstream and the record is treated as
  tampered.
- **CrashAfterReceive** silences a node the moment it has received its
  n-th matching message: every message it sends from then on is
  dropped at delivery (a crashed host cannot transmit).

Fault randomness comes from ``random.Random(plan.seed)`` — separate
from the deployment RNG, so the same deployment seed with and without
a plan differs only where faults actually fired.

When :mod:`repro.obs` is enabled, every injection increments
``cyclosa_faults_injected_total{fault=...}`` and emits a zero-width
``net.fault`` span carrying the affected link and wire kind, so fault
events line up with the per-leg ``path`` spans in assembled traces.
"""

from __future__ import annotations

import random
from dataclasses import replace as _replace
from typing import Any, Callable, Dict, List, Optional

from repro.faults.plan import (CrashAfterReceive, Corrupt, Delay,
                               DenyAttestation, Drop, Duplicate, FaultPlan,
                               RateLimitStorm)
from repro.net.transport import Message, Network
from repro.obs import OBS


class FaultInjectionError(Exception):
    """Installation misuse (double install, missing deployment parts)."""


class FaultInjector:
    """Link-fault interceptor over one :class:`Network` instance."""

    def __init__(self, network: Network, plan: FaultPlan) -> None:
        self.network = network
        self.plan = plan
        self.rng = random.Random(plan.seed)
        #: Injections per fault name (``drop``, ``delay``, ...).
        self.counts: Dict[str, int] = {}
        link = plan.link_faults()
        self._drops: List[Drop] = [f for f in link if isinstance(f, Drop)]
        self._delays: List[Delay] = [f for f in link if isinstance(f, Delay)]
        self._dups: List[Duplicate] = [
            f for f in link if isinstance(f, Duplicate)]
        self._corrupts: List[Corrupt] = [
            f for f in link if isinstance(f, Corrupt)]
        self._crashes: Dict[str, CrashAfterReceive] = {
            f.node: f for f in link if isinstance(f, CrashAfterReceive)}
        self._crash_received: Dict[str, int] = {}
        #: Nodes whose hosts have crashed: their sends go nowhere.
        self.silenced: set = set()
        #: msg_ids already delayed once (delay applies at most once).
        self._delayed_ids: set = set()
        self._orig_send: Optional[Callable] = None
        self._orig_deliver: Optional[Callable] = None

    # -- lifecycle -----------------------------------------------------

    def install(self) -> "FaultInjector":
        if self._orig_send is not None:
            raise FaultInjectionError("injector already installed")
        self._orig_send = self.network.send
        self._orig_deliver = self.network._deliver
        self.network.send = self._send  # type: ignore[method-assign]
        self.network._deliver = self._deliver  # type: ignore[method-assign]
        return self

    def uninstall(self) -> None:
        if self._orig_send is None:
            return
        self.network.send = self._orig_send  # type: ignore[method-assign]
        self.network._deliver = self._orig_deliver  # type: ignore[method-assign]
        self._orig_send = None
        self._orig_deliver = None

    # -- accounting ----------------------------------------------------

    def note(self, fault_name: str, src: str, dst: str, kind: str) -> None:
        """Count one injection; mirror it into obs when enabled."""
        self.counts[fault_name] = self.counts.get(fault_name, 0) + 1
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_faults_injected_total",
                "faults injected by repro.faults, by kind",
                fault=fault_name).inc()
            span = OBS.tracer.start_span("net.fault", attributes={
                "fault": fault_name, "src": src, "dst": dst, "kind": kind})
            OBS.tracer.end_span(span)

    def _count_wire_loss(self) -> None:
        """Mirror :class:`Network`'s own drop accounting."""
        self.network.stats.dropped += 1
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_net_dropped_total",
                "messages lost (loss, churn, dead senders)").inc()

    # -- interceptors --------------------------------------------------

    def _send(self, src: str, dst: str, kind: str, payload: Any,
              size_bytes: Optional[int] = None) -> Optional[Message]:
        message = self._orig_send(src, dst, kind, payload, size_bytes)
        if message is None:
            return None
        now = self.network.simulator.now
        for fault in self._dups:
            if (fault.active(now) and fault.match.matches(src, dst, kind)
                    and self.rng.random() < fault.probability):
                self.note("duplicate", src, dst, kind)
                # The copy is delivered verbatim, bypassing further
                # link faults: one injected duplicate, not a cascade.
                self.network.simulator.post(
                    fault.extra_delay,
                    lambda m=message: self._orig_deliver(m))
                break
        return message

    def _deliver(self, message: Message) -> None:
        now = self.network.simulator.now
        src, dst, kind = message.src, message.dst, message.kind
        if src in self.silenced:
            self.note("silence", src, dst, kind)
            self._count_wire_loss()
            return
        for fault in self._drops:
            if (fault.active(now) and fault.match.matches(src, dst, kind)
                    and self.rng.random() < fault.probability):
                self.note("drop", src, dst, kind)
                self._count_wire_loss()
                return
        if message.msg_id in self._delayed_ids:
            self._delayed_ids.discard(message.msg_id)
        else:
            for fault in self._delays:
                if (fault.active(now) and fault.match.matches(src, dst, kind)
                        and self.rng.random() < fault.probability):
                    extra = fault.extra
                    if fault.jitter > 0:
                        extra += fault.jitter * self.rng.random()
                    self.note("delay", src, dst, kind)
                    self._delayed_ids.add(message.msg_id)
                    self.network.simulator.post(
                        extra, lambda m=message: self._deliver(m))
                    return
        for fault in self._corrupts:
            if (isinstance(message.payload, (bytes, bytearray))
                    and len(message.payload) > 0
                    and fault.active(now)
                    and fault.match.matches(src, dst, kind)
                    and self.rng.random() < fault.probability):
                corrupted = bytearray(message.payload)
                position = self.rng.randrange(len(corrupted))
                corrupted[position] ^= 0xFF
                message = _replace(message, payload=bytes(corrupted))
                self.note("corrupt", src, dst, kind)
                break
        crash = self._crashes.get(dst)
        if (crash is not None and dst not in self.silenced
                and crash.trigger.matches(src, dst, kind)):
            count = self._crash_received.get(dst, 0) + 1
            self._crash_received[dst] = count
            if count >= crash.after:
                # The host consumes this message, then dies: silence
                # takes effect before any reply it schedules can leave.
                self.silenced.add(dst)
                self.note("crash", src, dst, kind)
        self._orig_deliver(message)


class _StormRateLimiter:
    """Wraps the engine's rate limiter; forces captchas during storms.

    Outside a storm window it delegates to the wrapped limiter (or
    admits everything when the deployment had none configured).
    """

    def __init__(self, inner, storms: List[RateLimitStorm],
                 injector: FaultInjector, engine_address: str) -> None:
        from repro.searchengine.ratelimit import RateLimitVerdict

        self._verdicts = RateLimitVerdict
        self.inner = inner
        self.storms = storms
        self.injector = injector
        self.engine_address = engine_address

    def check(self, identity: str, now: float):
        for storm in self.storms:
            if storm.active(now):
                self.injector.note("ratelimit-storm", identity,
                                   self.engine_address, "search")
                return self._verdicts.CAPTCHA
        if self.inner is None:
            return self._verdicts.ADMITTED
        return self.inner.check(identity, now)

    def __getattr__(self, name):
        # admitted()/rejected()/is_blocked() pass through to the real
        # limiter when one exists.
        if self.inner is None:
            raise AttributeError(name)
        return getattr(self.inner, name)


class InstalledPlan:
    """One plan, live over one deployment. ``uninstall()`` restores
    every wrapped method/attribute."""

    def __init__(self, plan: FaultPlan, injector: FaultInjector,
                 restorers: List[Callable[[], None]]) -> None:
        self.plan = plan
        self.injector = injector
        self._restorers = restorers

    @property
    def counts(self) -> Dict[str, int]:
        """Injections per fault name (sorted for stable reports)."""
        return dict(sorted(self.injector.counts.items()))

    def uninstall(self) -> None:
        for restore in self._restorers:
            restore()
        self._restorers = []
        self.injector.uninstall()


def install(plan: FaultPlan, deployment) -> InstalledPlan:
    """Install every fault of *plan* over *deployment*.

    *deployment* is duck-typed (a
    :class:`~repro.core.client.CyclosaNetwork` or anything exposing
    ``network``, ``simulator``, ``nodes``, ``services.ias`` and
    ``engine_node``); only the parts a fault family needs must exist.
    """
    injector = FaultInjector(deployment.network, plan).install()
    restorers: List[Callable[[], None]] = []

    denials = [f for f in plan.service_faults()
               if isinstance(f, DenyAttestation)]
    if denials:
        ias = deployment.services.ias
        platform_of = {node.address: node.host.platform_id
                       for node in deployment.nodes}
        entries = []
        for fault in denials:
            unknown = [n for n in fault.nodes if n not in platform_of]
            if unknown:
                raise FaultInjectionError(
                    f"DenyAttestation names unknown nodes: {unknown}")
            entries.append(
                (fault, frozenset(platform_of[n] for n in fault.nodes)))
        orig_verify = ias.verify

        def verify(quote):
            from repro.sgx.attestation import (QuoteStatus,
                                               VerificationReport)

            now = deployment.simulator.now
            for fault, platforms in entries:
                if fault.active(now) and quote.platform_id in platforms:
                    injector.note("attest-deny", f"p{quote.platform_id}",
                                  "ias", "attestation")
                    return VerificationReport(
                        status=QuoteStatus.GROUP_REVOKED,
                        platform_id=quote.platform_id,
                        measurement=quote.measurement)
            return orig_verify(quote)

        ias.verify = verify
        restorers.append(lambda: setattr(ias, "verify", orig_verify))

    storms = [f for f in plan.service_faults()
              if isinstance(f, RateLimitStorm)]
    if storms:
        # A storm hits the whole engine tier: wrap every replica's
        # limiter (older single-engine deployments expose just
        # ``engine_node``).
        engine_nodes = (getattr(deployment, "engine_nodes", None)
                        or [deployment.engine_node])
        for engine_node in engine_nodes:
            orig_limiter = engine_node.rate_limiter
            engine_node.rate_limiter = _StormRateLimiter(
                orig_limiter, storms, injector, engine_node.address)
            restorers.append(
                lambda node=engine_node, limiter=orig_limiter:
                setattr(node, "rate_limiter", limiter))

    return InstalledPlan(plan, injector, restorers)
