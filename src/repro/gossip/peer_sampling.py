"""The push-pull peer-sampling shuffle.

Each node runs a :class:`PeerSamplingService` attached to its transport
node. Every ``interval`` simulated seconds it picks its *oldest* view
entry, pushes a buffer (its own fresh descriptor plus a random half of
its view) and merges the buffer the peer returns. The (heal, swap)
parameters follow the healer/swapper policies of Jelasity et al.;
defaults favour healing, which keeps the overlay connected under churn.

CYCLOSA consumes exactly one API from this service:
:meth:`PeerSamplingService.random_peers` — a uniform sample of live
addresses used to pick the ``k+1`` relays of a protected query (§V-C).
Relay selection from a *continuously reshuffled* random view is also
what spreads load evenly across nodes (Fig 8d).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.gossip.view import NodeDescriptor, PartialView
from repro.net.transport import NetNode, RequestContext
from repro.obs import OBS

GOSSIP_KIND = "pss"


class PeerSamplingService:
    """Random peer sampling for one overlay node.

    Parameters
    ----------
    node:
        The transport node to gossip through.
    rng:
        Seeded RNG shared with the rest of the node.
    view_size:
        Partial view capacity ``c`` (8 suffices for the overlay sizes
        simulated here; the original paper uses 30 at internet scale).
    heal, swap:
        The H and S policy parameters.
    interval:
        Simulated seconds between gossip rounds.
    """

    def __init__(self, node: NetNode, rng, view_size: int = 8,
                 heal: int = 2, swap: int = 3,
                 interval: float = 5.0,
                 push_pull: bool = True) -> None:
        self._node = node
        self._rng = rng
        self.view = PartialView(view_size)
        self.heal = heal
        self.swap = swap
        self.interval = interval
        #: push-pull (default, as in the original paper's recommended
        #: configuration) exchanges buffers both ways per round;
        #: push-only fires the buffer and learns nothing back —
        #: convergence is slower and failure detection weaker, which
        #: the overlay tests demonstrate.
        self.push_pull = push_pull
        self._running = False
        self.rounds_completed = 0

    @property
    def address(self) -> str:
        return self._node.address

    # -- bootstrap & lifecycle -------------------------------------------

    def bootstrap(self, seeds: Sequence[str]) -> None:
        """Fill the initial view from repository-provided addresses."""
        for address in seeds:
            if address != self.address:
                self.view.insert(NodeDescriptor(address, age=0))

    def start(self) -> None:
        """Begin periodic gossip on the node's simulator."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        # Jitter desynchronises rounds across nodes.
        jitter = self._rng.uniform(0.0, 0.1 * self.interval)
        self._node.network.simulator.post(
            self.interval + jitter, self._gossip_round)

    # -- the shuffle -------------------------------------------------------

    def _build_buffer(self) -> List[NodeDescriptor]:
        buffer = [NodeDescriptor(self.address, age=0)]
        half = max(0, self.view.capacity // 2 - 1)
        for address in self.view.sample(half, self._rng):
            descriptor = next(
                d for d in self.view.descriptors() if d.address == address)
            buffer.append(descriptor)
        return buffer

    def _gossip_round(self) -> None:
        if not self._running:
            return
        self.view.increase_ages()
        peer = self.view.oldest_peer()
        if peer is not None:
            buffer = self._build_buffer()
            payload = [
                {"address": d.address, "age": d.age} for d in buffer
            ]
            if not self.push_pull:
                # Push-only: fire the buffer, learn nothing back. Still
                # age-heal locally via capacity eviction over time.
                self._node.send(peer, f"{GOSSIP_KIND}.push", payload)
                self.rounds_completed += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_gossip_rounds_total",
                        "gossip rounds initiated", mode="push").inc()
                    span = OBS.tracer.start_span(
                        "gossip.exchange",
                        attributes={"node": self.address, "peer": peer,
                                    "mode": "push",
                                    "descriptors": len(payload)})
                    OBS.tracer.end_span(span)
                    OBS.router.record(self.address, span)
                self._schedule_next()
                return

            exchange_span = None

            def _close_exchange(outcome: str) -> None:
                if exchange_span is not None:
                    exchange_span.set_attribute("outcome", outcome)
                    OBS.tracer.end_span(exchange_span)
                    # Mirror into this node's sink: gossip exchanges
                    # appear in assembled deployment timelines next to
                    # the node's relay spans.
                    OBS.router.record(self.address, exchange_span)

            def on_reply(response) -> None:
                received = [
                    NodeDescriptor(entry["address"], entry["age"])
                    for entry in response
                    if entry["address"] != self.address
                ]
                self.view.merge(received, sent=buffer, heal=self.heal,
                                swap=self.swap, rng=self._rng)
                self.rounds_completed += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_gossip_view_exchanges_total",
                        "completed push-pull view exchanges").inc()
                    _close_exchange("merged")

            def on_timeout() -> None:
                # Unresponsive peer: drop it — the self-healing step.
                self.view.remove(peer)
                if OBS.enabled:
                    OBS.registry.counter(
                        "cyclosa_gossip_peer_timeouts_total",
                        "gossip peers dropped for unresponsiveness").inc()
                    _close_exchange("timeout")

            if OBS.enabled:
                OBS.registry.counter(
                    "cyclosa_gossip_rounds_total",
                    "gossip rounds initiated", mode="push_pull").inc()
                exchange_span = OBS.tracer.start_span(
                    "gossip.exchange",
                    attributes={"node": self.address, "peer": peer,
                                "mode": "push_pull",
                                "descriptors": len(payload)})

            self._node.request(
                peer, payload, on_reply, timeout=4 * self.interval,
                on_timeout=on_timeout, kind=GOSSIP_KIND)
        self._schedule_next()

    def handle_push(self, message) -> bool:
        """Receiver half of a push-only round (datagram, no response)."""
        if message.kind != f"{GOSSIP_KIND}.push":
            return False
        received = [
            NodeDescriptor(entry["address"], entry["age"])
            for entry in message.payload
            if entry["address"] != self.address
        ]
        self.view.merge(received, sent=[], heal=self.heal,
                        swap=self.swap, rng=self._rng)
        return True

    def handle_request(self, ctx: RequestContext) -> bool:
        """Responder half of the push-pull exchange.

        Returns True when the request was a gossip message (so node
        dispatch code can try other handlers otherwise).
        """
        if ctx.request.kind != f"{GOSSIP_KIND}.req":
            return False
        received = [
            NodeDescriptor(entry["address"], entry["age"])
            for entry in ctx.request.payload
            if entry["address"] != self.address
        ]
        buffer = self._build_buffer()
        ctx.respond([{"address": d.address, "age": d.age} for d in buffer])
        self.view.merge(received, sent=buffer, heal=self.heal,
                        swap=self.swap, rng=self._rng)
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_gossip_view_exchanges_total",
                "completed push-pull view exchanges").inc()
        return True

    # -- the API CYCLOSA consumes ------------------------------------------

    def random_peers(self, count: int,
                     exclude: Sequence[str] = ()) -> List[str]:
        """A uniform sample of *count* distinct peers from the view."""
        return self.view.sample(count, self._rng, exclude=exclude)
