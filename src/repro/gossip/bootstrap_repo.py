"""The public bootstrap repository.

§V-D: "bootstrapping the peer discovery protocol is done as in classical
peer-2-peer systems using a public repository of IP addresses (e.g., as
in TOR) from which a CYCLOSA instance can select a first sample of
random peers."

The repository is intentionally dumb: it hands out random known
addresses, possibly including stale ones (nodes that already left) —
the peer-sampling protocol is responsible for healing around those.
"""

from __future__ import annotations

from typing import List, Sequence


class PublicRepository:
    """A directory of (possibly stale) participant addresses."""

    def __init__(self, rng) -> None:
        self._rng = rng
        self._addresses: List[str] = []

    def publish(self, address: str) -> None:
        """A joining node announces itself."""
        if address not in self._addresses:
            self._addresses.append(address)

    def retire(self, address: str) -> None:
        """Best-effort removal on clean shutdown (crashes never call it,
        leaving stale entries — as in the real world)."""
        try:
            self._addresses.remove(address)
        except ValueError:
            pass

    def sample(self, count: int, exclude: Sequence[str] = ()) -> List[str]:
        """Random sample of known addresses for a fresh node's view."""
        candidates = [a for a in self._addresses if a not in set(exclude)]
        if count >= len(candidates):
            return list(candidates)
        return self._rng.sample(candidates, count)

    def __len__(self) -> int:
        return len(self._addresses)
