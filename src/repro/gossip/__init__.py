"""Gossip-based peer sampling (Jelasity et al., TOCS 2007).

CYCLOSA's peer discovery (§V-E) "is using the random-peer-sampling
protocol which ensures connectivity between nodes by building and
maintaining a continuously changing random topology". This package
implements that protocol over the simulated network:

- :mod:`repro.gossip.view`           — node descriptors and the bounded
  partial view with age-based replacement.
- :mod:`repro.gossip.peer_sampling`  — the push-pull shuffle with the
  healer/swapper parameters of the original paper.
- :mod:`repro.gossip.bootstrap_repo` — the public address repository a
  joining node samples its first view from (§V-D compares it to TOR's
  directory).
"""

from repro.gossip.bootstrap_repo import PublicRepository
from repro.gossip.peer_sampling import PeerSamplingService
from repro.gossip.view import NodeDescriptor, PartialView

__all__ = [
    "PublicRepository",
    "PeerSamplingService",
    "NodeDescriptor",
    "PartialView",
]
