"""Partial views for gossip-based peer sampling.

A node's knowledge of the overlay is a bounded set of
:class:`NodeDescriptor` (address, age). Ages grow every gossip round and
reset when a fresh descriptor for the same address arrives; old
descriptors are the first to be evicted, which is what heals the
overlay after churn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class NodeDescriptor:
    """One overlay entry: a peer address and how stale we believe it is."""

    address: str
    age: int

    def aged(self) -> "NodeDescriptor":
        return NodeDescriptor(self.address, self.age + 1)

    def fresh(self) -> "NodeDescriptor":
        return NodeDescriptor(self.address, 0)


class PartialView:
    """A bounded, age-aware set of peer descriptors."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("view capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[str, NodeDescriptor] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: str) -> bool:
        return address in self._entries

    def addresses(self) -> List[str]:
        return list(self._entries)

    def descriptors(self) -> List[NodeDescriptor]:
        return list(self._entries.values())

    def is_empty(self) -> bool:
        return not self._entries

    # -- mutation --------------------------------------------------------

    def insert(self, descriptor: NodeDescriptor) -> None:
        """Add or refresh one descriptor (youngest age wins)."""
        existing = self._entries.get(descriptor.address)
        if existing is None or descriptor.age < existing.age:
            self._entries[descriptor.address] = descriptor
        self._enforce_capacity()

    def increase_ages(self) -> None:
        """Start of a gossip round: everything we know gets older."""
        self._entries = {
            address: descriptor.aged()
            for address, descriptor in self._entries.items()
        }

    def remove(self, address: str) -> None:
        self._entries.pop(address, None)

    def _enforce_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            oldest = max(self._entries.values(), key=lambda d: d.age)
            del self._entries[oldest.address]

    # -- selection -------------------------------------------------------

    def oldest_peer(self) -> Optional[str]:
        """Tail peer selection: gossip with the most stale entry."""
        if not self._entries:
            return None
        return max(self._entries.values(),
                   key=lambda d: (d.age, d.address)).address

    def random_peer(self, rng) -> Optional[str]:
        if not self._entries:
            return None
        return rng.choice(sorted(self._entries))

    def sample(self, count: int, rng,
               exclude: Sequence[str] = ()) -> List[str]:
        """Uniformly sample up to *count* distinct addresses."""
        candidates = [a for a in sorted(self._entries) if a not in set(exclude)]
        if count >= len(candidates):
            return candidates
        return rng.sample(candidates, count)

    # -- gossip merge (Jelasity et al., Alg. 1 select_view) --------------

    def merge(self, received: Sequence[NodeDescriptor], sent: Sequence[NodeDescriptor],
              heal: int, swap: int, rng) -> None:
        """Combine the received buffer into the view.

        Follows the generic protocol's ``select_view``: append received
        descriptors (duplicates keep the youngest), then shrink back to
        capacity by removing — in order — ``heal`` oldest items, up to
        ``swap`` of the items we just sent, and finally random items.
        """
        for descriptor in received:
            existing = self._entries.get(descriptor.address)
            if existing is None or descriptor.age < existing.age:
                self._entries[descriptor.address] = descriptor

        overflow = len(self._entries) - self.capacity
        if overflow <= 0:
            return

        # H: heal — drop the oldest entries first.
        for _ in range(min(heal, overflow)):
            oldest = max(self._entries.values(),
                         key=lambda d: (d.age, d.address))
            del self._entries[oldest.address]
        overflow = len(self._entries) - self.capacity

        # S: swap — drop entries we pushed to the peer (they hold them now).
        if overflow > 0:
            for descriptor in sent[:swap]:
                if overflow <= 0:
                    break
                if descriptor.address in self._entries:
                    del self._entries[descriptor.address]
                    overflow -= 1

        # Random removal for whatever is still over.
        while len(self._entries) > self.capacity:
            victim = rng.choice(sorted(self._entries))
            del self._entries[victim]
