"""Distributed causal tracing across relays, the engine and gossip.

PR 1's tracer sees a protected search only from the originating
client: relay and engine work hides inside opaque ``net.send`` /
``net.recv`` gaps. This module adds the three pieces that turn those
gaps into a causal, multi-node trace **without** leaking the very
correlation CYCLOSA exists to defeat:

- :class:`TraceContext` — a W3C-traceparent-style context
  (``00-<trace_id>-<parent span id, 16 hex>-<path, 2 hex>``). The
  context travels **inside the sealed record** (enclave to enclave,
  §V-C), so a passive observer of the wire never sees a trace id; the
  telemetry audit (:mod:`repro.obs.audit`) asserts exactly that.
- :class:`SpanRouter` — one bounded span sink per participating node
  (relays, the engine front-end, gossip peers). Remote spans carry a
  ``node`` attribute and land in their emitter's sink, which is how a
  real deployment would ship them (per-host agents), and what keeps
  one busy relay from evicting everyone else's spans.
- :func:`assemble` — merge the per-node sinks plus the client's sink
  into one causal tree for a trace id, with cross-node parentage
  resolved through the propagated contexts.

Privacy rules every emitter follows (enforced by the audit):

- span attributes never carry query text — only
  :func:`query_hash_bucket` buckets;
- no attribute distinguishes the real query's path from a fake's
  (no ``is_fake`` / ``token`` / ``true_user`` keys);
- the context string is identical in shape for real and fake records,
  so sealed sizes match (records are envelope-padded anyway).

This module deliberately imports nothing above
:mod:`repro.obs.trace`, so the enclave and transport layers can use
the codec without cycles.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import Span, Tracer, TraceSink

#: Traceparent version tag (the only version this repo emits).
TRACEPARENT_VERSION = "00"

#: Ring-buffer capacity of each per-node sink.
DEFAULT_NODE_SINK_CAPACITY = 2048

#: Buckets for :func:`query_hash_bucket` — coarse enough that the
#: bucket of a query reveals ~6 bits, never the text.
QUERY_HASH_BUCKETS = 64


def query_hash_bucket(text: str, buckets: int = QUERY_HASH_BUCKETS) -> int:
    """A stable, salted hash bucket standing in for query text.

    Span attributes must never carry plaintext queries (the audit
    forbids it); a bucket keeps traces diffable across runs while
    revealing at most ``log2(buckets)`` bits. ``hashlib`` rather than
    ``hash()`` so seeded runs stay byte-deterministic across processes.
    """
    digest = hashlib.sha256(b"repro.obs.qbucket:" + text.encode("utf-8"))
    return int.from_bytes(digest.digest()[:4], "big") % buckets


@dataclass(frozen=True)
class TraceContext:
    """Propagated trace context: where a remote span should attach."""

    trace_id: str
    parent_span_id: int
    #: Which of the k+1 fan-out legs this context belongs to (0-based);
    #: retries continue the numbering past k.
    path: int = 0

    def to_traceparent(self) -> str:
        """``00-<trace_id>-<span id hex16>-<path hex2>``."""
        return (f"{TRACEPARENT_VERSION}-{self.trace_id}-"
                f"{self.parent_span_id:016x}-{self.path:02x}")

    def child(self, parent_span_id: int) -> "TraceContext":
        """The same path, re-parented (hop-by-hop propagation)."""
        return TraceContext(trace_id=self.trace_id,
                            parent_span_id=parent_span_id, path=self.path)

    @classmethod
    def from_traceparent(cls, value: Any) -> Optional["TraceContext"]:
        """Parse; returns ``None`` for anything malformed (a Byzantine
        peer controls this field, so parsing never raises)."""
        if not isinstance(value, str) or value.count("-") < 3:
            return None
        head, span_hex, path_hex = value.rsplit("-", 2)
        version, _, trace_id = head.partition("-")
        if version != TRACEPARENT_VERSION or not trace_id:
            return None
        try:
            return cls(trace_id=trace_id,
                       parent_span_id=int(span_hex, 16),
                       path=int(path_hex, 16))
        except ValueError:
            return None


class SpanRouter:
    """Per-node bounded span sinks (the deployment's 'span agents')."""

    def __init__(self,
                 capacity_per_node: int = DEFAULT_NODE_SINK_CAPACITY) -> None:
        self.capacity_per_node = capacity_per_node
        self._sinks: Dict[str, TraceSink] = {}

    def sink(self, node: str) -> TraceSink:
        existing = self._sinks.get(node)
        if existing is None:
            existing = TraceSink(self.capacity_per_node)
            self._sinks[node] = existing
        return existing

    def record(self, node: str, span: Span) -> None:
        self.sink(node).record(span)

    def nodes(self) -> List[str]:
        return list(self._sinks)

    def all_spans(self) -> List[Span]:
        """Every remote span, grouped by node (insertion order)."""
        out: List[Span] = []
        for sink in self._sinks.values():
            out.extend(sink)
        return out

    def spans_for_trace(self, trace_id: str) -> List[Span]:
        return [s for s in self.all_spans() if s.trace_id == trace_id]

    @property
    def dropped(self) -> int:
        return sum(sink.dropped for sink in self._sinks.values())

    def clear(self) -> None:
        self._sinks.clear()

    def __len__(self) -> int:
        return sum(len(sink) for sink in self._sinks.values())


# -- remote span helpers -------------------------------------------------


def open_remote_span(tracer: Tracer, name: str, ctx: TraceContext, *,
                     node: str, span_id: Optional[int] = None,
                     attributes: Optional[Dict[str, Any]] = None) -> Span:
    """Open a span on *node* joined to the propagated *ctx*.

    Bypasses the tracer's context-manager stack on purpose: remote
    spans parent to the context that arrived in the sealed record, not
    to whatever the local node happens to be doing.
    """
    merged: Dict[str, Any] = {"node": node, "path": ctx.path}
    if attributes:
        merged.update(attributes)
    return Span(
        name=name, trace_id=ctx.trace_id,
        span_id=span_id if span_id is not None else tracer.reserve_span_id(),
        parent_id=ctx.parent_span_id, start=tracer.clock.now(),
        attributes=merged)


def close_remote_span(router: SpanRouter, node: str, span: Span,
                      end_time: Optional[float] = None,
                      clock=None) -> Span:
    """Finish a remote span and record it in *node*'s sink."""
    if span.end is None:
        if end_time is not None:
            span.end = end_time
        elif clock is not None:
            span.end = clock.now()
        else:
            span.end = span.start
        if span.end < span.start:
            span.end = span.start
        router.record(node, span)
    return span


# -- assembly ------------------------------------------------------------


@dataclass
class AssembledTrace:
    """One causal trace merged across every participant's sink."""

    trace_id: str
    spans: List[Span] = field(default_factory=list)
    #: Spans whose parent id resolves to no collected span (their
    #: parent was evicted, or never finished).
    orphans: List[Span] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        self._children: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent_id, []).append(span)

    @property
    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    def span(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def children(self, span: Span) -> List[Span]:
        return list(self._children.get(span.span_id, ()))

    def parent(self, span: Span) -> Optional[Span]:
        if span.parent_id is None:
            return None
        return self._by_id.get(span.parent_id)

    def by_node(self) -> Dict[str, List[Span]]:
        """Spans grouped by emitting node (client spans under the root
        span's ``node`` attribute, or ``"local"``)."""
        client = "local"
        root = self.root
        if root is not None:
            client = str(root.attributes.get("node", client))
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans:
            node = str(span.attributes.get("node", client))
            grouped.setdefault(node, []).append(span)
        return grouped

    def by_path(self) -> Dict[int, List[Span]]:
        """Path-tagged spans grouped by fan-out leg."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            path = span.attributes.get("path")
            if isinstance(path, int):
                grouped.setdefault(path, []).append(span)
        return grouped

    @property
    def nodes(self) -> List[str]:
        return sorted(self.by_node())

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)


def assemble(trace_id: str, *sources: Iterable[Span]) -> AssembledTrace:
    """Merge finished spans of *trace_id* from any number of sinks.

    Sources are iterables of :class:`Span` (the client's
    ``tracer.sink``, ``router.all_spans()``, a parsed JSONL dump, ...).
    Duplicate span ids (a span recorded in two sinks) keep the first
    copy. Spans are ordered by ``(start, span_id)``, so a seeded run
    assembles byte-identically.
    """
    seen: Dict[int, Span] = {}
    for source in sources:
        for span in source:
            if span.trace_id != trace_id or not span.finished:
                continue
            seen.setdefault(span.span_id, span)
    ordered = sorted(seen.values(), key=lambda s: (s.start, s.span_id))
    known = set(seen)
    orphans = [s for s in ordered
               if s.parent_id is not None and s.parent_id not in known]
    return AssembledTrace(trace_id=trace_id, spans=ordered, orphans=orphans)


def assemble_all(*sources: Iterable[Span]) -> Dict[str, AssembledTrace]:
    """Assemble every trace id present in *sources*, oldest first.

    Standalone traces (gossip exchanges, ``churn.departure`` events)
    appear alongside the per-search trees, which is what the Chrome
    exporter renders as one deployment-wide timeline.
    """
    ids: Dict[str, None] = {}
    collected: List[Span] = []
    for source in sources:
        for span in source:
            collected.append(span)
            ids.setdefault(span.trace_id, None)
    return {trace_id: assemble(trace_id, collected) for trace_id in ids}


def trace_sources(obs_state) -> List[Iterable[Span]]:
    """The standard source list for :func:`assemble`: the client sink
    plus every per-node sink of *obs_state* (an ``ObsState``)."""
    return [obs_state.tracer.sink.spans, obs_state.router.all_spans()]
