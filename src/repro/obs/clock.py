"""Clock abstraction: one ``now()`` for both execution modes.

Every latency figure in the repository is measured in *simulated*
seconds (the discrete-event loop), but the observability layer must
also work when instrumented code runs outside a simulation (unit
tests, the overhead micro-benchmark, future real deployments). A
:class:`Clock` hides the difference:

- :class:`SimulatedClock` reads ``Simulator.now`` — span timestamps
  line up exactly with the event loop, so traces of a simulated run
  are bit-for-bit deterministic given a seed.
- :class:`WallClock` reads :func:`time.perf_counter` — monotonic
  wall-clock time for code running outside any simulator.

The tracer and registry never call ``time.time()`` directly; they only
ever see a :class:`Clock`.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol signature
        ...


class WallClock:
    """Monotonic wall-clock time (``time.perf_counter``)."""

    __slots__ = ()

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock:
    """Reads the discrete-event simulator's clock.

    Duck-typed on purpose: anything exposing a ``now`` attribute or
    property (``repro.net.simulator.Simulator`` does) works, which
    keeps ``repro.obs`` free of dependencies on the network layer.
    """

    __slots__ = ("_source",)

    def __init__(self, source) -> None:
        if not hasattr(source, "now"):
            raise TypeError("simulated clock source must expose `.now`")
        self._source = source

    def now(self) -> float:
        return self._source.now


class ManualClock:
    """A hand-advanced clock for deterministic unit tests."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
