"""Exporters: JSON-lines trace dumps and Prometheus text snapshots.

Both formats are meant for machines first:

- ``trace_to_jsonl`` writes one JSON object per finished span;
  ``parse_trace_jsonl`` reads them back into :class:`Span` objects, so
  a dumped trace can be re-analysed (or diffed across runs) without the
  process that produced it.
- ``prometheus_snapshot`` renders every instrument of a
  :class:`MetricsRegistry` in the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` plus samples; histograms expand to
  cumulative ``_bucket{le=...}`` series with ``_sum`` and ``_count``).
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span

# -- traces ------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "attributes": span.attributes,
    }


def trace_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per span, newline-delimited."""
    return "\n".join(
        json.dumps(span_to_dict(span), sort_keys=True) for span in spans)


def parse_trace_jsonl(text: str) -> List[Span]:
    """Inverse of :func:`trace_to_jsonl`."""
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        spans.append(Span(
            name=record["name"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start=record["start"],
            end=record.get("end"),
            attributes=record.get("attributes") or {}))
    return spans


# -- Chrome trace-event format -----------------------------------------


def chrome_trace(spans: Iterable[Span], trace_id: Optional[str] = None) -> str:
    """Render spans as Chrome trace-event JSON (``chrome://tracing``,
    Perfetto, speedscope).

    Layout decisions:

    - every emitting node becomes a *process* (``pid``), named via
      ``process_name`` metadata events — relays line up as parallel
      swimlanes;
    - within a node, the fan-out leg (``path`` attribute) becomes the
      *thread* (``tid``), so the k+1 legs stack instead of overlap;
    - spans are complete-events (``ph": "X"``) with microsecond
      ``ts``/``dur`` (simulated seconds scale cleanly).

    Duplicate span ids (one span present in two sinks) are emitted
    once; output is deterministic (sorted events, sorted keys) so
    seeded runs diff cleanly.
    """
    nodes: List[str] = []
    deduped: List[Span] = []
    seen_ids = set()
    for span in spans:
        if not span.finished or span.span_id in seen_ids:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        seen_ids.add(span.span_id)
        deduped.append(span)
        node = str(span.attributes.get("node", "local"))
        if node not in nodes:
            nodes.append(node)
    nodes.sort()
    pids = {node: index for index, node in enumerate(nodes)}

    events: List[dict] = []
    for node in nodes:
        events.append({
            "args": {"name": node},
            "name": "process_name",
            "ph": "M",
            "pid": pids[node],
            "tid": 0,
        })
    for span in deduped:
        node = str(span.attributes.get("node", "local"))
        path = span.attributes.get("path")
        args = {key: value for key, value in sorted(span.attributes.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["trace_id"] = span.trace_id
        events.append({
            "args": args,
            "cat": span.trace_id,
            "dur": round(span.duration * 1e6, 3),
            "name": span.name,
            "ph": "X",
            "pid": pids[node],
            "tid": path if isinstance(path, int) else 0,
            "ts": round(span.start * 1e6, 3),
        })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0),
                               e["pid"], e["tid"], e["name"]))
    return json.dumps({"displayTimeUnit": "ms", "traceEvents": events},
                      sort_keys=True, indent=2)


# -- metrics -----------------------------------------------------------


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape(value: str) -> str:
    """Inverse of :func:`_escape` (left-to-right escape scanning)."""
    out: List[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
                index += 2
                continue
            if nxt == '"':
                out.append('"')
                index += 2
                continue
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def sample_key(name: str, labels=()) -> str:
    """Canonical ``name{label="value",...}`` key for one sample.

    Accepts a dict or an iterable of ``(key, value)`` pairs; labels are
    sorted so the key is stable however the caller assembled them. This
    is the key format :func:`parse_prometheus` returns and the
    time-series layer uses for per-window series.
    """
    if isinstance(labels, dict):
        pairs = sorted(labels.items())
    else:
        pairs = sorted(labels)
    return f"{name}{_labels_text(tuple(pairs))}"


def parse_sample_name(key: str) -> Tuple[str, Dict[str, str]]:
    """Split a sample key back into ``(name, labels)``.

    Inverse of :func:`sample_key`: label values are unescaped, so keys
    built from values containing backslashes, quotes or newlines
    round-trip exactly.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed sample key: {key!r}")
    name = key[:brace]
    body = key[brace + 1:-1]
    labels: Dict[str, str] = {}
    index = 0
    while index < len(body):
        eq = body.find("=", index)
        if eq < 0 or eq + 1 >= len(body) or body[eq + 1] != '"':
            raise ValueError(f"malformed label pair in: {key!r}")
        label = body[index:eq]
        cursor = eq + 2
        raw: List[str] = []
        while cursor < len(body):
            char = body[cursor]
            if char == "\\" and cursor + 1 < len(body):
                raw.append(body[cursor:cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        if cursor >= len(body):
            raise ValueError(f"unterminated label value in: {key!r}")
        labels[label] = _unescape("".join(raw))
        index = cursor + 1
        if index < len(body):
            if body[index] != ",":
                raise ValueError(f"malformed label separator in: {key!r}")
            index += 1
    return name, labels


def _labels_text(labels, extra: Optional[dict] = None) -> str:
    pairs = [f'{key}="{_escape(str(value))}"' for key, value in labels]
    if extra:
        pairs += [f'{key}="{_escape(str(value))}"'
                  for key, value in extra.items()]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_snapshot(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    emitted_header = set()
    for metric in registry.collect():
        if metric.name not in emitted_header:
            emitted_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{_labels_text(metric.labels)} "
                         f"{_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            for bound, count in metric.bucket_counts():
                le = "+Inf" if bound == math.inf else _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labels_text(metric.labels, {'le': le})} {count}")
            lines.append(f"{metric.name}_sum{_labels_text(metric.labels)} "
                         f"{repr(float(metric.sum))}")
            lines.append(f"{metric.name}_count{_labels_text(metric.labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _openmetrics_family(name: str, kind: str) -> str:
    """OpenMetrics family name: counters drop the ``_total`` suffix."""
    if kind == "counter" and name.endswith("_total"):
        return name[:-len("_total")]
    return name


def openmetrics_snapshot(registry: MetricsRegistry) -> str:
    """The registry in OpenMetrics text format.

    Sibling of :func:`prometheus_snapshot` with the two compliance
    deltas OpenMetrics parsers actually check: counter *families* drop
    the ``_total`` suffix in ``# TYPE`` lines (samples keep it), and
    the exposition ends with the mandatory ``# EOF`` terminator.
    """
    lines: List[str] = []
    emitted_header = set()
    for metric in registry.collect():
        family = _openmetrics_family(metric.name, metric.kind)
        if metric.name not in emitted_header:
            emitted_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {family} {metric.help}")
            lines.append(f"# TYPE {family} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{_labels_text(metric.labels)} "
                         f"{_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            for bound, count in metric.bucket_counts():
                le = "+Inf" if bound == math.inf else _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labels_text(metric.labels, {'le': le})} {count}")
            lines.append(f"{metric.name}_sum{_labels_text(metric.labels)} "
                         f"{repr(float(metric.sum))}")
            lines.append(f"{metric.name}_count{_labels_text(metric.labels)} "
                         f"{metric.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse a snapshot back into ``{sample_name{labels}: value}``.

    A convenience for round-trip tests and quick assertions — not a
    full exposition-format parser (no exemplars, no timestamps).
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        value = math.inf if raw == "+Inf" else float(raw)
        samples[key] = value
    return samples
