"""Exporters: JSON-lines trace dumps and Prometheus text snapshots.

Both formats are meant for machines first:

- ``trace_to_jsonl`` writes one JSON object per finished span;
  ``parse_trace_jsonl`` reads them back into :class:`Span` objects, so
  a dumped trace can be re-analysed (or diffed across runs) without the
  process that produced it.
- ``prometheus_snapshot`` renders every instrument of a
  :class:`MetricsRegistry` in the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` plus samples; histograms expand to
  cumulative ``_bucket{le=...}`` series with ``_sum`` and ``_count``).
"""

from __future__ import annotations

import json
import math
from typing import Iterable, List, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span

# -- traces ------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "attributes": span.attributes,
    }


def trace_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per span, newline-delimited."""
    return "\n".join(
        json.dumps(span_to_dict(span), sort_keys=True) for span in spans)


def parse_trace_jsonl(text: str) -> List[Span]:
    """Inverse of :func:`trace_to_jsonl`."""
    spans: List[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        spans.append(Span(
            name=record["name"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start=record["start"],
            end=record.get("end"),
            attributes=record.get("attributes") or {}))
    return spans


# -- Chrome trace-event format -----------------------------------------


def chrome_trace(spans: Iterable[Span], trace_id: Optional[str] = None) -> str:
    """Render spans as Chrome trace-event JSON (``chrome://tracing``,
    Perfetto, speedscope).

    Layout decisions:

    - every emitting node becomes a *process* (``pid``), named via
      ``process_name`` metadata events — relays line up as parallel
      swimlanes;
    - within a node, the fan-out leg (``path`` attribute) becomes the
      *thread* (``tid``), so the k+1 legs stack instead of overlap;
    - spans are complete-events (``ph": "X"``) with microsecond
      ``ts``/``dur`` (simulated seconds scale cleanly).

    Duplicate span ids (one span present in two sinks) are emitted
    once; output is deterministic (sorted events, sorted keys) so
    seeded runs diff cleanly.
    """
    nodes: List[str] = []
    deduped: List[Span] = []
    seen_ids = set()
    for span in spans:
        if not span.finished or span.span_id in seen_ids:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        seen_ids.add(span.span_id)
        deduped.append(span)
        node = str(span.attributes.get("node", "local"))
        if node not in nodes:
            nodes.append(node)
    nodes.sort()
    pids = {node: index for index, node in enumerate(nodes)}

    events: List[dict] = []
    for node in nodes:
        events.append({
            "args": {"name": node},
            "name": "process_name",
            "ph": "M",
            "pid": pids[node],
            "tid": 0,
        })
    for span in deduped:
        node = str(span.attributes.get("node", "local"))
        path = span.attributes.get("path")
        args = {key: value for key, value in sorted(span.attributes.items())}
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["trace_id"] = span.trace_id
        events.append({
            "args": args,
            "cat": span.trace_id,
            "dur": round(span.duration * 1e6, 3),
            "name": span.name,
            "ph": "X",
            "pid": pids[node],
            "tid": path if isinstance(path, int) else 0,
            "ts": round(span.start * 1e6, 3),
        })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0),
                               e["pid"], e["tid"], e["name"]))
    return json.dumps({"displayTimeUnit": "ms", "traceEvents": events},
                      sort_keys=True, indent=2)


# -- metrics -----------------------------------------------------------


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels, extra: Optional[dict] = None) -> str:
    pairs = [f'{key}="{_escape(str(value))}"' for key, value in labels]
    if extra:
        pairs += [f'{key}="{_escape(str(value))}"'
                  for key, value in extra.items()]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_snapshot(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    emitted_header = set()
    for metric in registry.collect():
        if metric.name not in emitted_header:
            emitted_header.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{metric.name}{_labels_text(metric.labels)} "
                         f"{_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            for bound, count in metric.bucket_counts():
                le = "+Inf" if bound == math.inf else _format_value(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labels_text(metric.labels, {'le': le})} {count}")
            lines.append(f"{metric.name}_sum{_labels_text(metric.labels)} "
                         f"{repr(float(metric.sum))}")
            lines.append(f"{metric.name}_count{_labels_text(metric.labels)} "
                         f"{metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict:
    """Parse a snapshot back into ``{sample_name{labels}: value}``.

    A convenience for round-trip tests and quick assertions — not a
    full exposition-format parser (no exemplars, no timestamps).
    """
    samples: dict = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        value = math.inf if raw == "+Inf" else float(raw)
        samples[key] = value
    return samples
