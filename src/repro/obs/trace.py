"""Lightweight nested spans with per-query trace ids.

A :class:`Span` is one named interval with attributes; spans form a
tree via ``parent_id`` under a shared ``trace_id`` (one trace per
protected search). The API supports two styles:

- ``with tracer.span("sensitivity"):`` — for synchronous code; nesting
  is tracked on an explicit stack, so inner spans are parented
  automatically.
- ``span = tracer.start_span(...)`` / ``tracer.end_span(span)`` — for
  event-driven code where begin and end live in different simulator
  callbacks (the fan-out/response path of a CYCLOSA query). The
  modelled cost of a stage can be recorded exactly by passing
  ``end_time=span.start + cost``.

Finished spans land in a bounded :class:`TraceSink` (a ring buffer:
old traces are evicted, never unbounded growth); the sink counts what
it dropped. Instrumented call sites check a single ``enabled`` flag
before touching any of this, so the disabled overhead is one attribute
read per potential span.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.clock import Clock, WallClock

DEFAULT_SINK_CAPACITY = 4096


@dataclass
class Span:
    """One timed interval in a trace tree."""

    name: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, attributes: Dict[str, Any]) -> None:
        self.attributes.update(attributes)


class TraceSink:
    """Bounded in-memory store of finished spans (newest win)."""

    def __init__(self, capacity: int = DEFAULT_SINK_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("sink capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque = deque()
        self.dropped = 0

    def record(self, span: Span) -> None:
        if len(self._spans) >= self.capacity:
            self._spans.popleft()
            self.dropped += 1
        self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def for_trace(self, trace_id: str) -> List[Span]:
        """Spans of one trace, in completion order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids present, oldest first."""
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)


class NullSink:
    """Discards everything (the disabled default)."""

    capacity = 0
    dropped = 0

    def record(self, span: Span) -> None:
        pass

    @property
    def spans(self) -> List[Span]:
        return []

    def for_trace(self, trace_id: str) -> List[Span]:
        return []

    def trace_ids(self) -> List[str]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[Span]:
        return iter(())


class Tracer:
    """Creates spans against one clock and one sink."""

    def __init__(self, clock: Optional[Clock] = None,
                 sink: Optional[TraceSink] = None) -> None:
        self.clock = clock or WallClock()
        self.sink = sink if sink is not None else TraceSink()
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._stack: List[Span] = []

    # -- explicit API (event-driven code) ------------------------------

    def new_trace_id(self) -> str:
        return f"trace-{next(self._trace_ids):06d}"

    def reserve_span_id(self) -> int:
        """Allocate a span id without opening a span.

        Distributed propagation needs the id *before* the span exists:
        the enclave embeds ``parent_span_id`` in a sealed record, and
        the matching span is only constructed once the record has been
        unwrapped on the far side (:mod:`repro.obs.distributed`).
        """
        return next(self._span_ids)

    def start_span(self, name: str, parent: Optional[Span] = None,
                   trace_id: Optional[str] = None,
                   attributes: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span.

        Parenting: an explicit *parent* wins; otherwise the innermost
        context-manager span (if any); otherwise the span roots a new
        trace (or joins *trace_id* when given).
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        if parent is not None:
            trace = parent.trace_id
            parent_id: Optional[int] = parent.span_id
        else:
            trace = trace_id or self.new_trace_id()
            parent_id = None
        return Span(
            name=name, trace_id=trace, span_id=next(self._span_ids),
            parent_id=parent_id, start=self.clock.now(),
            attributes=dict(attributes) if attributes else {})

    def end_span(self, span: Span, end_time: Optional[float] = None) -> Span:
        """Close a span and record it.

        *end_time* overrides the clock — event-driven stages use it to
        stamp a modelled duration (``span.start + cost``) that the
        simulator will only realise later.
        """
        if span.end is not None:
            return span  # idempotent: double-close is a no-op
        span.end = self.clock.now() if end_time is None else end_time
        if span.end < span.start:
            span.end = span.start
        self.sink.record(span)
        return span

    # -- context-manager API (synchronous code) ------------------------

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any):
        """``with tracer.span("stage"):`` — nested spans auto-parent."""
        opened = self.start_span(name, parent=parent, attributes=attributes)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            self.end_span(opened)

    @property
    def current(self) -> Optional[Span]:
        """The innermost context-manager span, if any."""
        return self._stack[-1] if self._stack else None
