"""Per-stage latency breakdown of a protected search.

The CYCLOSA client pipeline emits six stage spans per query (§IV
steps, in order)::

    sensitivity → adaptive_k → fake_generation → fanout → engine
    → response_filtering

``stage_breakdown`` folds the spans of one trace into one row per
stage (a stage can occur more than once — e.g. a retried ``engine``
leg after a relay timeout — so rows carry a count and summed
duration); ``format_breakdown`` renders the table ``repro search
--trace`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.trace import Span

#: Canonical pipeline order; extra span names sort after these, by
#: first start time.
PIPELINE_STAGES = (
    "sensitivity",
    "adaptive_k",
    "fake_generation",
    "fanout",
    "engine",
    "response_filtering",
)

ROOT_SPAN = "search"


@dataclass
class StageTiming:
    """Aggregate of every span sharing one stage name in a trace."""

    stage: str
    start: float
    duration: float
    count: int = 1
    attributes: Dict[str, Any] = field(default_factory=dict)


def stage_breakdown(spans: Iterable[Span],
                    trace_id: Optional[str] = None) -> List[StageTiming]:
    """One :class:`StageTiming` per stage name, in pipeline order.

    Considers only finished, non-root spans of *trace_id* (or of all
    traces when ``None`` — useful for aggregating a whole run).
    """
    rows: Dict[str, StageTiming] = {}
    for span in spans:
        if trace_id is not None and span.trace_id != trace_id:
            continue
        if span.name == ROOT_SPAN or not span.finished:
            continue
        row = rows.get(span.name)
        if row is None:
            rows[span.name] = StageTiming(
                stage=span.name, start=span.start, duration=span.duration,
                attributes=dict(span.attributes))
        else:
            row.start = min(row.start, span.start)
            row.duration += span.duration
            row.count += 1
            row.attributes.update(span.attributes)

    def order(row: StageTiming):
        try:
            return (0, PIPELINE_STAGES.index(row.stage))
        except ValueError:
            return (1, row.start)

    return sorted(rows.values(), key=order)


def split_engine_service(rows: List[StageTiming], spans: Iterable[Span],
                         trace_id: Optional[str] = None
                         ) -> List[StageTiming]:
    """Split the real leg's round trip into engine service vs relay path.

    The client-side ``engine`` stage span measures the real record's
    *full* round trip — client → relay → engine → relay → client — and
    the real leg's ``path`` span covers the same interval, so the two
    rows used to report the same number and neither isolated the
    engine. The engine's own ``engine.serve`` remote span (shipped back
    through the span router) carries the authoritative service time;
    given it, this helper rewrites the rows in place:

    - ``engine``   := the serve span's duration (service time);
    - ``path``     := round trip − service (relay hops + network).

    *spans* must include the remote spans (``sink.spans`` +
    ``router.all_spans()``, or an assembled trace's spans). Rows are
    returned unchanged when either row is missing or the real leg
    cannot be identified (an untraced run). When the leg is known but
    carries **no** ``engine.serve`` span — a timeout, an engine crash,
    or a replica running unobserved — the split degrades to path-only:
    the ``path`` row keeps the full round trip, the ``engine`` row
    drops to zero with ``status="no-serve-span"``, so the two rows
    never alias the same interval even when service time is unknown.
    """
    by_name = {row.stage: row for row in rows}
    engine_row, path_row = by_name.get("engine"), by_name.get("path")
    if engine_row is None or path_row is None:
        return rows
    # The real leg's index: the finished local "path" span through the
    # same relay the "engine" span recorded.
    relay = engine_row.attributes.get("relay")
    leg = None
    for span in spans:
        if (span.name == "path" and span.finished
                and (trace_id is None or span.trace_id == trace_id)
                and span.attributes.get("relay") == relay):
            leg = span.attributes.get("path")
            break
    if leg is None:
        return rows
    service = None
    for span in spans:
        if (span.name == "engine.serve" and span.finished
                and (trace_id is None or span.trace_id == trace_id)
                and span.attributes.get("path") == leg):
            service = span.duration
            break
    if service is None:
        # The round trip happened but the engine never reported serving
        # it: all we can honestly attribute is the path. Zeroing the
        # engine row (instead of leaving both rows at the round trip)
        # keeps duration sums correct for the degraded trace.
        engine_row.duration = 0.0
        engine_row.attributes["status"] = "no-serve-span"
        return rows
    if service > engine_row.duration:
        return rows
    path_row.duration = engine_row.duration - service
    engine_row.duration = service
    return rows


def root_span(spans: Iterable[Span],
              trace_id: Optional[str] = None) -> Optional[Span]:
    """The finished ``search`` root of *trace_id*, if present."""
    for span in spans:
        if span.name != ROOT_SPAN or not span.finished:
            continue
        if trace_id is None or span.trace_id == trace_id:
            return span
    return None


def _attr_notes(attributes: Dict[str, Any]) -> str:
    keep = []
    for key in ("k", "semantic_sensitive", "linkability", "records",
                "relay", "status", "timeout"):
        if key in attributes:
            value = attributes[key]
            if isinstance(value, float):
                value = f"{value:.3f}"
            keep.append(f"{key}={value}")
    return " ".join(keep)


def format_breakdown(rows: List[StageTiming],
                     total: Optional[float] = None,
                     t0: Optional[float] = None) -> str:
    """Render the stage table.

    *total* is the end-to-end latency (the root span's duration) used
    for the percentage column; *t0* anchors the relative start column
    (defaults to the earliest stage start).
    """
    if not rows:
        return "(no stage spans recorded — was observability enabled?)"
    if t0 is None:
        t0 = min(row.start for row in rows)
    if total is None or total <= 0:
        total = sum(row.duration for row in rows) or 1.0
    header = (f"{'stage':<20} {'start':>10} {'duration':>12} "
              f"{'share':>7}  notes")
    lines = [header, "-" * len(header)]
    for row in rows:
        share = 100.0 * row.duration / total if total else 0.0
        name = row.stage if row.count == 1 else f"{row.stage} (x{row.count})"
        lines.append(
            f"{name:<20} {row.start - t0:>9.3f}s {row.duration * 1000:>10.3f}ms "
            f"{share:>6.1f}%  {_attr_notes(row.attributes)}")
    lines.append(f"{'end-to-end':<20} {'':>10} {total * 1000:>10.3f}ms "
                 f"{100.0:>6.1f}%")
    return "\n".join(lines)
