"""Declarative SLOs over windowed series, with burn-rate alerting.

Wally frames private search as an SLO problem — throughput and latency
targets that must hold *while* load, churn and faults evolve. This
module turns the windows produced by
:class:`~repro.obs.timeseries.TimeSeriesRecorder` into a verdict:

- an :class:`SloSpec` is a list of rules, each of which reduces one
  window to ``(good, bad)`` event counts:

  * :class:`SuccessRateSlo` — label-partitioned counter deltas
    (e.g. ``search_results_total{status=...}`` with ``ok`` good);
  * :class:`LatencyQuantileSlo` — ``p_q(histogram) <= threshold``,
    counted as events under/over the threshold via the per-window
    bucket deltas (so the math is byte-deterministic);
  * :class:`BoundedGaugeSlo` — a boundary sample must stay within a
    bound (backlog, queue depth);

- evaluation applies the SRE *multi-window burn-rate* test: the error
  budget is ``1 - target``; a window alerts when the budget is being
  consumed at ≥ ``factor``× the sustainable rate over both a short
  and a long trailing range of windows (short catches onset, long
  suppresses one-window blips);
- the per-run verdict is ``"ok"`` unless any rule alerted, in which
  case the report carries the merged alerting window ranges — "when
  it started going wrong", not just "it went wrong".

Everything here is pure window arithmetic: no clocks, no registry
access, no imports outside ``repro.obs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import parse_sample_name
from repro.obs.timeseries import Window

#: Burn rates are capped at this value when reported — an exhausted
#: budget (target of 1.0 with any bad event) would otherwise be +Inf,
#: which canonical JSON cannot carry.
BURN_CAP = 1e6

#: Decimal places in report dictionaries.
ROUND_DIGITS = 6


@dataclass(frozen=True)
class BurnRatePolicy:
    """Multi-window burn-rate alerting parameters.

    A window alerts when the error budget burns at ``factor``× the
    sustainable rate over both the trailing ``short_windows`` and the
    trailing ``long_windows`` ranges (both including the window
    itself). Defaults suit 10 s windows: 3 windows (30 s) to catch
    onset quickly, 12 windows (2 min) to ignore single-window blips.
    """

    short_windows: int = 3
    long_windows: int = 12
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError("need 1 <= short_windows <= long_windows")
        if self.factor <= 0:
            raise ValueError("factor must be positive")


class SloRule:
    """Base: one objective reduced to per-window good/bad events."""

    name: str
    target: float

    def window_events(self, window: Window) -> Optional[Tuple[float, float]]:
        """``(good, bad)`` for one window, or ``None`` when the window
        carries no data for this rule (no events → no budget burned)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SuccessRateSlo(SloRule):
    """``good / (good + bad) >= target`` over a labelled counter family.

    Partitions the per-window deltas of *counter* by *status_label*:
    values in *ok_statuses* are good events, everything else is bad.
    """

    name: str
    target: float
    counter: str = "cyclosa_core_search_results_total"
    status_label: str = "status"
    ok_statuses: Tuple[str, ...] = ("ok",)

    def window_events(self, window: Window) -> Optional[Tuple[float, float]]:
        good = 0.0
        bad = 0.0
        seen = False
        for key, delta in window.counters.items():
            family, labels = parse_sample_name(key)
            if family != self.counter:
                continue
            seen = True
            if labels.get(self.status_label) in self.ok_statuses:
                good += delta
            else:
                bad += delta
        if not seen or good + bad <= 0:
            return None
        return good, bad

    def describe(self) -> str:
        ok = "|".join(self.ok_statuses)
        return (f"success_rate({self.counter}, {self.status_label}={ok})"
                f" >= {self.target}")


@dataclass(frozen=True)
class LatencyQuantileSlo(SloRule):
    """``p_q(histogram) <= threshold_seconds`` per window.

    Counted as good/bad events against the per-window bucket deltas:
    an observation under the threshold is good, over is bad, and the
    quantile target *q* becomes the success-rate target — p99 under
    threshold is exactly "99% of events are good".
    """

    name: str
    histogram: str
    threshold_seconds: float
    q: float = 0.99

    @property
    def target(self) -> float:  # type: ignore[override]
        return self.q

    def window_events(self, window: Window) -> Optional[Tuple[float, float]]:
        hist = window.histograms.get(self.histogram)
        if hist is None or hist.count <= 0:
            return None
        good = hist.events_under(self.threshold_seconds)
        good = min(good, hist.count)
        return good, hist.count - good

    def describe(self) -> str:
        from repro.obs.timeseries import _quantile_label

        return (f"{_quantile_label(self.q)}({self.histogram})"
                f" <= {self.threshold_seconds}s")


@dataclass(frozen=True)
class BoundedGaugeSlo(SloRule):
    """A boundary-sampled gauge must stay ``<= bound`` (target 1.0).

    With a zero error budget the burn-rate test degenerates to "alert
    on any excursion within the short range" — right for invariants
    like "backlog stays bounded".
    """

    name: str
    gauge: str
    bound: float
    target: float = 1.0

    def window_events(self, window: Window) -> Optional[Tuple[float, float]]:
        value = window.gauges.get(self.gauge)
        if value is None:
            return None
        return (1.0, 0.0) if value <= self.bound else (0.0, 1.0)

    def describe(self) -> str:
        return f"{self.gauge} <= {self.bound}"


@dataclass(frozen=True)
class SloSpec:
    """A named set of rules evaluated together over one run."""

    name: str
    rules: Tuple[SloRule, ...]
    policy: BurnRatePolicy = field(default_factory=BurnRatePolicy)


@dataclass(frozen=True)
class RuleReport:
    """One rule's evaluation across the whole retained series."""

    rule: str
    objective: str
    target: float
    good: float
    bad: float
    attained: float  #: overall good fraction (1.0 when no events)
    max_burn: float  #: peak short∧long burn rate observed
    violating_windows: Tuple[int, ...]  #: windows whose own rate missed target
    alert_ranges: Tuple[Tuple[int, int], ...]  #: merged [first, last] indices
    verdict: str  #: "ok" | "breached"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "objective": self.objective,
            "target": round(self.target, ROUND_DIGITS),
            "good": round(self.good, ROUND_DIGITS),
            "bad": round(self.bad, ROUND_DIGITS),
            "attained": round(self.attained, ROUND_DIGITS),
            "max_burn": round(self.max_burn, ROUND_DIGITS),
            "violating_windows": list(self.violating_windows),
            "alert_ranges": [list(pair) for pair in self.alert_ranges],
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class SloReport:
    """The terminal health verdict for one run."""

    spec: str
    windows: int
    rules: Tuple[RuleReport, ...]
    verdict: str  #: "ok" | "breached"

    @property
    def healthy(self) -> bool:
        return self.verdict == "ok"

    def rule(self, name: str) -> RuleReport:
        for report in self.rules:
            if report.rule == name:
                return report
        raise KeyError(name)

    def to_dict(self) -> dict:
        return {
            "spec": self.spec,
            "windows": self.windows,
            "rules": [report.to_dict() for report in self.rules],
            "verdict": self.verdict,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def _burn(good: float, bad: float, budget: float) -> float:
    """Budget-consumption rate of one trailing range (capped)."""
    total = good + bad
    if total <= 0:
        return 0.0
    error_rate = bad / total
    if budget <= 0:
        return BURN_CAP if error_rate > 0 else 0.0
    return min(error_rate / budget, BURN_CAP)


def _evaluate_rule(rule: SloRule, windows: Sequence[Window],
                   policy: BurnRatePolicy) -> RuleReport:
    events: List[Optional[Tuple[float, float]]] = [
        rule.window_events(window) for window in windows]
    budget = 1.0 - rule.target

    violating: List[int] = []
    alerting: List[int] = []
    max_burn = 0.0
    for position, window in enumerate(windows):
        pair = events[position]
        if pair is not None:
            good, bad = pair
            if good + bad > 0 and good / (good + bad) < rule.target:
                violating.append(window.index)

        def trailing(width: int) -> Tuple[float, float]:
            lo = max(0, position - width + 1)
            good_sum = 0.0
            bad_sum = 0.0
            for row in events[lo:position + 1]:
                if row is not None:
                    good_sum += row[0]
                    bad_sum += row[1]
            return good_sum, bad_sum

        short_burn = _burn(*trailing(policy.short_windows), budget)
        long_burn = _burn(*trailing(policy.long_windows), budget)
        burn = min(short_burn, long_burn)  # both ranges must be hot
        max_burn = max(max_burn, burn)
        if burn >= policy.factor:
            alerting.append(window.index)

    total_good = sum(row[0] for row in events if row is not None)
    total_bad = sum(row[1] for row in events if row is not None)
    attained = (total_good / (total_good + total_bad)
                if total_good + total_bad > 0 else 1.0)
    return RuleReport(
        rule=rule.name,
        objective=rule.describe(),
        target=rule.target,
        good=total_good,
        bad=total_bad,
        attained=attained,
        max_burn=max_burn,
        violating_windows=tuple(violating),
        alert_ranges=_merge_ranges(alerting),
        verdict="breached" if alerting else "ok")


def _merge_ranges(indices: Sequence[int]) -> Tuple[Tuple[int, int], ...]:
    """Sorted window indices → merged inclusive ``(first, last)`` runs."""
    ranges: List[Tuple[int, int]] = []
    for index in indices:
        if ranges and index == ranges[-1][1] + 1:
            ranges[-1] = (ranges[-1][0], index)
        else:
            ranges.append((index, index))
    return tuple(ranges)


def evaluate_slo(spec: SloSpec, windows: Sequence[Window]) -> SloReport:
    """Evaluate every rule of *spec* over *windows*.

    Pure and deterministic: the same windows always produce the same
    report, so same-seed runs yield byte-identical ``to_json()``.
    """
    reports = tuple(_evaluate_rule(rule, windows, spec.policy)
                    for rule in spec.rules)
    verdict = "ok" if all(r.verdict == "ok" for r in reports) else "breached"
    return SloReport(spec=spec.name, windows=len(windows),
                     rules=reports, verdict=verdict)


def format_slo_report(report: SloReport) -> str:
    """A compact terminal rendering of the verdict."""
    lines = [f"SLO spec {report.spec!r}: {report.verdict.upper()} "
             f"({report.windows} windows)"]
    for rule in report.rules:
        mark = "PASS" if rule.verdict == "ok" else "FAIL"
        lines.append(
            f"  [{mark}] {rule.rule}: {rule.objective}  "
            f"attained={rule.attained:.4f} target={rule.target:.4f} "
            f"max_burn={rule.max_burn:.2f}")
        if rule.alert_ranges:
            spans = ", ".join(f"windows {lo}..{hi}"
                              for lo, hi in rule.alert_ranges)
            lines.append(f"         burn-rate alerts: {spans}")
    return "\n".join(lines)


__all__ = [
    "BURN_CAP",
    "BoundedGaugeSlo",
    "BurnRatePolicy",
    "LatencyQuantileSlo",
    "RuleReport",
    "SloReport",
    "SloRule",
    "SloSpec",
    "SuccessRateSlo",
    "evaluate_slo",
    "format_slo_report",
]
