"""Telemetry privacy audit: observability must not weaken CYCLOSA.

Naive distributed tracing would *break* the system under study: a
plaintext trace id on the wire tags the real query across hops — the
exact linkability CYCLOSA defeats and SimAttack-style adversaries
exploit. This module is the dynamic check that our telemetry does not
hand the adversary anything the protocol hides:

1. **Wire privacy** (:func:`audit_wire_metadata`) — over a
   :class:`repro.net.trace.MessageTrace` capture (the passive
   adversary's view), assert no trace id and no query text appears in
   any wire-visible byte: message kinds, addresses, plaintext payload
   encodings, and the sealed ciphertexts themselves (a buggy
   implementation could prepend a plaintext header).
2. **Span hygiene** (:func:`audit_span_attributes`) — no span
   attribute carries query text (only hash buckets) and none uses a
   key that marks realness (``is_fake``, ``token``, ``true_user``...).
3. **Path indistinguishability**
   (:func:`audit_path_indistinguishability`) — within one assembled
   trace, the spans emitted by *other* nodes (relays, engine) for the
   real query's leg must be shape-identical to every fake leg: same
   span names, same attribute keys. An adversary reading the
   telemetry stream learns which relay did work, never which leg
   carried the real query.

4. **Cache indistinguishability**
   (:func:`audit_cache_indistinguishability`) — the engine tier's
   result cache must not leak *popularity*: a wiretap comparing two
   identically-seeded deployments — one caching, one not — over the
   same hit-heavy workload must record the exact same transmission
   sequence (kind, endpoints, size, timestamp). The cache only saves
   ranking CPU; anything it changed on the wire would tell the
   adversary which queries were asked before.

5. **Profile output hygiene** (:func:`audit_profile_output`) — the
   deterministic profiler's collapsed stacks and attribution JSON must
   contain *code locations only*: every frame matches the
   ``module:qualname`` shape, every attribution bucket is a known
   subsystem name, and no output line contains query text or a
   per-user identifier. Profiles are meant to be committed and diffed
   in CI — they must be shareable without leaking what anyone
   searched.

:func:`run_telemetry_audit` drives the first three against a live
deployment; ``benchmarks/check_obs_leak.py`` wires all five into CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.distributed import AssembledTrace, assemble
from repro.obs.trace import Span

# The sink lists live in the shared registry (repro.obs.sinks) so this
# runtime audit and the static taint pass (repro.lint.taint) can never
# drift apart; re-exported here for backwards compatibility.
from repro.obs.sinks import FORBIDDEN_ATTRIBUTE_KEYS, PATH_SCOPED_SPANS


@dataclass(frozen=True)
class AuditViolation:
    """One observed leak."""

    check: str      # "wire" | "span-attr" | "path-shape" | "cache-wire"
                    # | "profile-output"
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


@dataclass
class AuditReport:
    """Outcome of a telemetry audit run."""

    violations: List[AuditViolation] = field(default_factory=list)
    messages_scanned: int = 0
    spans_scanned: int = 0
    traces_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"telemetry privacy audit: {verdict}",
            f"  wire messages scanned : {self.messages_scanned}",
            f"  spans scanned         : {self.spans_scanned}",
            f"  traces shape-checked  : {self.traces_checked}",
            f"  violations            : {len(self.violations)}",
        ]
        lines.extend(f"    - {violation}" for violation in self.violations)
        return "\n".join(lines)


# -- 1. wire privacy -----------------------------------------------------


def _wire_images(record) -> List[bytes]:
    """Every byte string of *record* a passive adversary can read."""
    images = [record.kind.encode("utf-8"),
              record.src.encode("utf-8"),
              record.dst.encode("utf-8")]
    wire_image = getattr(record, "wire_image", None)
    if wire_image:
        images.append(bytes(wire_image))
    return images


def audit_wire_metadata(records: Iterable[Any],
                        trace_ids: Sequence[str],
                        queries: Sequence[str],
                        scanned: Optional[List[int]] = None
                        ) -> List[AuditViolation]:
    """Scan captured transmissions for trace ids and query text.

    *records* is anything iterable of
    :class:`repro.net.trace.TracedMessage`-shaped objects; capture
    them with ``MessageTrace(network, capture_plaintext=True)`` so
    plaintext payload encodings are available for scanning.
    """
    needles: List[Tuple[str, bytes]] = []
    for trace_id in trace_ids:
        if trace_id:
            needles.append((f"trace id {trace_id!r}",
                            trace_id.encode("utf-8")))
    for query in queries:
        if query:
            needles.append((f"query text {query!r}",
                            query.encode("utf-8")))
    violations: List[AuditViolation] = []
    count = 0
    for record in records:
        count += 1
        for image in _wire_images(record):
            for label, needle in needles:
                if needle in image:
                    violations.append(AuditViolation(
                        "wire",
                        f"{label} visible in {record.kind!r} "
                        f"{record.src}->{record.dst}"))
    if scanned is not None:
        scanned.append(count)
    return violations


# -- 2. span attribute hygiene -------------------------------------------


def audit_span_attributes(spans: Iterable[Span],
                          queries: Sequence[str],
                          scanned: Optional[List[int]] = None
                          ) -> List[AuditViolation]:
    """No forbidden keys; no attribute value contains query text."""
    texts = [q for q in queries if q]
    violations: List[AuditViolation] = []
    count = 0
    for span in spans:
        count += 1
        for key, value in span.attributes.items():
            if key in FORBIDDEN_ATTRIBUTE_KEYS:
                violations.append(AuditViolation(
                    "span-attr",
                    f"span {span.name!r} carries forbidden "
                    f"attribute {key!r}"))
            if isinstance(value, str):
                for text in texts:
                    if text in value:
                        violations.append(AuditViolation(
                            "span-attr",
                            f"span {span.name!r} attribute {key!r} "
                            f"contains query text {text!r}"))
    if scanned is not None:
        scanned.append(count)
    return violations


# -- 3. real/fake path indistinguishability ------------------------------


def _path_shape(spans: List[Span]) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
    """The comparable shape of one leg: sorted (name, attribute keys)."""
    return tuple(sorted(
        (span.name, tuple(sorted(span.attributes)))
        for span in spans))


def audit_path_indistinguishability(trace: AssembledTrace
                                    ) -> List[AuditViolation]:
    """Remote spans of every fan-out leg must be shape-identical.

    Only spans emitted by nodes *other than* the originating client
    count: the client knows its own query (its local spans may mark
    the real leg's ``engine`` round trip), but nothing relays or the
    engine emit may differ between the real and a fake leg.
    """
    root = trace.root
    client = str(root.attributes.get("node", "local")) if root else "local"
    legs: Dict[int, List[Span]] = {}
    for span in trace.spans:
        if span.name not in PATH_SCOPED_SPANS:
            continue
        if str(span.attributes.get("node", client)) == client:
            continue
        path = span.attributes.get("path")
        if isinstance(path, int):
            legs.setdefault(path, []).append(span)
    if len(legs) < 2:
        return []  # k=0 (or untraced): nothing to distinguish
    shapes = {path: _path_shape(spans) for path, spans in legs.items()}
    reference_path = min(shapes)
    reference = shapes[reference_path]
    violations: List[AuditViolation] = []
    for path, shape in sorted(shapes.items()):
        if shape != reference:
            violations.append(AuditViolation(
                "path-shape",
                f"trace {trace.trace_id}: leg {path} span shape "
                f"differs from leg {reference_path} "
                f"({shape} != {reference})"))
    return violations


# -- 4. cache indistinguishability ---------------------------------------


def wire_fingerprint(records: Iterable[Any]
                     ) -> List[Tuple[str, str, str, int, float]]:
    """The adversary-comparable identity of a captured transmission
    sequence: ordered ``(kind, src, dst, size_bytes, time)`` tuples.
    Timestamps are rounded to the nanosecond, far below anything the
    simulator's latency models resolve."""
    return [(record.kind, record.src, record.dst, record.size_bytes,
             round(record.time, 9)) for record in records]


def audit_cache_indistinguishability(make_deployment,
                                     queries: Sequence[str],
                                     drain_seconds: float = 60.0,
                                     mismatch_limit: int = 5
                                     ) -> AuditReport:
    """Cache hits must be invisible to a passive wiretap.

    *make_deployment* is a factory ``(with_cache: bool) -> deployment``
    building two deployments that differ **only** in whether the engine
    tier caches (same seed, same topology, same config otherwise).
    Both are driven through the same *queries* (make them repetitive —
    a cache-defeating workload audits nothing) and their full wiretap
    captures are compared as exact ordered sequences: every message's
    kind, endpoints, wire size and timestamp must match. Equality here
    is the strongest possible indistinguishability — the two runs are
    the same random process, so the cache provably drew nothing from
    the RNG and injected, dropped, resized or reordered nothing.
    """
    from repro.net.trace import MessageTrace  # lazy: avoids cycles

    def observe(deployment) -> List[Tuple[str, str, str, int, float]]:
        with MessageTrace(deployment.network) as tap:
            for index, query in enumerate(queries):
                deployment.node(index % len(deployment.nodes)).search(query)
            deployment.run(drain_seconds)
        return wire_fingerprint(tap)

    cached = observe(make_deployment(True))
    uncached = observe(make_deployment(False))

    report = AuditReport()
    report.messages_scanned = len(cached) + len(uncached)
    if len(cached) != len(uncached):
        report.violations.append(AuditViolation(
            "cache-wire",
            f"caching changed the transmission count: "
            f"{len(cached)} cached vs {len(uncached)} uncached"))
    mismatches = 0
    for index, (hit, miss) in enumerate(zip(cached, uncached)):
        if hit != miss:
            mismatches += 1
            if mismatches <= mismatch_limit:
                report.violations.append(AuditViolation(
                    "cache-wire",
                    f"transmission {index} differs under caching: "
                    f"{hit} != {miss}"))
    if mismatches > mismatch_limit:
        report.violations.append(AuditViolation(
            "cache-wire",
            f"... and {mismatches - mismatch_limit} further mismatches"))
    return report


# -- 5. profile output hygiene -------------------------------------------


def audit_profile_output(collapsed: str, attribution: dict,
                         queries: Sequence[str],
                         identities: Sequence[str] = (),
                         scanned: Optional[List[int]] = None
                         ) -> List[AuditViolation]:
    """Prove a profile contains only code locations.

    *collapsed* is the collapsed-stack text
    (:meth:`~repro.obs.profile.DeterministicProfiler.collapsed_stacks`)
    and *attribution* the matching
    :meth:`~repro.obs.profile.DeterministicProfiler.attribution` dict.
    Three properties are checked:

    - every frame of every stack line matches the strict
      ``module:qualname`` code-location shape (argument values, query
      strings or f-string'd identifiers cannot survive this filter);
    - no output line contains any of *queries* or *identities* as a
      substring (defence in depth on top of the shape check);
    - every attribution bucket is a known subsystem name.
    """
    from repro.obs.profile import (CODE_LOCATION_RE, KNOWN_SUBSYSTEMS,
                                   OVERFLOW_FRAME)

    needles = [text for text in (*queries, *identities) if text]
    violations: List[AuditViolation] = []
    count = 0
    for line_no, line in enumerate(collapsed.splitlines(), start=1):
        if not line:
            continue
        count += 1
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            violations.append(AuditViolation(
                "profile-output",
                f"line {line_no} is not `stack count`: {line!r}"))
            continue
        for frame in stack_text.split(";"):
            if frame != OVERFLOW_FRAME and not CODE_LOCATION_RE.match(frame):
                violations.append(AuditViolation(
                    "profile-output",
                    f"line {line_no} frame is not a code location: "
                    f"{frame!r}"))
        for needle in needles:
            if needle in line:
                violations.append(AuditViolation(
                    "profile-output",
                    f"line {line_no} contains sensitive text "
                    f"{needle!r}"))
    allowed = KNOWN_SUBSYSTEMS | {"other", "stdlib"}
    for bucket in attribution.get("subsystems", {}):
        if bucket not in allowed:
            violations.append(AuditViolation(
                "profile-output",
                f"attribution bucket {bucket!r} is not a known "
                f"subsystem"))
    attribution_text = str(sorted(attribution.get("subsystems", {})))
    for needle in needles:
        if needle in attribution_text:
            violations.append(AuditViolation(
                "profile-output",
                f"attribution contains sensitive text {needle!r}"))
    if scanned is not None:
        scanned.append(count)
    return violations


# -- the full dynamic audit ----------------------------------------------


def run_telemetry_audit(deployment, queries: Sequence[str],
                        drain_seconds: float = 60.0) -> AuditReport:
    """Drive *queries* through *deployment* under a wiretap, then audit.

    The deployment must have been created with ``observe=True``.
    Searches rotate across client nodes; after the last result the
    simulator drains so every fake leg's response (and span) lands.
    """
    from repro import obs
    from repro.net.trace import MessageTrace  # lazy: avoids cycles

    report = AuditReport()
    trace_ids: List[str] = []
    with MessageTrace(deployment.network, capture_plaintext=True) as tap:
        for index, query in enumerate(queries):
            user = deployment.node(index % len(deployment.nodes))
            result = user.search(query)
            if result.trace_id is not None:
                trace_ids.append(result.trace_id)
        deployment.run(drain_seconds)

    state = obs.OBS
    spans = list(state.tracer.sink.spans) + state.router.all_spans()

    wire_count: List[int] = []
    span_count: List[int] = []
    report.violations.extend(audit_wire_metadata(
        tap, trace_ids, queries, scanned=wire_count))
    report.violations.extend(audit_span_attributes(
        spans, queries, scanned=span_count))
    for trace_id in trace_ids:
        assembled = assemble(trace_id, spans)
        report.violations.extend(
            audit_path_indistinguishability(assembled))
    report.messages_scanned = wire_count[0] if wire_count else 0
    report.spans_scanned = span_count[0] if span_count else 0
    report.traces_checked = len(trace_ids)
    return report
