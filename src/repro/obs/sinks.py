"""The shared sink registry: one definition of "adversary-visible".

CYCLOSA's privacy argument is checked twice in this repository:

- **at runtime** by :mod:`repro.obs.audit`, which wiretaps a live
  deployment and scans everything the adversary can observe, and
- **statically** by :mod:`repro.lint.taint`, which tracks query-text
  data flow over the AST of every module and flags flows into the same
  observation points without running anything.

Both checks are only as good as their list of *sinks* — the calls and
attribute keys through which data becomes wire-visible or
log-visible. If the two lists could drift apart, a new telemetry
surface could be added that the static pass knows about but the
runtime audit does not (or vice versa), and the weaker list would
silently win. This module is therefore the single source of truth;
``tests/lint/test_sinks_registry.py`` asserts both consumers use
these exact objects.

Nothing here imports anything outside the standard library, so both
low layers (``repro.net.trace``) and the analysis tooling can depend
on it without cycles.
"""

from __future__ import annotations

# -- span / metric attribute hygiene --------------------------------------

#: Attribute keys that would mark a span as belonging to the real (or
#: a fake) query's path, or leak protocol secrets outright. The
#: runtime audit rejects spans carrying them; the static pass rejects
#: literal uses of them in span-attribute expressions.
FORBIDDEN_ATTRIBUTE_KEYS = frozenset({
    "is_fake", "is_real", "real", "fake", "token", "true_user",
    "query", "query_text", "text", "plaintext",
})

#: Span names scoped to one fan-out leg; the runtime
#: indistinguishability check compares their shapes across the k+1
#: paths of one protected search.
PATH_SCOPED_SPANS = frozenset({
    "path", "relay.forward", "relay.unwrap", "relay.respond",
    "engine.serve", "sgx.ecall", "sgx.ocall",
})

# -- wire egress ----------------------------------------------------------

#: The method :class:`repro.net.trace.MessageTrace` hooks to capture
#: every transmission — the runtime definition of "on the wire".
RUNTIME_WIRE_TAP = "send"

#: Call names whose arguments reach the (simulated) wire: the
#: transport egress surface (``Network.send``, ``NetNode.send``,
#: ``NetNode.request``, ``RequestContext.respond``) plus the canonical
#: payload encoder. The static taint pass treats a query-text flow
#: into any of these, outside enclave-trusted scope, as a leak. The
#: runtime tap point must be (and is asserted to be) a member.
WIRE_EGRESS_CALLS = frozenset({
    RUNTIME_WIRE_TAP, "request", "respond",
})

#: ``repro.net.wire.encode`` — payloads pass through here on their way
#: to the wire when they are not already sealed bytes. Referenced as
#: ``<module>.<func>`` by the static pass.
WIRE_ENCODER = ("wire", "encode")

# -- log-visible sinks ----------------------------------------------------

#: Logger method names (on ``logging``/``logger``-like receivers)
#: whose message arguments end up in log files.
LOG_METHOD_CALLS = frozenset({
    "debug", "info", "warning", "warn", "error", "critical",
    "exception", "log",
})

#: Receiver names the static pass recognises as loggers.
LOG_RECEIVER_NAMES = frozenset({"logging", "logger", "log", "LOGGER", "LOG"})

# -- telemetry sinks ------------------------------------------------------

#: Span-attribute writers: ``Span.set_attribute(key, value)`` and
#: ``Span.set_attributes({...})``.
SPAN_ATTRIBUTE_CALLS = frozenset({"set_attribute", "set_attributes"})

#: Span factories accepting an ``attributes=`` mapping.
SPAN_FACTORY_CALLS = frozenset({"start_span", "open_remote_span"})

#: Metric factories whose label keyword arguments become label values
#: in the Prometheus snapshot.
METRIC_FACTORY_CALLS = frozenset({"counter", "gauge", "histogram"})
