"""Counters, gauges and fixed-bucket histograms behind one registry.

Naming convention (enforced nowhere, followed everywhere):
``cyclosa_<layer>_<name>``, e.g. ``cyclosa_sgx_ecalls_total`` or
``cyclosa_net_bytes_total``. Counters end in ``_total``; histograms of
seconds end in ``_seconds``.

A metric is identified by ``(name, sorted labels)``; asking the
registry for the same identity returns the same instrument, so hot
paths can call ``registry.counter(...)`` per event without
double-registering. Histograms keep cumulative fixed buckets for the
Prometheus exporter *plus* a bounded reservoir of recent raw samples;
percentiles come from :func:`repro.metrics.latencystats.percentile`
over that reservoir, so the numbers printed by the obs layer and by
the Fig 8 benches agree by construction.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

# NOTE: repro.metrics.latencystats is imported lazily inside
# Histogram.percentile/summary — importing it at module scope would
# pull the repro.metrics package (and through it baselines → core →
# sgx) back into repro.obs, which every layer imports.

#: Default buckets for second-valued histograms: spans the microsecond
#: SGX costs up to the multi-second end-to-end latencies of Fig 8a.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0)

#: Raw samples retained per histogram for percentile math (a ring of
#: the most recent observations — bounded, like every obs store).
RESERVOIR_SIZE = 4096

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity of every instrument."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels: LabelSet = _labelset(labels or {})


class Counter(Metric):
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(Metric):
    """Fixed-bucket histogram with a bounded raw-sample reservoir."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS,
                 labels: Optional[Dict[str, str]] = None) -> None:
        super().__init__(name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self._reservoir: deque = deque(maxlen=RESERVOIR_SIZE)

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self._bucket_counts[index] += 1
        self.sum += value
        self.count += 1
        self._reservoir.append(value)

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        cumulative = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, self._bucket_counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + self._bucket_counts[-1]))
        return out

    @property
    def samples(self) -> List[float]:
        """The retained raw observations (most recent RESERVOIR_SIZE)."""
        return list(self._reservoir)

    def percentile(self, q: float) -> float:
        """The *q*-quantile of the retained samples
        (:func:`repro.metrics.latencystats.percentile`)."""
        from repro.metrics.latencystats import percentile

        return percentile(self.samples, q)

    def summary(self):
        """Summary row (a :class:`repro.metrics.latencystats.LatencySummary`)
        via :func:`repro.metrics.latencystats.summarize`."""
        from repro.metrics.latencystats import summarize

        return summarize(self.samples)


class MetricsRegistry:
    """Process-global home of every instrument.

    ``counter``/``gauge``/``histogram`` get-or-create, so hot paths can
    look an instrument up on every event. Creating the same name with a
    different kind raises — one name, one meaning.

    Pull-model sources (e.g. the text-pipeline caches of
    :mod:`repro.text.cache`, whose counters are plain integers with no
    obs coupling) register a *collector* — a callable invoked with the
    registry at the start of every :meth:`collect`, so snapshots always
    reflect the source's current totals without the source paying any
    hot-path cost.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _get_or_create(self, cls, name: str, help: str,
                       labels: Dict[str, str], **kwargs) -> Metric:
        key = (name, _labelset(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}")
            return existing
        metric = cls(name, help=help, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    # -- introspection -------------------------------------------------

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        return self._metrics.get((name, _labelset(labels)))

    def register_collector(
            self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Add a pull-time refresh hook (idempotent per callable)."""
        if fn not in self._collectors:
            self._collectors.append(fn)

    def collectors(self) -> List[Callable[["MetricsRegistry"], None]]:
        """The registered pull hooks, in registration order.

        ``obs.enable(fresh=True)`` carries these into the replacement
        registry: a collector registration is a statement about the
        *process* ("this cache exports gauges"), not about one
        measured run's counters.
        """
        return list(self._collectors)

    def collect(self) -> List[Metric]:
        """Every instrument, grouped by family name then labels.

        Registered collectors run first, so gauges backed by external
        counters (cache stats, pool sizes, ...) are refreshed in the
        same call that snapshots them."""
        for fn in list(self._collectors):
            fn(self)
        return [self._metrics[key]
                for key in sorted(self._metrics, key=lambda k: (k[0], k[1]))]

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for name, _ in sorted(self._metrics):
            seen.setdefault(name, None)
        return list(seen)

    def reset(self) -> None:
        self._metrics.clear()
        self._collectors.clear()
