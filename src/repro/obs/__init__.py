"""``repro.obs`` — the repository's single observability idiom.

End-to-end tracing (per-query spans), a process-global metrics
registry (counters / gauges / fixed-bucket histograms) and exporters
(JSON-lines traces, Prometheus text snapshots) shared by every layer:
``core``, ``sgx``, ``net``, ``searchengine``, ``gossip``, the
experiments and the CLI.

Design rules:

- **Off by default, near-zero when off.** Instrumented call sites
  guard on ``OBS.enabled`` — one attribute read — and touch nothing
  else when disabled. The ``benchmarks/test_bench_obs_overhead.py``
  micro-benchmark asserts the guard overhead on
  ``CyclosaUser.search`` stays under 5 %.
- **One clock per mode.** :func:`enable` binds the tracer to the
  discrete-event simulator when one is passed (simulated seconds) and
  to ``perf_counter`` otherwise, so traces are correct in both modes.
- **Everything bounded.** The span sink is a ring buffer; histograms
  keep a bounded reservoir; nothing here grows without limit.

Usage::

    from repro import obs

    deployment = CyclosaNetwork.create(num_nodes=16, observe=True)
    result = deployment.node(0).search("flu symptoms")
    print(obs.breakdown.format_breakdown(
        obs.breakdown.stage_breakdown(obs.OBS.tracer.sink.spans,
                                      result.trace_id)))
    print(obs.export.prometheus_snapshot(obs.OBS.registry))
"""

from __future__ import annotations

from typing import Optional

from repro.obs import breakdown, clock, export, metrics, trace
from repro.obs.breakdown import (PIPELINE_STAGES, format_breakdown,
                                 stage_breakdown)
from repro.obs.clock import Clock, ManualClock, SimulatedClock, WallClock
from repro.obs.export import (parse_prometheus, parse_trace_jsonl,
                              prometheus_snapshot, trace_to_jsonl)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.trace import NullSink, Span, Tracer, TraceSink


class ObsState:
    """The process-global observability switchboard.

    ``enabled`` is the only thing hot paths read; ``tracer`` and
    ``registry`` are only dereferenced behind that guard.
    """

    __slots__ = ("enabled", "tracer", "registry")

    def __init__(self) -> None:
        self.enabled = False
        # A disabled tracer writes to a NullSink — any stray span from
        # a race between disable() and in-flight callbacks is dropped,
        # not accumulated.
        self.tracer = Tracer(clock=WallClock(), sink=NullSink())
        self.registry = MetricsRegistry()


#: The singleton every instrumented module imports.
OBS = ObsState()


def enable(simulator=None, *, trace_capacity: int = trace.DEFAULT_SINK_CAPACITY,
           fresh: bool = True) -> ObsState:
    """Turn instrumentation on.

    Parameters
    ----------
    simulator:
        When given (anything with ``.now``, i.e. a
        :class:`repro.net.simulator.Simulator`), spans are stamped in
        simulated seconds; otherwise in wall-clock ``perf_counter``
        seconds.
    trace_capacity:
        Ring-buffer size of the span sink.
    fresh:
        Reset the registry and start a new sink (the default — one
        enable() per measured run keeps runs comparable). Pass
        ``False`` to accumulate across deployments.
    """
    source = SimulatedClock(simulator) if simulator is not None else WallClock()
    if fresh or isinstance(OBS.tracer.sink, NullSink):
        OBS.tracer = Tracer(clock=source, sink=TraceSink(trace_capacity))
    else:
        OBS.tracer.clock = source
    if fresh:
        OBS.registry = MetricsRegistry()
    OBS.enabled = True
    return OBS


def disable(*, reset: bool = False) -> None:
    """Turn instrumentation off (and optionally drop collected data)."""
    OBS.enabled = False
    if reset:
        OBS.tracer = Tracer(clock=WallClock(), sink=NullSink())
        OBS.registry = MetricsRegistry()


def is_enabled() -> bool:
    return OBS.enabled


def get_tracer() -> Tracer:
    return OBS.tracer


def get_registry() -> MetricsRegistry:
    return OBS.registry


__all__ = [
    "OBS",
    "ObsState",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "get_registry",
    # submodules
    "breakdown",
    "clock",
    "export",
    "metrics",
    "trace",
    # frequently used types/functions
    "Clock",
    "WallClock",
    "SimulatedClock",
    "ManualClock",
    "Span",
    "Tracer",
    "TraceSink",
    "NullSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PIPELINE_STAGES",
    "stage_breakdown",
    "format_breakdown",
    "trace_to_jsonl",
    "parse_trace_jsonl",
    "prometheus_snapshot",
    "parse_prometheus",
]
