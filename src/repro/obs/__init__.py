"""``repro.obs`` — the repository's single observability idiom.

End-to-end tracing (per-query spans), a process-global metrics
registry (counters / gauges / fixed-bucket histograms) and exporters
(JSON-lines traces, Prometheus text snapshots) shared by every layer:
``core``, ``sgx``, ``net``, ``searchengine``, ``gossip``, the
experiments and the CLI.

Design rules:

- **Off by default, near-zero when off.** Instrumented call sites
  guard on ``OBS.enabled`` — one attribute read — and touch nothing
  else when disabled. The ``benchmarks/test_bench_obs_overhead.py``
  micro-benchmark asserts the guard overhead on
  ``CyclosaUser.search`` stays under 5 %.
- **One clock per mode.** :func:`enable` binds the tracer to the
  discrete-event simulator when one is passed (simulated seconds) and
  to ``perf_counter`` otherwise, so traces are correct in both modes.
- **Everything bounded.** The span sink is a ring buffer; histograms
  keep a bounded reservoir; nothing here grows without limit.

Usage::

    from repro import obs

    deployment = CyclosaNetwork.create(num_nodes=16, observe=True)
    result = deployment.node(0).search("flu symptoms")
    print(obs.breakdown.format_breakdown(
        obs.breakdown.stage_breakdown(obs.OBS.tracer.sink.spans,
                                      result.trace_id)))
    print(obs.export.prometheus_snapshot(obs.OBS.registry))
"""

from __future__ import annotations

from contextlib import contextmanager as _contextmanager
from typing import Optional

from repro.obs import (audit, breakdown, clock, criticalpath, distributed,
                       export, metrics, profile, sinks, slo, timeseries,
                       trace)
from repro.obs.audit import (AuditReport, AuditViolation,
                             audit_cache_indistinguishability,
                             audit_profile_output, run_telemetry_audit)
from repro.obs.breakdown import (PIPELINE_STAGES, format_breakdown,
                                 root_span, split_engine_service,
                                 stage_breakdown)
from repro.obs.clock import Clock, ManualClock, SimulatedClock, WallClock
from repro.obs.criticalpath import (CriticalPathReport, critical_path,
                                    find_stragglers, format_report,
                                    relay_latency_summaries)
from repro.obs.distributed import (AssembledTrace, SpanRouter, TraceContext,
                                   assemble, assemble_all, close_remote_span,
                                   open_remote_span, query_hash_bucket,
                                   trace_sources)
from repro.obs.export import (chrome_trace, openmetrics_snapshot,
                              parse_prometheus, parse_sample_name,
                              parse_trace_jsonl, prometheus_snapshot,
                              sample_key, trace_to_jsonl)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.obs.profile import (DeterministicProfiler, HeapSampler,
                               chrome_trace_with_samples,
                               compare_attribution, format_attribution,
                               parse_collapsed, subsystem_of_module,
                               subsystem_of_path, top_stacks)
from repro.obs.sinks import FORBIDDEN_ATTRIBUTE_KEYS, PATH_SCOPED_SPANS
from repro.obs.slo import (BoundedGaugeSlo, BurnRatePolicy, LatencyQuantileSlo,
                           RuleReport, SloReport, SloRule, SloSpec,
                           SuccessRateSlo, evaluate_slo, format_slo_report)
from repro.obs.timeseries import (TimeSeriesRecorder, Window, WindowHistogram,
                                  openmetrics_timeseries)
from repro.obs.trace import NullSink, Span, Tracer, TraceSink


class ObsState:
    """The process-global observability switchboard.

    ``enabled`` is the only thing hot paths read; ``tracer``,
    ``registry``, ``router`` and ``remote`` are only dereferenced
    behind that guard. ``router`` holds the per-node span sinks of
    distributed tracing; ``remote`` is the propagated
    ``(node, TraceContext)`` the sgx layer tags ecall/ocall spans
    with while an enclave call runs on a context's behalf (see
    :func:`remote_context`).
    """

    __slots__ = ("enabled", "tracer", "registry", "router", "remote")

    def __init__(self) -> None:
        self.enabled = False
        # A disabled tracer writes to a NullSink — any stray span from
        # a race between disable() and in-flight callbacks is dropped,
        # not accumulated.
        self.tracer = Tracer(clock=WallClock(), sink=NullSink())
        self.registry = MetricsRegistry()
        self.router = SpanRouter()
        self.remote = None


#: The singleton every instrumented module imports.
OBS = ObsState()


def enable(simulator=None, *, trace_capacity: int = trace.DEFAULT_SINK_CAPACITY,
           fresh: bool = True) -> ObsState:
    """Turn instrumentation on.

    Parameters
    ----------
    simulator:
        When given (anything with ``.now``, i.e. a
        :class:`repro.net.simulator.Simulator`), spans are stamped in
        simulated seconds; otherwise in wall-clock ``perf_counter``
        seconds.
    trace_capacity:
        Ring-buffer size of the span sink.
    fresh:
        Reset the registry and start a new sink (the default — one
        enable() per measured run keeps runs comparable). Pass
        ``False`` to accumulate across deployments.
    """
    source = SimulatedClock(simulator) if simulator is not None else WallClock()
    if fresh or isinstance(OBS.tracer.sink, NullSink):
        OBS.tracer = Tracer(clock=source, sink=TraceSink(trace_capacity))
    else:
        OBS.tracer.clock = source
    if fresh:
        # Counters reset per measured run, but pull-based collectors
        # (text-cache gauges, wiretap exporters, ...) are process-level
        # registrations — carry them into the fresh registry so
        # ``repro obs --format prom`` never silently drops a family.
        replacement = MetricsRegistry()
        for collector in OBS.registry.collectors():
            replacement.register_collector(collector)
        OBS.registry = replacement
        OBS.router = SpanRouter()
        OBS.remote = None
    OBS.enabled = True
    return OBS


def disable(*, reset: bool = False) -> None:
    """Turn instrumentation off (and optionally drop collected data).

    ``reset=True`` drops *everything*, collectors included — it is the
    test-hygiene teardown, not the between-runs reset (that is
    ``enable(fresh=True)``, which keeps collectors).
    """
    OBS.enabled = False
    if reset:
        OBS.tracer = Tracer(clock=WallClock(), sink=NullSink())
        OBS.registry = MetricsRegistry()
        OBS.router = SpanRouter()
        OBS.remote = None


@_contextmanager
def remote_context(node: str, ctx):
    """Tag enclave crossings made on behalf of a propagated context.

    While active, :mod:`repro.sgx` attributes ecall/ocall spans to
    *node* with *ctx*'s trace id and path — that is how enclave
    transitions show up inside the distributed trace instead of as
    anonymous local work. No-op overhead when obs is disabled (callers
    guard on ``OBS.enabled``).
    """
    previous = OBS.remote
    OBS.remote = (node, ctx)
    try:
        yield
    finally:
        OBS.remote = previous


def is_enabled() -> bool:
    return OBS.enabled


def get_tracer() -> Tracer:
    return OBS.tracer


def get_registry() -> MetricsRegistry:
    return OBS.registry


__all__ = [
    "OBS",
    "ObsState",
    "enable",
    "disable",
    "is_enabled",
    "get_tracer",
    "get_registry",
    "remote_context",
    # submodules
    "audit",
    "breakdown",
    "clock",
    "criticalpath",
    "distributed",
    "export",
    "metrics",
    "profile",
    "sinks",
    "slo",
    "timeseries",
    "trace",
    # frequently used types/functions
    "Clock",
    "WallClock",
    "SimulatedClock",
    "ManualClock",
    "Span",
    "Tracer",
    "TraceSink",
    "NullSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PIPELINE_STAGES",
    "stage_breakdown",
    "split_engine_service",
    "format_breakdown",
    "root_span",
    "trace_to_jsonl",
    "parse_trace_jsonl",
    "prometheus_snapshot",
    "openmetrics_snapshot",
    "parse_prometheus",
    "sample_key",
    "parse_sample_name",
    "chrome_trace",
    # deterministic profiling
    "DeterministicProfiler",
    "HeapSampler",
    "chrome_trace_with_samples",
    "compare_attribution",
    "format_attribution",
    "parse_collapsed",
    "subsystem_of_module",
    "subsystem_of_path",
    "top_stacks",
    # time-series & SLOs
    "TimeSeriesRecorder",
    "Window",
    "WindowHistogram",
    "openmetrics_timeseries",
    "SloRule",
    "SloSpec",
    "SuccessRateSlo",
    "LatencyQuantileSlo",
    "BoundedGaugeSlo",
    "BurnRatePolicy",
    "RuleReport",
    "SloReport",
    "evaluate_slo",
    "format_slo_report",
    # distributed tracing
    "TraceContext",
    "SpanRouter",
    "AssembledTrace",
    "assemble",
    "assemble_all",
    "trace_sources",
    "query_hash_bucket",
    "open_remote_span",
    "close_remote_span",
    # critical path
    "CriticalPathReport",
    "critical_path",
    "format_report",
    "relay_latency_summaries",
    "find_stragglers",
    # telemetry audit + shared sink registry
    "AuditReport",
    "AuditViolation",
    "run_telemetry_audit",
    "audit_cache_indistinguishability",
    "audit_profile_output",
    "FORBIDDEN_ATTRIBUTE_KEYS",
    "PATH_SCOPED_SPANS",
]
