"""Critical-path analysis over assembled distributed traces.

Answers the question Fig 8's aggregates cannot: *which relay, and
which stage on it, bounds this search's end-to-end latency?* The paper
argues the k+1 fan-out costs little beyond one relay round trip
(§V-C); the critical path makes that claim checkable span-by-span, and
the per-relay percentiles feed the straggler detection that §VI-b's
blacklisting acts on.

Algorithm (the usual backward sweep over a span tree): starting from
the trace root's end, repeatedly charge the tail to the latest-ending
child that starts before the cursor, recurse into that child, and move
the cursor to its start. Time no child explains is the span's *self
time* — for a ``relay.forward`` span that is exactly the network
flight to and from the engine plus queueing, which is why the report
separates it out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.distributed import AssembledTrace
from repro.obs.trace import Span

_EPS = 1e-12

#: Span names whose ``node`` attribute can name the bounding relay.
_RELAY_SPANS = ("relay.forward", "relay.unwrap", "relay.respond")


@dataclass
class Segment:
    """One critical-path entry: a span and the time only it explains."""

    span: Span
    self_time: float
    depth: int = 0

    @property
    def node(self) -> str:
        return str(self.span.attributes.get("node", "local"))


@dataclass
class CriticalPathReport:
    """The critical path of one assembled trace."""

    trace_id: str
    total: float
    segments: List[Segment] = field(default_factory=list)
    #: The relay on the critical path — the peer that bounded this
    #: search's latency (the real query's relay, unless a retry moved
    #: the path).
    bounding_relay: Optional[str] = None
    #: Fan-out leg -> client-observed round-trip seconds (``path``
    #: span durations); fakes included, which is what exposes a
    #: straggler even when it only carried a fake.
    path_latencies: Dict[int, float] = field(default_factory=dict)
    #: The leg with the largest round trip and its relay.
    slowest_path: Optional[int] = None
    slowest_relay: Optional[str] = None


def critical_path(trace: AssembledTrace) -> CriticalPathReport:
    """Compute the critical path of *trace* (must have a root)."""
    root = trace.root
    if root is None or not root.finished:
        return CriticalPathReport(trace_id=trace.trace_id, total=0.0)
    report = CriticalPathReport(trace_id=trace.trace_id,
                                total=root.duration)
    _sweep(trace, root, root.end, 0, report.segments)

    for segment in report.segments:
        if report.bounding_relay is None and segment.span.name in _RELAY_SPANS:
            report.bounding_relay = segment.node

    for span in trace.spans:
        if span.name != "path":
            continue
        path = span.attributes.get("path")
        if not isinstance(path, int):
            continue
        report.path_latencies[path] = max(
            span.duration, report.path_latencies.get(path, 0.0))
        if (report.slowest_path is None
                or span.duration >= report.path_latencies.get(
                    report.slowest_path, 0.0)):
            report.slowest_path = path
            report.slowest_relay = span.attributes.get("relay")
    return report


def _sweep(trace: AssembledTrace, span: Span, upto: float, depth: int,
           segments: List[Segment]) -> None:
    """Backward sweep: charge ``(span.start, upto)`` to children, then
    append *span* with whatever time was left unexplained."""
    cursor = min(span.end, upto)
    window_start = span.start
    children = [c for c in trace.children(span) if c.finished]
    picked: List[Span] = []
    covered = 0.0
    while True:
        best: Optional[Span] = None
        for child in children:
            if child.start >= cursor - _EPS:
                continue
            if best is None or child.end > best.end or (
                    child.end == best.end and child.start > best.start):
                best = child
        if best is None:
            break
        covered += max(0.0, min(best.end, cursor) - best.start)
        picked.append(best)
        cursor = max(window_start, best.start)
        children = [c for c in children if c is not best]
        if cursor <= window_start + _EPS:
            break
    self_time = max(0.0, (min(span.end, upto) - span.start) - covered)
    segments.append(Segment(span=span, self_time=self_time, depth=depth))
    for child in reversed(picked):  # chronological order
        _sweep(trace, child, min(child.end, upto), depth + 1, segments)


def format_report(report: CriticalPathReport) -> str:
    """Render the critical path the way ``repro obs --format critical``
    prints it."""
    if not report.segments:
        return "(no finished root span — was the search traced?)"
    total = report.total or 1.0
    header = (f"critical path for {report.trace_id} "
              f"({report.total * 1000:.3f} ms end-to-end):")
    lines = [header]
    for segment in report.segments:
        share = 100.0 * segment.self_time / total
        indent = "  " * (segment.depth + 1)
        path = segment.span.attributes.get("path")
        path_note = f" path={path}" if isinstance(path, int) else ""
        lines.append(
            f"{indent}{segment.span.name:<20} [{segment.node}]"
            f"{path_note}  self {segment.self_time * 1000:8.3f} ms"
            f"  ({share:5.1f}%)")
    if report.bounding_relay is not None:
        lines.append(f"bounding relay : {report.bounding_relay}")
    if report.slowest_path is not None:
        latency = report.path_latencies.get(report.slowest_path, 0.0)
        via = (f" via {report.slowest_relay}"
               if report.slowest_relay else "")
        lines.append(
            f"slowest leg    : path {report.slowest_path}{via} "
            f"({latency * 1000:.3f} ms round trip)")
    return "\n".join(lines)


# -- fleet-wide straggler detection --------------------------------------


def relay_latency_summaries(spans, span_name: str = "relay.forward"):
    """Per-relay latency summaries over any span iterable.

    Returns ``{node: LatencySummary}`` (see
    :func:`repro.metrics.latencystats.summarize`), usually fed with
    ``router.all_spans()`` so every relay's service-time distribution
    is visible — the input §VI-b blacklisting policies want.
    """
    from repro.metrics.latencystats import summarize  # lazy: no cycle

    durations: Dict[str, List[float]] = {}
    for span in spans:
        if span.name != span_name or not span.finished:
            continue
        node = str(span.attributes.get("node", "local"))
        durations.setdefault(node, []).append(span.duration)
    return {node: summarize(values)
            for node, values in sorted(durations.items())}


def find_stragglers(summaries, factor: float = 2.0,
                    quantile_attr: str = "p90") -> List[str]:
    """Relays whose tail latency exceeds *factor* x the fleet median.

    The return value is a candidate blacklist: §VI-b drops peers that
    fail to answer in time, and a persistent straggler is the peer
    most likely to cross that timeout next.
    """
    if not summaries:
        return []
    medians = sorted(summary.median for summary in summaries.values())
    fleet_median = medians[len(medians) // 2]
    if fleet_median <= 0.0:
        return []
    return sorted(
        node for node, summary in summaries.items()
        if getattr(summary, quantile_attr, 0.0) > factor * fleet_median)
