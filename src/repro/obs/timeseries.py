"""Windowed time-series aggregation over the metrics registry.

The registry answers "what happened overall"; soak- and scale-runs
need "when did it start going wrong". A :class:`TimeSeriesRecorder`
turns the registry's cumulative instruments into fixed-width windows
driven by the *simulated* clock:

- window boundaries sit on absolute multiples of ``window_seconds``
  (window *k* covers ``[k*w, (k+1)*w)``), so two same-seed runs flush
  at identical instants and produce byte-identical series whatever
  else is on the event heap;
- counters become per-window *deltas* (and a running cumulative
  total), gauges are sampled at the boundary, histograms yield a
  per-window count/sum delta plus quantiles interpolated from the
  fixed cumulative buckets — *not* from the bounded raw reservoir,
  whose contents depend on how much traffic preceded the window;
- retention is a bounded ring (:data:`DEFAULT_RETENTION` windows);
  evictions are counted, never silent.

The recorder is pull-based: it never touches instrument hot paths, it
only reads the registry at each boundary (registered collectors run as
part of that read, so pull-gauges like the PR-5 backlog bridge are
sampled too). Like :class:`~repro.obs.clock.SimulatedClock`, the
scheduler argument is duck-typed (``now``, ``schedule``,
``schedule_at``) so this module stays free of ``repro.net`` imports.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.export import _openmetrics_family, sample_key
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Windows retained by default: at 10 s windows this is a full
#: simulated day per run, far beyond any current scenario.
DEFAULT_RETENTION = 8640

#: Quantiles reported per histogram per window.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

#: Decimal places used when serialising window values — enough for
#: microsecond latencies, few enough for stable, readable JSON.
ROUND_DIGITS = 9

BucketPairs = Tuple[Tuple[float, float], ...]


def _quantile_from_buckets(buckets: BucketPairs, q: float) -> float:
    """Linear interpolation inside cumulative ``(bound, count)`` pairs.

    The same estimator as PromQL's ``histogram_quantile``: find the
    bucket where the cumulative count crosses ``q * total`` and
    interpolate within its bounds. Values beyond the last finite bound
    clamp to that bound. Deterministic by construction — it reads only
    integer bucket deltas, never the sample reservoir.
    """
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total <= 0:
        return 0.0
    target = q * total
    prev_bound = 0.0
    prev_count = 0.0
    last_finite = 0.0
    for bound, count in buckets:
        if not math.isinf(bound):
            last_finite = bound
        if count >= target:
            if math.isinf(bound):
                return last_finite if last_finite > prev_bound else prev_bound
            if count == prev_count:
                return bound
            frac = (target - prev_count) / (count - prev_count)
            return prev_bound + frac * (bound - prev_bound)
        prev_bound, prev_count = (bound if not math.isinf(bound)
                                  else prev_bound), count
    return prev_bound


@dataclass(frozen=True)
class WindowHistogram:
    """One histogram family's activity inside one window."""

    count: float
    sum: float
    buckets: BucketPairs  #: per-window cumulative (bound, delta-count)
    quantiles: Dict[str, float] = field(default_factory=dict)

    def events_under(self, threshold: float) -> float:
        """Estimated observations ``<= threshold`` in this window.

        Interpolates the cumulative bucket curve at *threshold*; the
        basis of latency-SLO good/bad event counting."""
        prev_bound = 0.0
        prev_count = 0.0
        for bound, count in self.buckets:
            if math.isinf(bound):
                return prev_count
            if threshold <= bound:
                if bound == prev_bound:
                    return count
                frac = (threshold - prev_bound) / (bound - prev_bound)
                return prev_count + frac * (count - prev_count)
            prev_bound, prev_count = bound, count
        return self.count


@dataclass(frozen=True)
class Window:
    """One fixed-width aggregation window ``[start, end)``.

    ``counters`` holds per-window deltas, ``cumulative`` the counter
    totals as of ``end``; ``gauges`` are boundary samples. All keys are
    canonical ``name{labels}`` sample keys (:func:`sample_key`).
    """

    index: int
    start: float
    end: float
    counters: Dict[str, float]
    cumulative: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, WindowHistogram]

    def to_dict(self) -> dict:
        """Deterministic JSON-ready view (sorted keys, rounded floats)."""
        return {
            "index": self.index,
            "start": round(self.start, ROUND_DIGITS),
            "end": round(self.end, ROUND_DIGITS),
            "counters": {key: round(value, ROUND_DIGITS)
                         for key, value in sorted(self.counters.items())},
            "cumulative": {key: round(value, ROUND_DIGITS)
                           for key, value in sorted(self.cumulative.items())},
            "gauges": {key: round(value, ROUND_DIGITS)
                       for key, value in sorted(self.gauges.items())},
            "histograms": {
                key: {
                    "count": round(hist.count, ROUND_DIGITS),
                    "sum": round(hist.sum, ROUND_DIGITS),
                    **{name: round(value, ROUND_DIGITS)
                       for name, value in sorted(hist.quantiles.items())},
                }
                for key, hist in sorted(self.histograms.items())
            },
        }


class TimeSeriesRecorder:
    """Flushes the registry into :class:`Window` rows at fixed boundaries.

    Parameters
    ----------
    registry:
        The :class:`MetricsRegistry` to snapshot.
    scheduler:
        Anything with ``now``, ``schedule(delay, cb)`` and
        ``schedule_at(when, cb)`` — ``repro.net.simulator.Simulator``
        in practice; duck-typed to keep the obs layer dependency-free.
    window_seconds:
        Window width; boundaries are absolute multiples of it.
    retention:
        Ring capacity in windows; older windows are evicted (counted
        in :attr:`evicted`).
    quantiles:
        Histogram quantiles computed per window.
    """

    def __init__(self, registry: MetricsRegistry, scheduler,
                 window_seconds: float = 10.0,
                 retention: int = DEFAULT_RETENTION,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        for q in quantiles:
            if not 0.0 < q <= 1.0:
                raise ValueError(f"quantile out of range: {q}")
        self.registry = registry
        self.scheduler = scheduler
        self.window_seconds = float(window_seconds)
        self.retention = int(retention)
        self.quantiles = tuple(quantiles)
        self.evicted = 0
        self._windows: Deque[Window] = deque(maxlen=self.retention)
        self._handle = None
        self._next_index: Optional[int] = None
        self._prev_counters: Dict[str, float] = {}
        self._prev_hist: Dict[str, Tuple[int, float, Tuple[int, ...]]] = {}

    # -- lifecycle -----------------------------------------------------

    @property
    def running(self) -> bool:
        return self._handle is not None

    def start(self) -> None:
        """Baseline the registry and arm the first boundary flush.

        Counter activity before ``start()`` (e.g. deployment warm-up)
        never appears in any window — the first window's deltas are
        relative to this baseline.
        """
        if self._handle is not None:
            raise RuntimeError("recorder already started")
        self._snapshot_baseline()
        now = self.scheduler.now
        self._next_index = int(math.floor(now / self.window_seconds + 1e-9))
        boundary = (self._next_index + 1) * self.window_seconds
        self._handle = self.scheduler.schedule_at(boundary, self._flush)

    def stop(self) -> None:
        """Cancel the pending flush; retained windows stay readable."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- reading -------------------------------------------------------

    @property
    def windows(self) -> List[Window]:
        return list(self._windows)

    def window_at(self, when: float) -> Optional[Window]:
        """The retained window covering simulated instant *when*."""
        index = int(math.floor(when / self.window_seconds + 1e-9))
        for window in self._windows:
            if window.index == index:
                return window
        return None

    def counter_series(self, name: str, **labels: str) -> List[Tuple[int, float]]:
        """Per-window ``(index, delta)`` pairs for one counter sample."""
        key = sample_key(name, labels)
        return [(w.index, w.counters[key])
                for w in self._windows if key in w.counters]

    def gauge_series(self, name: str, **labels: str) -> List[Tuple[int, float]]:
        """Per-window ``(index, value)`` pairs for one gauge sample."""
        key = sample_key(name, labels)
        return [(w.index, w.gauges[key])
                for w in self._windows if key in w.gauges]

    def to_dicts(self) -> List[dict]:
        return [window.to_dict() for window in self._windows]

    def to_json(self) -> str:
        """The retained series as canonical JSON (byte-identical across
        same-seed runs)."""
        return json.dumps(self.to_dicts(), sort_keys=True, indent=2)

    # -- flushing ------------------------------------------------------

    def _snapshot_baseline(self) -> None:
        self._prev_counters = {}
        self._prev_hist = {}
        for metric in self.registry.collect():
            key = sample_key(metric.name, dict(metric.labels))
            if isinstance(metric, Counter):
                self._prev_counters[key] = metric.value
            elif isinstance(metric, Histogram):
                self._prev_hist[key] = (
                    metric.count, metric.sum,
                    tuple(count for _, count in metric.bucket_counts()))

    def _flush(self) -> None:
        assert self._next_index is not None
        index = self._next_index
        self._next_index = index + 1
        start = index * self.window_seconds
        end = (index + 1) * self.window_seconds

        counters: Dict[str, float] = {}
        cumulative: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, WindowHistogram] = {}
        next_counters: Dict[str, float] = {}
        next_hist: Dict[str, Tuple[int, float, Tuple[int, ...]]] = {}

        for metric in self.registry.collect():
            key = sample_key(metric.name, dict(metric.labels))
            if isinstance(metric, Counter):
                value = metric.value
                next_counters[key] = value
                cumulative[key] = value
                counters[key] = value - self._prev_counters.get(key, 0.0)
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            elif isinstance(metric, Histogram):
                pairs = metric.bucket_counts()
                cum = tuple(count for _, count in pairs)
                prev_count, prev_sum, prev_cum = self._prev_hist.get(
                    key, (0, 0.0, (0,) * len(cum)))
                next_hist[key] = (metric.count, metric.sum, cum)
                if len(prev_cum) != len(cum):  # bucket layout changed
                    prev_count, prev_sum, prev_cum = 0, 0.0, (0,) * len(cum)
                delta_pairs: BucketPairs = tuple(
                    (bound, count - prev)
                    for (bound, _), count, prev in zip(pairs, cum, prev_cum))
                quantiles = {
                    _quantile_label(q): _quantile_from_buckets(delta_pairs, q)
                    for q in self.quantiles}
                histograms[key] = WindowHistogram(
                    count=metric.count - prev_count,
                    sum=metric.sum - prev_sum,
                    buckets=delta_pairs, quantiles=quantiles)

        self._prev_counters = next_counters
        self._prev_hist = next_hist
        if len(self._windows) == self._windows.maxlen:
            self.evicted += 1
        self._windows.append(Window(
            index=index, start=start, end=end, counters=counters,
            cumulative=cumulative, gauges=gauges, histograms=histograms))
        self._handle = self.scheduler.schedule_at(
            end + self.window_seconds, self._flush)


def _quantile_label(q: float) -> str:
    """``0.99 -> "p99"``, ``0.5 -> "p50"``, ``0.999 -> "p99.9"``."""
    scaled = q * 100.0
    if float(scaled).is_integer():
        return f"p{int(scaled)}"
    return f"p{round(scaled, 4)}"


# -- OpenMetrics export ------------------------------------------------


def openmetrics_timeseries(windows: Sequence[Window]) -> str:
    """Retained windows as OpenMetrics text with explicit timestamps.

    Counter samples carry the *cumulative* value at each window end
    (what a scraper polling the live registry at boundary instants
    would have seen); gauges carry the boundary sample; histograms are
    summarised as ``_count``/``_sum``. Families are grouped (an
    OpenMetrics requirement), samples within a family are ordered by
    label set then time, and the exposition ends with ``# EOF`` — so
    the output is byte-deterministic and loadable by standard tooling.
    """
    # family -> kind, and family -> [(key, labels_text, timestamp, value)]
    kinds: Dict[str, str] = {}
    series: Dict[str, List[Tuple[str, float, float]]] = {}

    def add(family: str, kind: str, text: str, when: float,
            value: float) -> None:
        kinds.setdefault(family, kind)
        series.setdefault(family, []).append((text, when, value))

    for window in windows:
        for key, value in window.cumulative.items():
            add(key.partition("{")[0], "counter", key, window.end, value)
        for key, value in window.gauges.items():
            add(key.partition("{")[0], "gauge", key, window.end, value)
        for key, hist in window.histograms.items():
            name, brace, rest = key.partition("{")
            labels = brace + rest
            add(name, "histogram", f"{name}_count{labels}", window.end,
                hist.count)
            add(name, "histogram", f"{name}_sum{labels}", window.end,
                hist.sum)

    lines: List[str] = []
    for family in sorted(series):
        kind = kinds[family]
        lines.append(f"# TYPE {_openmetrics_family(family, kind)} {kind}")
        for text, when, value in sorted(series[family],
                                        key=lambda row: (row[0], row[1])):
            lines.append(f"{text} {_format_number(value)} "
                         f"{_format_number(when)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _format_number(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


__all__ = [
    "DEFAULT_QUANTILES",
    "DEFAULT_RETENTION",
    "TimeSeriesRecorder",
    "Window",
    "WindowHistogram",
    "openmetrics_timeseries",
]
