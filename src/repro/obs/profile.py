"""Deterministic sampling profiler with per-subsystem attribution.

Wall-clock profilers (``cProfile`` timers, SIGPROF) produce different
output on every run — useless for diffing across seeds and commits.
This profiler samples on *interpreter event counts* instead: a
``sys.setprofile`` hook counts python ``call`` events and captures the
stack every ``sample_interval``-th one. Same seed, same code → same
call sequence → byte-identical profiles, on any machine.

What a profile contains:

- **collapsed stacks** (``frame;frame;frame count`` — the flamegraph.pl
  / speedscope "collapsed" format), frames rendered as
  ``module:qualname`` only — never argument values, query text or
  per-user identifiers (:func:`repro.obs.audit.audit_profile_output`
  proves this, and ``benchmarks/check_obs_leak.py`` gates it);
- **subsystem attribution**: each sample's leaf frame charges one
  *self* tick to its repro package (``core``, ``sgx``, ``net``,
  ``crypto``, ``searchengine``, ``gossip``, ``obs``, ...), and every
  package present anywhere in the stack gets one *cumulative* tick;
- an optional **timeline** of ``(simulated_time, leaf_subsystem)``
  pairs when a clock is supplied, merged into the span view by
  :func:`chrome_trace_with_samples`.

Heap attribution rides alongside: :class:`HeapSampler` takes
``tracemalloc`` snapshots at absolute window boundaries (the same
boundary rule as :class:`repro.obs.timeseries.TimeSeriesRecorder`) and
groups live bytes by the subsystem that allocated them. The CPU hook
is suspended while a snapshot is processed, so heap sampling never
perturbs the call-event stream — CPU profiles stay byte-identical
whether heap sampling is on or off.

Everything bounded: distinct stacks, timeline entries and heap windows
all live in capped structures with overflow counters — a pathological
workload degrades the profile, never the process.

Like the rest of ``repro.obs``, the scheduler argument is duck-typed
(``now`` / ``schedule`` / ``schedule_at``) so this module stays free
of ``repro.net`` imports, and nothing here reads a wall clock.
"""

from __future__ import annotations

import json
import math
import re
import sys
import tracemalloc
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

#: Sample every N-th python ``call`` event. 512 keeps hook overhead in
#: the low single digits while yielding thousands of samples per bench
#: scenario.
DEFAULT_SAMPLE_INTERVAL = 512

#: Stack frames captured per sample (deeper stacks are cut at the
#: root end and counted in :attr:`DeterministicProfiler.truncated`).
DEFAULT_MAX_DEPTH = 64

#: Distinct stacks retained; further novel stacks collapse into the
#: ``[overflow]`` pseudo-frame so memory stays bounded.
DEFAULT_MAX_STACKS = 20_000

#: Timeline entries retained when a clock is attached.
DEFAULT_TIMELINE_CAP = 65_536

#: Heap windows retained per :class:`HeapSampler`.
DEFAULT_HEAP_RETENTION = 1_024

#: First-level ``repro.*`` packages samples are attributed to.
#: Anything else under ``repro`` maps to ``other``; frames outside the
#: repro tree map to ``stdlib``.
KNOWN_SUBSYSTEMS = frozenset({
    "attacks", "baselines", "cli", "core", "crypto", "datasets",
    "experiments", "faults", "gossip", "lint", "metrics", "net", "obs",
    "perf", "searchengine", "sgx", "text",
})

#: Pseudo-frame charged when the distinct-stack cap is hit.
OVERFLOW_FRAME = "[overflow]"

#: Shape every emitted frame must match: ``module:qualname`` built
#: from code metadata only. The audit layer rejects anything else —
#: a frame is a code location, never data.
CODE_LOCATION_RE = re.compile(r"^[A-Za-z_][\w.]*:[\w.<>\[\]]+$")

#: Modules at which the stack walk stops (scenario entry points).
#: Cutting here makes collapsed stacks independent of *how* the
#: scenario was launched — `repro profile`, `repro perf --profile`,
#: pytest and ``benchmarks/check_profile.py`` all produce identical
#: stacks, which is what lets the gate diff against a committed
#: baseline.
DEFAULT_STACK_ROOTS = ("repro.experiments.profiling",)


def subsystem_of_module(module: str) -> str:
    """Map a dotted module name to its attribution bucket."""
    if module == "repro" or module == "repro.__main__":
        return "other"
    if module.startswith("repro."):
        package = module.split(".", 2)[1]
        return package if package in KNOWN_SUBSYSTEMS else "other"
    return "stdlib"


def subsystem_of_path(filename: str) -> str:
    """Map a source-file path (tracemalloc) to its attribution bucket."""
    parts = filename.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            rest = parts[index + 1:]
            if not rest or rest == ["__init__.py"] or rest == ["__main__.py"]:
                return "other"
            head = rest[0]
            if head.endswith(".py"):
                head = head[:-3]
            return head if head in KNOWN_SUBSYSTEMS else "other"
    return "stdlib"


class DeterministicProfiler:
    """Event-count sampling profiler (see module docstring).

    Parameters
    ----------
    sample_interval:
        Capture one stack every N python ``call`` events. Lower means
        more samples and more overhead; determinism is unaffected.
    clock:
        Optional :class:`repro.obs.clock.Clock`; when given, each
        sample is stamped (for :func:`chrome_trace_with_samples`).
        Stamps never influence *which* events are sampled.
    max_depth / max_stacks / timeline_cap:
        Bounds; see the module constants.
    stack_roots:
        Module prefixes at which the stack walk stops (the frame is
        kept, its callers are dropped), so profiles are identical no
        matter which entry point launched the scenario.
    """

    def __init__(self, sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
                 clock=None, max_depth: int = DEFAULT_MAX_DEPTH,
                 max_stacks: int = DEFAULT_MAX_STACKS,
                 timeline_cap: int = DEFAULT_TIMELINE_CAP,
                 stack_roots: Sequence[str] = DEFAULT_STACK_ROOTS) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.sample_interval = int(sample_interval)
        self.clock = clock
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self.stack_roots = tuple(stack_roots)
        self.call_events = 0
        self.samples = 0
        self.truncated = 0
        self.stack_overflows = 0
        self.active = False
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._self: Dict[str, int] = {}
        self._cum: Dict[str, int] = {}
        self._timeline: Deque[Tuple[float, str]] = deque(maxlen=timeline_cap)
        self.timeline_dropped = 0
        #: code object -> "module:qualname" memo (bounded by the number
        #: of distinct code objects the workload touches).
        self._labels: Dict[Any, str] = {}
        self._subsystems: Dict[str, str] = {}
        self._countdown = self.sample_interval

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Install the hook. Refuses to stack on a foreign profiler."""
        if self.active:
            raise RuntimeError("profiler already started")
        if sys.getprofile() is not None:
            raise RuntimeError("another profile hook is installed")
        self.active = True
        self._countdown = self.sample_interval
        sys.setprofile(self._hook)

    def stop(self) -> None:
        """Uninstall the hook; collected data stays readable."""
        if self.active:
            sys.setprofile(None)
            self.active = False

    def __enter__(self) -> "DeterministicProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the hook ------------------------------------------------------

    def _hook(self, frame, event: str, arg) -> None:
        # Python disables profiling while the hook runs, so nothing
        # below recurses. Only `call` events advance the sample clock:
        # they are pure interpreter state, identical across same-seed
        # runs and machines (wall time never enters the picture).
        if event != "call":
            return
        self.call_events += 1
        self._countdown -= 1
        if self._countdown:
            return
        self._countdown = self.sample_interval
        self._sample(frame)

    def _label(self, frame) -> str:
        code = frame.f_code
        label = self._labels.get(code)
        if label is None:
            module = frame.f_globals.get("__name__", "<unknown>")
            qualname = getattr(code, "co_qualname", code.co_name)
            label = f"{module}:{qualname}"
            self._labels[code] = label
        return label

    def _sample(self, frame) -> None:
        frames: List[str] = []
        cursor = frame
        depth = 0
        cut_at = -1
        while cursor is not None and depth < self.max_depth:
            label = self._label(cursor)
            frames.append(label)
            if label.partition(":")[0].startswith(self.stack_roots):
                # Remember the *outermost* scenario frame seen so far;
                # everything beyond it (CLI, pytest, check_profile —
                # whatever launched the scenario) is trimmed below.
                cut_at = depth
            cursor = cursor.f_back
            depth += 1
        if cut_at >= 0:
            frames = frames[:cut_at + 1]
        elif cursor is not None:
            self.truncated += 1
        frames.reverse()  # root first, flamegraph convention
        stack = tuple(frames)
        count = self._stacks.get(stack)
        if count is None and len(self._stacks) >= self.max_stacks:
            self.stack_overflows += 1
            stack = (OVERFLOW_FRAME,)
            count = self._stacks.get(stack)
        self._stacks[stack] = (count or 0) + 1
        self.samples += 1

        leaf_sub = self._subsystem(frames[-1])
        self._self[leaf_sub] = self._self.get(leaf_sub, 0) + 1
        seen = set()
        for label in frames:
            sub = self._subsystem(label)
            if sub not in seen:
                seen.add(sub)
                self._cum[sub] = self._cum.get(sub, 0) + 1

        if self.clock is not None:
            if len(self._timeline) == self._timeline.maxlen:
                self.timeline_dropped += 1
            self._timeline.append((self.clock.now(), leaf_sub))

    def _subsystem(self, label: str) -> str:
        sub = self._subsystems.get(label)
        if sub is None:
            if label == OVERFLOW_FRAME:
                sub = "other"
            else:
                sub = subsystem_of_module(label.partition(":")[0])
            self._subsystems[label] = sub
        return sub

    # -- reading -------------------------------------------------------

    @property
    def stacks(self) -> Dict[Tuple[str, ...], int]:
        return dict(self._stacks)

    @property
    def timeline(self) -> List[Tuple[float, str]]:
        return list(self._timeline)

    def collapsed_stacks(self) -> str:
        """The profile in collapsed-stack ("folded") flamegraph format.

        One ``frame;frame;frame count`` line per distinct stack,
        sorted — the input format of flamegraph.pl and speedscope.
        Deterministic: sorted lines, counts are exact integers.
        """
        lines = [f"{';'.join(stack)} {count}"
                 for stack, count in sorted(self._stacks.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def attribution(self) -> dict:
        """Per-subsystem self/cumulative sample counts and percentages.

        ``self`` ticks sum to ``samples`` exactly; ``cum`` counts each
        subsystem at most once per sample (so percentages can overlap).
        Percentages are rounded to 4 decimals for stable JSON.
        """
        rows: Dict[str, dict] = {}
        total = self.samples
        for sub in sorted(set(self._self) | set(self._cum)):
            self_ticks = self._self.get(sub, 0)
            cum_ticks = self._cum.get(sub, 0)
            rows[sub] = {
                "self": self_ticks,
                "cum": cum_ticks,
                "self_pct": round(100.0 * self_ticks / total, 4) if total else 0.0,
                "cum_pct": round(100.0 * cum_ticks / total, 4) if total else 0.0,
            }
        return {
            "sample_interval": self.sample_interval,
            "call_events": self.call_events,
            "samples": total,
            "distinct_stacks": len(self._stacks),
            "truncated": self.truncated,
            "stack_overflows": self.stack_overflows,
            "subsystems": rows,
        }

    def attribution_json(self) -> str:
        """Canonical JSON rendering of :meth:`attribution` —
        byte-identical across same-seed runs."""
        return json.dumps(self.attribution(), sort_keys=True, indent=2)


def parse_collapsed(text: str) -> Dict[Tuple[str, ...], int]:
    """Inverse of :meth:`DeterministicProfiler.collapsed_stacks`."""
    stacks: Dict[Tuple[str, ...], int] = {}
    for line in text.splitlines():
        if not line:
            continue
        stack_text, _, count_text = line.rpartition(" ")
        if not stack_text or not count_text.isdigit():
            raise ValueError(f"malformed collapsed-stack line: {line!r}")
        stacks[tuple(stack_text.split(";"))] = int(count_text)
    return stacks


def format_attribution(attribution: dict, title: str = "subsystem") -> str:
    """Human-readable table of an :meth:`attribution` dict."""
    rows = attribution.get("subsystems", {})
    lines = [
        f"samples: {attribution.get('samples', 0)}  "
        f"(1 per {attribution.get('sample_interval', '?')} call events, "
        f"{attribution.get('call_events', 0)} events total)",
        f"  {title:<14} {'self%':>8} {'cum%':>8} {'self':>8} {'cum':>8}",
    ]
    ordered = sorted(rows.items(),
                     key=lambda item: (-item[1]["self"], item[0]))
    for sub, row in ordered:
        lines.append(f"  {sub:<14} {row['self_pct']:>8.2f} "
                     f"{row['cum_pct']:>8.2f} {row['self']:>8} "
                     f"{row['cum']:>8}")
    return "\n".join(lines)


def top_stacks(stacks: Dict[Tuple[str, ...], int], limit: int = 10) -> str:
    """The *limit* hottest stacks, leaf-first one-liners."""
    ordered = sorted(stacks.items(), key=lambda item: (-item[1], item[0]))
    lines = []
    for stack, count in ordered[:limit]:
        leafward = " < ".join(reversed(stack[-4:]))
        lines.append(f"  {count:>8}  {leafward}")
    return "\n".join(lines)


# -- attribution comparison (the check_profile gate core) ---------------


def compare_attribution(baseline: dict, fresh: dict,
                        tolerance_pct: float = 5.0) -> List[dict]:
    """Diff two attribution dicts subsystem by subsystem.

    A row *drifts* when its self% or cum% moved by more than
    *tolerance_pct* percentage points (absolute). Subsystems present on
    only one side count with 0 on the other — a subsystem appearing
    from nowhere at 6% is exactly the kind of silent cost creep the
    gate exists to catch. Shares, not raw sample counts, are compared,
    so the gate is insensitive to workload-size changes that scale all
    subsystems equally.
    """
    base_rows = baseline.get("subsystems", {})
    fresh_rows = fresh.get("subsystems", {})
    rows: List[dict] = []
    for sub in sorted(set(base_rows) | set(fresh_rows)):
        base = base_rows.get(sub, {})
        new = fresh_rows.get(sub, {})
        row = {"subsystem": sub}
        drifted = False
        for kind in ("self_pct", "cum_pct"):
            before = float(base.get(kind, 0.0))
            after = float(new.get(kind, 0.0))
            row[f"{kind}_baseline"] = before
            row[f"{kind}_fresh"] = after
            row[f"{kind}_drift"] = round(after - before, 4)
            if abs(after - before) > tolerance_pct:
                drifted = True
        row["drifted"] = drifted
        rows.append(row)
    return rows


# -- heap attribution ---------------------------------------------------


class HeapSampler:
    """``tracemalloc`` snapshots at absolute window boundaries.

    Window *k* boundary sits at ``(k+1) * window_seconds`` — the same
    absolute-multiple rule as
    :class:`repro.obs.timeseries.TimeSeriesRecorder`, so heap windows
    line up with metric windows and same-seed runs snapshot at
    identical simulated instants. Each snapshot groups live
    allocations by :func:`subsystem_of_path`.

    The CPU profile hook is suspended while a snapshot is processed
    (snapshot processing is data-dependent python work; letting it
    into the call-event stream would break CPU byte-identity).
    """

    def __init__(self, scheduler, window_seconds: float = 10.0,
                 retention: int = DEFAULT_HEAP_RETENTION) -> None:
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.scheduler = scheduler
        self.window_seconds = float(window_seconds)
        self.evicted = 0
        self._windows: Deque[dict] = deque(maxlen=int(retention))
        self._handle = None
        self._next_index: Optional[int] = None
        self._owns_tracing = False

    @property
    def running(self) -> bool:
        return self._handle is not None

    @property
    def windows(self) -> List[dict]:
        return list(self._windows)

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("heap sampler already started")
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracing = True
        now = self.scheduler.now
        self._next_index = int(math.floor(now / self.window_seconds + 1e-9))
        boundary = (self._next_index + 1) * self.window_seconds
        self._handle = self.scheduler.schedule_at(boundary, self._flush)

    def stop(self) -> None:
        """Cancel the pending flush and release tracemalloc if owned."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        if self._owns_tracing:
            tracemalloc.stop()
            self._owns_tracing = False

    def snapshot_now(self) -> dict:
        """Take one unscheduled snapshot row (not appended to windows)."""
        assert self._next_index is not None or tracemalloc.is_tracing()
        return self._grouped_row(index=-1, when=float(self.scheduler.now))

    def _flush(self) -> None:
        assert self._next_index is not None
        index = self._next_index
        self._next_index = index + 1
        end = (index + 1) * self.window_seconds
        if len(self._windows) == self._windows.maxlen:
            self.evicted += 1
        self._windows.append(self._grouped_row(index=index, when=end))
        self._handle = self.scheduler.schedule_at(
            end + self.window_seconds, self._flush)

    @staticmethod
    def _grouped_row(index: int, when: float) -> dict:
        previous_hook = sys.getprofile()
        if previous_hook is not None:
            sys.setprofile(None)
        try:
            snapshot = tracemalloc.take_snapshot()
            stats = snapshot.statistics("filename")
            grouped: Dict[str, List[int]] = {}
            for stat in stats:
                sub = subsystem_of_path(stat.traceback[0].filename)
                row = grouped.setdefault(sub, [0, 0])
                row[0] += stat.size
                row[1] += stat.count
        finally:
            if previous_hook is not None:
                sys.setprofile(previous_hook)
        return {
            "index": index,
            "when": when,
            "subsystems": {
                sub: {"size_bytes": size, "blocks": blocks}
                for sub, (size, blocks) in sorted(grouped.items())},
        }


# -- chrome-trace merge -------------------------------------------------


def chrome_trace_with_samples(spans, profiler: DeterministicProfiler,
                              trace_id: Optional[str] = None) -> str:
    """Span swimlanes plus a profiler counter track, one JSON document.

    Extends :func:`repro.obs.export.chrome_trace` with a synthetic
    ``profiler`` process carrying Chrome counter events (``ph: "C"``):
    at each sampled instant, the running per-subsystem sample totals.
    Loaded in Perfetto/chrome://tracing this renders a stacked area
    chart of where samples accrue *while* the spans execute — the
    merged view the flamegraph alone cannot give.
    """
    from repro.obs.export import chrome_trace

    document = json.loads(chrome_trace(spans, trace_id))
    events = document["traceEvents"]
    pid = max((event["pid"] for event in events), default=-1) + 1
    events.append({
        "args": {"name": "profiler"},
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
    })
    running: Dict[str, int] = {}
    for when, leaf_sub in profiler.timeline:
        running[leaf_sub] = running.get(leaf_sub, 0) + 1
        events.append({
            "args": {sub: count for sub, count in sorted(running.items())},
            "name": "profile_samples",
            "ph": "C",
            "pid": pid,
            "tid": 0,
            "ts": round(when * 1e6, 3),
        })
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0),
                               e["pid"], e["tid"], e["name"]))
    return json.dumps({"displayTimeUnit": "ms", "traceEvents": events},
                      sort_keys=True, indent=2)


__all__ = [
    "CODE_LOCATION_RE",
    "DEFAULT_MAX_DEPTH",
    "DEFAULT_MAX_STACKS",
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_STACK_ROOTS",
    "DeterministicProfiler",
    "HeapSampler",
    "KNOWN_SUBSYSTEMS",
    "OVERFLOW_FRAME",
    "chrome_trace_with_samples",
    "compare_attribution",
    "format_attribution",
    "parse_collapsed",
    "subsystem_of_module",
    "subsystem_of_path",
    "top_stacks",
]
