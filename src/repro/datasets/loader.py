"""Load real query logs in AOL-style TSV format.

Researchers who hold a copy of the AOL collection (or any log with the
same shape) can run every experiment on real data instead of the
synthetic generator: this loader parses the classic
``AnonID\\tQuery\\tQueryTime[\\t...]`` format into the same
:class:`~repro.datasets.aol.SyntheticAolLog` structure the experiments
consume.

Sensitivity labels cannot come from the data (the paper crowd-sourced
them), so the loader labels queries with the same WordNet+LDA
categorizer CYCLOSA itself uses — callers may substitute their own
labels via the ``sensitivity_labeller`` hook.
"""

from __future__ import annotations

import csv
import datetime as _dt
from typing import Callable, Iterable, List, Optional

from repro.datasets.aol import QueryRecord, SyntheticAolLog

#: The AOL collection's timestamp format.
TIME_FORMAT = "%Y-%m-%d %H:%M:%S"


def _parse_time(value: str) -> float:
    moment = _dt.datetime.strptime(value.strip(), TIME_FORMAT)
    return moment.timestamp()


def load_aol_tsv(lines: Iterable[str],
                 sensitivity_labeller: Optional[Callable[[str], bool]] = None,
                 min_queries_per_user: int = 1,
                 max_users: Optional[int] = None,
                 has_header: bool = True) -> SyntheticAolLog:
    """Parse AOL-style TSV lines into a query log.

    Parameters
    ----------
    lines:
        An iterable of TSV lines (a file handle works).
    sensitivity_labeller:
        ``query text -> bool``; defaults to all-False (call
        :func:`label_with_categorizer` for the CYCLOSA categorizer).
    min_queries_per_user:
        Drop users below this volume (the paper keeps active users).
    max_users:
        Keep only the most active *max_users* users.
    has_header:
        Skip the first row (the collection ships with one).
    """
    reader = csv.reader(lines, delimiter="\t")
    rows = list(reader)
    if has_header and rows:
        rows = rows[1:]

    label = sensitivity_labeller or (lambda text: False)
    records: List[QueryRecord] = []
    query_id = 0
    base_time: Optional[float] = None
    for row in rows:
        if len(row) < 3:
            continue  # malformed line: skip, like every AOL parser does
        user_id, text, time_text = row[0], row[1], row[2]
        text = text.strip()
        if not text or text == "-":
            continue
        try:
            timestamp = _parse_time(time_text)
        except ValueError:
            continue
        if base_time is None:
            base_time = timestamp
        records.append(QueryRecord(
            query_id=query_id,
            user_id=f"u{user_id}",
            timestamp=timestamp - base_time,
            text=text,
            topic="unknown",
            is_sensitive=bool(label(text)),
        ))
        query_id += 1

    by_user: dict = {}
    for record in records:
        by_user.setdefault(record.user_id, []).append(record)
    kept_users = [user for user, queries in by_user.items()
                  if len(queries) >= min_queries_per_user]
    kept_users.sort(key=lambda user: len(by_user[user]), reverse=True)
    if max_users is not None:
        kept_users = kept_users[:max_users]
    keep = set(kept_users)
    kept_records = sorted((r for r in records if r.user_id in keep),
                          key=lambda r: r.timestamp)
    return SyntheticAolLog(records=kept_records, users=kept_users)


def label_with_categorizer(assessor) -> Callable[[str], bool]:
    """A sensitivity labeller backed by a
    :class:`~repro.core.sensitivity.SemanticAssessor` (the §V-A
    pipeline applied to external data)."""
    return assessor.is_sensitive
