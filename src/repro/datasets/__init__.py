"""Dataset substrate: synthetic workloads replacing proprietary data.

The paper evaluates on the AOL query log (21 M queries, 650 k users) and
bootstraps fake-query tables from Google Trends. Neither is shippable,
so this package generates statistically equivalent synthetic material:

- :mod:`repro.datasets.vocabulary` — topic vocabularies (four sensitive
  topics per Google's privacy policy: health, sex, politics, religion;
  plus eight neutral topics and a shared general vocabulary).
- :mod:`repro.datasets.aol`        — the synthetic AOL-like log: users
  with Zipf activity and Dirichlet interest profiles, queries drawn
  from per-user term preferences, ground-truth sensitivity labels at
  the paper's crowd-sourced 15.74 % rate (§VII-C).
- :mod:`repro.datasets.trends`     — "Google Trends"-style popular
  seed queries for bootstrapping past-query tables (§V-D).
- :mod:`repro.datasets.split`      — the 2/3 train (adversary prior) /
  1/3 test split of §VII-B.
"""

from repro.datasets.aol import QueryRecord, SyntheticAolLog, generate_aol_log
from repro.datasets.split import train_test_split
from repro.datasets.trends import trending_queries
from repro.datasets.vocabulary import (
    ALL_TOPICS,
    NEUTRAL_TOPICS,
    SENSITIVE_TOPICS,
    TopicVocabulary,
    build_topic_vocabularies,
)

__all__ = [
    "QueryRecord",
    "SyntheticAolLog",
    "generate_aol_log",
    "train_test_split",
    "trending_queries",
    "ALL_TOPICS",
    "NEUTRAL_TOPICS",
    "SENSITIVE_TOPICS",
    "TopicVocabulary",
    "build_topic_vocabularies",
]
