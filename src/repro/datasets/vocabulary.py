"""Topic vocabularies for the synthetic workload.

Four *sensitive* topics follow Google's privacy-policy definition cited
in §V-A1 ("confidential medical facts, racial or ethnic origins,
political or religious beliefs or sexuality"); eight *neutral* topics
cover the bulk of ordinary web-search traffic. Each topic has a curated
seed list of real English terms, programmatically expanded with
morphological variants and numbered long-tail terms so vocabularies are
large enough for Zipf sampling to give users distinguishable term
preferences (which is what SimAttack exploits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

SENSITIVE_TOPICS: Tuple[str, ...] = ("health", "sex", "politics", "religion")
NEUTRAL_TOPICS: Tuple[str, ...] = (
    "sports", "technology", "travel", "shopping",
    "entertainment", "finance", "food", "education",
)
ALL_TOPICS: Tuple[str, ...] = SENSITIVE_TOPICS + NEUTRAL_TOPICS

_SEED_TERMS: Dict[str, List[str]] = {
    "health": [
        "symptoms", "diagnosis", "treatment", "cancer", "diabetes",
        "depression", "anxiety", "therapy", "medication", "dosage",
        "pregnancy", "fertility", "infection", "virus", "vaccine",
        "allergy", "asthma", "arthritis", "insomnia", "migraine",
        "cholesterol", "hypertension", "obesity", "anorexia", "bulimia",
        "hiv", "hepatitis", "tumor", "chemotherapy", "radiology",
        "cardiology", "dermatology", "psychiatrist", "antidepressant",
        "painkiller", "rehab", "addiction", "withdrawal", "overdose",
        "clinic", "hospital", "surgeon", "biopsy", "remission", "relapse",
    ],
    "sex": [
        "dating", "erotic", "intimacy", "libido", "contraception",
        "condom", "orientation", "gay", "lesbian", "bisexual",
        "transgender", "fetish", "lingerie", "seduction", "affair",
        "escort", "swinger", "nude", "adult", "explicit",
        "sensual", "arousal", "orgasm", "viagra", "impotence",
        "chlamydia", "gonorrhea", "syphilis", "herpes", "abstinence",
        "polyamory", "kink", "bondage", "stripper", "webcam",
        "hookup", "flirting", "romance", "passion", "desire",
    ],
    "politics": [
        "election", "senator", "congress", "democrat", "republican",
        "liberal", "conservative", "campaign", "ballot", "vote",
        "immigration", "abortion", "gun", "policy", "legislation",
        "impeachment", "lobbyist", "caucus", "primary", "debate",
        "socialism", "capitalism", "anarchist", "activist", "protest",
        "petition", "referendum", "parliament", "governor", "mayor",
        "taxation", "welfare", "medicare", "deficit", "filibuster",
        "gerrymander", "electorate", "partisan", "ideology", "regime",
    ],
    "religion": [
        "church", "mosque", "synagogue", "temple", "prayer",
        "bible", "quran", "torah", "gospel", "scripture",
        "christian", "muslim", "jewish", "buddhist", "hindu",
        "catholic", "protestant", "baptist", "evangelical", "orthodox",
        "atheist", "agnostic", "faith", "salvation", "baptism",
        "communion", "pilgrimage", "ramadan", "easter", "passover",
        "meditation", "karma", "reincarnation", "missionary", "sermon",
        "theology", "pastor", "rabbi", "imam", "monastery",
    ],
    "sports": [
        "football", "baseball", "basketball", "soccer", "hockey",
        "tennis", "golf", "swimming", "marathon", "olympics",
        "playoffs", "championship", "league", "tournament", "score",
        "coach", "quarterback", "pitcher", "goalie", "referee",
        "stadium", "ticket", "roster", "draft", "trade",
        "workout", "fitness", "training", "cycling", "skiing",
        "snowboard", "surfing", "boxing", "wrestling", "nascar",
    ],
    "technology": [
        "laptop", "computer", "software", "hardware", "internet",
        "browser", "download", "upload", "wireless", "router",
        "printer", "monitor", "keyboard", "processor", "memory",
        "storage", "backup", "antivirus", "firewall", "password",
        "email", "website", "hosting", "domain", "server",
        "programming", "database", "smartphone", "camera", "gadget",
        "bluetooth", "firmware", "driver", "install", "upgrade",
    ],
    "travel": [
        "flight", "airline", "airport", "hotel", "hostel",
        "resort", "cruise", "vacation", "itinerary", "passport",
        "visa", "luggage", "booking", "destination", "tourist",
        "beach", "island", "mountain", "hiking", "camping",
        "roadtrip", "rental", "train", "subway", "ferry",
        "museum", "landmark", "sightseeing", "excursion", "safari",
        "paris", "london", "tokyo", "orlando", "vegas",
    ],
    "shopping": [
        "coupon", "discount", "clearance", "bargain", "auction",
        "catalog", "retailer", "outlet", "warehouse", "delivery",
        "shipping", "returns", "refund", "warranty", "review",
        "furniture", "appliance", "clothing", "shoes", "handbag",
        "jewelry", "watch", "perfume", "cosmetics", "toys",
        "electronics", "grocery", "mall", "store", "checkout",
        "wishlist", "giftcard", "sale", "price", "brand",
    ],
    "entertainment": [
        "movie", "trailer", "cinema", "actor", "actress",
        "celebrity", "gossip", "music", "concert", "album",
        "lyrics", "guitar", "piano", "karaoke", "festival",
        "television", "sitcom", "drama", "comedy", "thriller",
        "horror", "animation", "cartoon", "videogame", "console",
        "casino", "poker", "lottery", "magazine", "novel",
        "theater", "ballet", "opera", "podcast", "streaming",
    ],
    "finance": [
        "mortgage", "loan", "credit", "debit", "interest",
        "savings", "checking", "investment", "stock", "bond",
        "dividend", "portfolio", "retirement", "pension", "annuity",
        "insurance", "premium", "deductible", "bankruptcy", "foreclosure",
        "refinance", "equity", "broker", "trading", "currency",
        "inflation", "recession", "budget", "salary", "paycheck",
        "taxes", "audit", "accountant", "invoice", "payroll",
    ],
    "food": [
        "recipe", "cooking", "baking", "grilling", "roasting",
        "ingredient", "seasoning", "marinade", "dessert", "appetizer",
        "restaurant", "takeout", "delivery", "buffet", "brunch",
        "vegetarian", "vegan", "gluten", "organic", "nutrition",
        "calories", "protein", "casserole", "lasagna", "sushi",
        "pizza", "burger", "taco", "noodle", "curry",
        "chocolate", "cheesecake", "smoothie", "espresso", "cocktail",
    ],
    "education": [
        "college", "university", "tuition", "scholarship", "admission",
        "transcript", "diploma", "degree", "major", "semester",
        "professor", "lecture", "seminar", "homework", "essay",
        "thesis", "dissertation", "exam", "quiz", "grading",
        "kindergarten", "elementary", "highschool", "curriculum", "textbook",
        "tutoring", "mentor", "internship", "graduate", "undergraduate",
        "literacy", "mathematics", "chemistry", "physics", "biology",
    ],
}

# Terms that appear across topics regardless of user interests — they
# carry little identifying signal, like real query glue words.
GENERAL_TERMS: List[str] = [
    "best", "cheap", "free", "online", "near", "local", "top",
    "guide", "help", "find", "compare", "pictures", "photos",
    "video", "news", "reviews", "forum", "blog", "official",
    "homepage", "phone", "address", "hours", "map", "directions",
]

_SUFFIXES = ["", "s", "ing", "ed", "er"]


@dataclass(frozen=True)
class TopicVocabulary:
    """One topic's vocabulary: curated seeds plus expanded variants."""

    topic: str
    sensitive: bool
    seeds: Tuple[str, ...]
    terms: Tuple[str, ...]

    def __contains__(self, term: str) -> bool:
        return term in self._term_set

    @property
    def _term_set(self):
        # Cached lazily on the instance despite frozen dataclass.
        cached = object.__getattribute__(self, "__dict__").get("_cache")
        if cached is None:
            cached = frozenset(self.terms)
            object.__getattribute__(self, "__dict__")["_cache"] = cached
        return cached


def _expand(seed: str, extra_per_seed: int) -> List[str]:
    """Morphological variants plus numbered long-tail terms."""
    variants = []
    for suffix in _SUFFIXES:
        if suffix and seed.endswith(suffix[0]):
            continue  # avoid awkward doubles like "newss"
        variants.append(seed + suffix)
    variants.extend(f"{seed}{index}" for index in range(1, extra_per_seed + 1))
    return variants


def build_topic_vocabularies(extra_per_seed: int = 2) -> Dict[str, TopicVocabulary]:
    """Build the full vocabulary map used by the dataset generator.

    *extra_per_seed* controls the number of numbered long-tail variants
    per seed term; the default yields ~250 terms per topic, enough for
    user-specific Zipf preferences to be separable.
    """
    vocabularies: Dict[str, TopicVocabulary] = {}
    for topic, seeds in _SEED_TERMS.items():
        terms: List[str] = []
        for seed in seeds:
            terms.extend(_expand(seed, extra_per_seed))
        # Deduplicate preserving order.
        seen = set()
        unique_terms = []
        for term in terms:
            if term not in seen:
                seen.add(term)
                unique_terms.append(term)
        vocabularies[topic] = TopicVocabulary(
            topic=topic,
            sensitive=topic in SENSITIVE_TOPICS,
            seeds=tuple(seeds),
            terms=tuple(unique_terms),
        )
    return vocabularies
