"""Descriptive statistics of a query log.

Companion to the generator and the real-data loader: before running
experiments on a log (synthetic or loaded), inspect whether it has the
structure the attacks and protections assume — activity skew, per-user
vocabulary distinctiveness, sensitivity rate.

``python -m repro.datasets.stats`` prints the default synthetic log's
profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.datasets.aol import SyntheticAolLog
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class LogStats:
    """Summary of one query log."""

    num_users: int
    num_queries: int
    sensitive_rate: float
    mean_queries_per_user: float
    median_queries_per_user: float
    max_queries_per_user: int
    activity_skew: float          # max/median — heavy tail indicator
    vocabulary_size: int
    mean_terms_per_query: float
    mean_user_overlap: float      # pairwise Jaccard of user term sets

    def rows(self) -> List[List[str]]:
        return [
            ["users", str(self.num_users)],
            ["queries", str(self.num_queries)],
            ["sensitive rate", f"{self.sensitive_rate * 100:.2f} %"],
            ["queries/user (mean)", f"{self.mean_queries_per_user:.1f}"],
            ["queries/user (median)", f"{self.median_queries_per_user:.1f}"],
            ["queries/user (max)", str(self.max_queries_per_user)],
            ["activity skew (max/median)", f"{self.activity_skew:.1f}x"],
            ["vocabulary size", str(self.vocabulary_size)],
            ["terms/query (mean)", f"{self.mean_terms_per_query:.2f}"],
            ["user term overlap (Jaccard)",
             f"{self.mean_user_overlap:.3f}"],
        ]


def describe(log: SyntheticAolLog, overlap_sample: int = 20) -> LogStats:
    """Compute :class:`LogStats` for *log*.

    *overlap_sample* bounds the pairwise-overlap computation to the
    most active users (it is quadratic).
    """
    if not log.records:
        raise ValueError("log is empty")
    counts = [len(log.queries_of(user)) for user in log.users
              if log.queries_of(user)]
    counts.sort()
    median = counts[len(counts) // 2]

    vocabulary = set()
    total_terms = 0
    user_terms: Dict[str, set] = {}
    for record in log.records:
        terms = tokenize(record.text)
        total_terms += len(terms)
        vocabulary.update(terms)
        user_terms.setdefault(record.user_id, set()).update(terms)

    sampled = log.most_active_users(overlap_sample)
    overlaps: List[float] = []
    for i, user_a in enumerate(sampled):
        for user_b in sampled[i + 1:]:
            a = user_terms.get(user_a, set())
            b = user_terms.get(user_b, set())
            union = a | b
            if union:
                overlaps.append(len(a & b) / len(union))
    mean_overlap = sum(overlaps) / len(overlaps) if overlaps else 0.0

    return LogStats(
        num_users=len(log.users),
        num_queries=len(log.records),
        sensitive_rate=log.sensitive_rate(),
        mean_queries_per_user=len(log.records) / max(1, len(counts)),
        median_queries_per_user=float(median),
        max_queries_per_user=counts[-1],
        activity_skew=counts[-1] / max(1, median),
        vocabulary_size=len(vocabulary),
        mean_terms_per_query=total_terms / len(log.records),
        mean_user_overlap=mean_overlap,
    )


def main() -> None:
    from repro.datasets.aol import generate_aol_log
    from repro.experiments.common import print_table

    log = generate_aol_log(num_users=100, mean_queries_per_user=100,
                           seed=0)
    stats = describe(log)
    print_table("Default synthetic AOL-like log", ["statistic", "value"],
                stats.rows())
    print("\nLow user-term overlap + heavy activity skew are what make "
          "SimAttack's\nprofile matching work — check these before "
          "trusting results on custom data.")


if __name__ == "__main__":
    main()
