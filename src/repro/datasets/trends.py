"""Bootstrap seed queries ("Google Trends").

When a CYCLOSA node first starts, its enclave past-queries table is
empty and there is nothing plausible to send as fakes. The paper (§V-D)
seeds the table from Google Trends — popular queries issued by real
users about trendy topics. This module synthesises the equivalent: a
pool of popular-looking queries drawn from the *neutral* topic
vocabularies (trending queries are overwhelmingly entertainment, sports,
technology and shopping).
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets.vocabulary import (
    GENERAL_TERMS,
    NEUTRAL_TOPICS,
    build_topic_vocabularies,
)


def trending_queries(count: int = 50, seed: int = 2017) -> List[str]:
    """Return *count* synthetic trending queries.

    Deterministic for a given (count, seed): every node bootstrapping
    from "the same day's trends" sees the same pool, like the real
    service.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = random.Random(seed)
    vocabularies = build_topic_vocabularies()
    queries: List[str] = []
    seen = set()
    while len(queries) < count:
        topic = rng.choice(list(NEUTRAL_TOPICS))
        seeds = vocabularies[topic].seeds
        length = rng.choice([1, 2, 2, 3])
        terms = rng.sample(list(seeds), k=min(length, len(seeds)))
        if rng.random() < 0.35:
            terms.append(rng.choice(GENERAL_TERMS))
        text = " ".join(terms)
        if text not in seen:
            seen.add(text)
            queries.append(text)
    return queries
