"""Synthetic AOL-like query log.

The real AOL log (Pass et al. 2006) cannot be redistributed, so this
generator reproduces the statistical structure the evaluation depends
on:

- **Skewed activity**: per-user query counts follow a log-normal with a
  heavy tail; "most active users" are well defined (§VII-B studies the
  most active/most exposed users).
- **Distinctive interest profiles**: each user draws a Dirichlet
  mixture over a small set of preferred topics *and* a user-specific
  Zipf permutation over each topic's vocabulary. Users therefore reuse
  their own favourite terms across queries — exactly the regularity
  SimAttack exploits to re-identify anonymous queries.
- **Calibrated sensitivity**: each query is generated from a known
  topic, so ground-truth sensitivity labels come for free; the expected
  fraction of sensitive queries is calibrated to the paper's
  crowd-sourcing result of 15.74 % (§VII-C).
- **Timestamps** spread over a three-month window, Poisson per user.

Determinism: the full log is a pure function of the generator
parameters and the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.datasets.vocabulary import (
    GENERAL_TERMS,
    NEUTRAL_TOPICS,
    SENSITIVE_TOPICS,
    TopicVocabulary,
    build_topic_vocabularies,
)

# Paper §VII-C: the crowd-sourcing campaign found 15.74 % of queries
# relate to sensitive topics.
PAPER_SENSITIVE_RATE = 0.1574

LOG_WINDOW_SECONDS = 90 * 24 * 3600.0  # three months, as in the AOL log


@dataclass(frozen=True)
class QueryRecord:
    """One query in the log, with ground-truth labels."""

    query_id: int
    user_id: str
    timestamp: float
    text: str
    topic: str
    is_sensitive: bool


@dataclass
class UserModel:
    """The latent preferences one synthetic user queries from."""

    user_id: str
    topic_weights: Dict[str, float]
    term_preferences: Dict[str, List[str]]  # topic -> user-ordered vocab
    sensitive_probability: float
    num_queries: int


@dataclass
class SyntheticAolLog:
    """A generated query log plus per-user indexes."""

    records: List[QueryRecord]
    users: List[str]
    _by_user: Dict[str, List[QueryRecord]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_user:
            for record in self.records:
                self._by_user.setdefault(record.user_id, []).append(record)
            for queries in self._by_user.values():
                queries.sort(key=lambda r: r.timestamp)

    def queries_of(self, user_id: str) -> List[QueryRecord]:
        """All queries of one user, time-ordered."""
        return list(self._by_user.get(user_id, []))

    def most_active_users(self, count: int) -> List[str]:
        """User ids sorted by descending query volume."""
        ranked = sorted(self._by_user, key=lambda u: len(self._by_user[u]),
                        reverse=True)
        return ranked[:count]

    def sensitive_rate(self) -> float:
        """Observed fraction of sensitive queries (≈ 0.1574 by default)."""
        if not self.records:
            return 0.0
        return sum(r.is_sensitive for r in self.records) / len(self.records)

    def restricted_to(self, user_ids: Sequence[str]) -> "SyntheticAolLog":
        """A sub-log containing only the given users."""
        keep = set(user_ids)
        records = [r for r in self.records if r.user_id in keep]
        return SyntheticAolLog(records=records,
                               users=[u for u in self.users if u in keep])


def _zipf_weights(count: int, exponent: float) -> List[float]:
    weights = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def _sample_weighted(rng: random.Random, items: Sequence,
                     cumulative: List[float]):
    """Draw from *items* under precomputed cumulative weights."""
    u = rng.random() * cumulative[-1]
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return items[lo]


def _build_user(rng: random.Random, user_id: str,
                vocabularies: Dict[str, TopicVocabulary],
                mean_queries: float, sensitive_rate: float,
                topics_per_user: int, zipf_exponent: float,
                exploration_rate: float) -> UserModel:
    # Activity: log-normal around the mean with a heavy upper tail.
    num_queries = max(5, int(mean_queries * math.exp(0.9 * rng.gauss(0, 1))))

    # Interests: a few preferred neutral topics with Dirichlet-ish weights.
    preferred = rng.sample(list(NEUTRAL_TOPICS), k=topics_per_user)
    raw = [rng.gammavariate(1.2, 1.0) for _ in preferred]
    total = sum(raw)
    topic_weights = {topic: w / total for topic, w in zip(preferred, raw)}

    # Sensitive interest: one sensitive topic per user; the per-query
    # probability of drawing it is jittered around the target rate so
    # the population average calibrates to the paper's 15.74 %.
    # Exploration queries (below) are always neutral, so the in-profile
    # rate is scaled up to keep the *overall* rate on target.
    sensitive_topic = rng.choice(list(SENSITIVE_TOPICS))
    adjusted_rate = sensitive_rate / max(1e-9, 1.0 - exploration_rate)
    p_sensitive = min(0.9, max(0.01, rng.gauss(adjusted_rate, 0.05)))
    topic_weights = {
        topic: weight * (1.0 - p_sensitive)
        for topic, weight in topic_weights.items()
    }
    topic_weights[sensitive_topic] = p_sensitive

    # Per-user Zipf permutation of each relevant topic vocabulary: this
    # is what makes users re-identifiable — two health-interested users
    # favour *different* health terms.
    term_preferences: Dict[str, List[str]] = {}
    for topic in topic_weights:
        terms = list(vocabularies[topic].terms)
        rng.shuffle(terms)
        term_preferences[topic] = terms

    return UserModel(
        user_id=user_id,
        topic_weights=topic_weights,
        term_preferences=term_preferences,
        sensitive_probability=p_sensitive,
        num_queries=num_queries,
    )


def _generate_query_text(rng: random.Random, user: UserModel, topic: str,
                         zipf_cumulative: List[float]) -> str:
    vocabulary = user.term_preferences[topic]
    # 1-4 topic terms, geometric length distribution.
    length = 1
    while length < 4 and rng.random() < 0.45:
        length += 1
    terms = []
    seen = set()
    for _ in range(length):
        term = _sample_weighted(rng, vocabulary, zipf_cumulative)
        if term not in seen:
            seen.add(term)
            terms.append(term)
    if rng.random() < 0.3:
        terms.append(rng.choice(GENERAL_TERMS))
    return " ".join(terms)


def generate_aol_log(num_users: int = 198,
                     mean_queries_per_user: float = 120.0,
                     sensitive_rate: float = PAPER_SENSITIVE_RATE,
                     topics_per_user: int = 3,
                     zipf_exponent: float = 1.2,
                     exploration_rate: float = 0.22,
                     seed: int = 0) -> SyntheticAolLog:
    """Generate a synthetic AOL-like log.

    Parameters
    ----------
    num_users:
        Number of users. The paper extracts 198 most-active users with
        at least one sensitive query (§VII-B); that is the default.
    mean_queries_per_user:
        Mean of the per-user activity distribution. The paper's subset
        averages ≈ 730 queries/user (487.6 training + testing); smaller
        defaults keep tests fast — experiments pass larger values.
    sensitive_rate:
        Target expected fraction of sensitive queries (§VII-C: 0.1574).
    topics_per_user:
        Preferred neutral topics per user (interest diversity).
    zipf_exponent:
        Skew of per-user term preferences; higher = more distinctive
        users = easier re-identification.
    exploration_rate:
        Probability a query is *exploratory*: a fresh neutral topic
        sampled uniformly rather than from the user's preferences.
        Exploratory queries are what make ~25 % of real traffic
        unlinkable to any profile (the k = 0 mass of Fig 7 and the
        ceiling on every re-identification attack).
    seed:
        Generator seed; the log is a pure function of the parameters.
    """
    if num_users < 1:
        raise ValueError("num_users must be >= 1")
    rng = random.Random(seed)
    vocabularies = build_topic_vocabularies()

    if not 0.0 <= exploration_rate < 1.0:
        raise ValueError("exploration_rate must be in [0, 1)")
    users = [f"u{i:04d}" for i in range(num_users)]
    models = [
        _build_user(rng, user_id, vocabularies, mean_queries_per_user,
                    sensitive_rate, topics_per_user, zipf_exponent,
                    exploration_rate)
        for user_id in users
    ]

    # Zipf cumulative weights are shared (same vocab sizes per topic
    # after expansion differ slightly; compute per size, cached).
    zipf_cache: Dict[int, List[float]] = {}

    def cumulative_for(size: int) -> List[float]:
        if size not in zipf_cache:
            weights = _zipf_weights(size, zipf_exponent)
            cumulative = []
            running = 0.0
            for w in weights:
                running += w
                cumulative.append(running)
            zipf_cache[size] = cumulative
        return zipf_cache[size]

    records: List[QueryRecord] = []
    query_id = 0
    for user in models:
        topics = list(user.topic_weights)
        weights = [user.topic_weights[t] for t in topics]
        cumulative_topics = []
        running = 0.0
        for w in weights:
            running += w
            cumulative_topics.append(running)
        for _ in range(user.num_queries):
            if rng.random() < exploration_rate:
                # Exploration: a one-off interest outside the profile.
                topic = rng.choice(list(NEUTRAL_TOPICS))
                vocabulary = vocabularies[topic].terms
                length = 1 + (rng.random() < 0.45) + (rng.random() < 0.2)
                terms = rng.sample(list(vocabulary),
                                   k=min(length, len(vocabulary)))
                if rng.random() < 0.3:
                    terms.append(rng.choice(GENERAL_TERMS))
                text = " ".join(terms)
            else:
                topic = _sample_weighted(rng, topics, cumulative_topics)
                text = _generate_query_text(
                    rng, user, topic,
                    cumulative_for(len(user.term_preferences[topic])))
            timestamp = rng.uniform(0.0, LOG_WINDOW_SECONDS)
            records.append(QueryRecord(
                query_id=query_id,
                user_id=user.user_id,
                timestamp=timestamp,
                text=text,
                topic=topic,
                is_sensitive=topic in SENSITIVE_TOPICS,
            ))
            query_id += 1

    records.sort(key=lambda r: r.timestamp)
    return SyntheticAolLog(records=records, users=users)
