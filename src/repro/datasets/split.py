"""Train/test split of a query log.

§VII-B: "We split queries into two sets: a training set that represents
prior knowledge held by the adversary about the users (2/3 of the
dataset), and a testing set that represents new user queries that are
protected (the remaining 1/3)."

The split is *temporal per user*: the adversary knows each user's
history up to a point; the protected queries come after. This matches
how re-identification priors are actually built.
"""

from __future__ import annotations

from typing import Tuple

from repro.datasets.aol import SyntheticAolLog


def train_test_split(log: SyntheticAolLog,
                     train_fraction: float = 2.0 / 3.0
                     ) -> Tuple[SyntheticAolLog, SyntheticAolLog]:
    """Split *log* per user: first *train_fraction* of each user's
    time-ordered queries go to training, the rest to testing.

    Users with fewer than 3 queries contribute everything to training
    (there is nothing meaningful to protect or attack).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    train_records = []
    test_records = []
    for user_id in log.users:
        queries = log.queries_of(user_id)
        if len(queries) < 3:
            train_records.extend(queries)
            continue
        cut = max(1, int(round(len(queries) * train_fraction)))
        cut = min(cut, len(queries) - 1)  # keep at least one test query
        train_records.extend(queries[:cut])
        test_records.extend(queries[cut:])
    train_records.sort(key=lambda r: r.timestamp)
    test_records.sort(key=lambda r: r.timestamp)
    return (
        SyntheticAolLog(records=train_records, users=list(log.users)),
        SyntheticAolLog(records=test_records, users=list(log.users)),
    )
