"""Hashing, MACs and key derivation.

Thin, typed wrappers over :mod:`hashlib`'s SHA-256 plus an HMAC and an
HKDF-style expand/extract built on it. Everything above this module
(AEAD keystreams, TLS-like handshake transcripts, attestation
measurements, sealed-storage keys) derives its keys here, so key
separation labels are centralised in one place.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

DIGEST_SIZE = 32


def sha256(*chunks: bytes) -> bytes:
    """Return the SHA-256 digest of the concatenation of *chunks*."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


def hmac_sha256(key: bytes, *chunks: bytes) -> bytes:
    """Return HMAC-SHA256 of the concatenated *chunks* under *key*."""
    mac = _hmac.new(key, digestmod=hashlib.sha256)
    for chunk in chunks:
        mac.update(chunk)
    return mac.digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (delegates to :func:`hmac.compare_digest`)."""
    return _hmac.compare_digest(a, b)


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract (RFC 5869): concentrate entropy into a PRK."""
    if not salt:
        salt = b"\x00" * DIGEST_SIZE
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand (RFC 5869): derive *length* bytes labelled by *info*."""
    if length <= 0:
        raise ValueError("length must be positive")
    if length > 255 * DIGEST_SIZE:
        raise ValueError("HKDF output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous, info, bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material: bytes, info: bytes, length: int = DIGEST_SIZE,
         salt: bytes = b"") -> bytes:
    """One-shot HKDF: extract then expand.

    Parameters
    ----------
    input_key_material:
        Raw secret (e.g. a Diffie-Hellman shared secret).
    info:
        Domain-separation label; distinct protocols must use distinct
        labels so derived keys never collide.
    length:
        Number of output bytes (default: one digest).
    salt:
        Optional public salt.
    """
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
