"""The one sanctioned source of nondeterministic randomness.

Almost everything in this repository draws randomness from an
explicitly seeded ``random.Random`` threaded through call chains —
that is what makes the fig5–fig8 outputs byte-identical across runs
and machines, and the determinism checker (:mod:`repro.lint`) bans
system entropy everywhere else. Key generation is the exception: when
a caller does *not* supply an rng, fresh key material must be
unpredictable, which genuinely requires OS entropy.

This module is the single whitelisted location for that pattern.
:func:`system_rng` is what ``repro.crypto`` modules fall back to when
no rng is threaded through; nothing outside ``repro.crypto`` should
call it (simulation code must always thread a seeded rng instead, or
the run stops reproducing).
"""

from __future__ import annotations

import os
import random


def system_rng() -> random.Random:
    """A ``random.Random`` seeded from OS entropy.

    Deliberately *not* ``random.SystemRandom``: the callers (prime
    search, padding generation) only need an unpredictable seed, and a
    seeded Mersenne Twister keeps the draw pattern identical to the
    threaded-rng code path — only the seed differs.
    """
    return random.Random(int.from_bytes(os.urandom(16), "big"))
