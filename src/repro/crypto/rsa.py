"""RSA key generation, hybrid encryption and signatures.

The TOR baseline builds onions by encrypting each layer to a relay's
public key, and attestation quotes are RSA-signed by the (simulated)
quoting enclave. Keys default to 1024 bits — small by modern standards
but fast enough that tests can generate dozens of relay identities.

Encryption is *hybrid*: RSA transports a fresh AEAD key, and the payload
is sealed under it (so onion layers have no RSA size limit). Signatures
are RSA over the SHA-256 digest with a fixed PKCS#1-v1.5-style prefix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.aead import AeadKey, open_ as aead_open, seal as aead_seal
from repro.crypto.hashes import sha256
from repro.crypto.rng import system_rng

_SIG_PREFIX = b"repro.rsa.sig.v1:"
_ENC_PREFIX = b"\x00\x02"  # marks a well-formed key-transport block

# Deterministic small-prime sieve used before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]


class RsaError(Exception):
    """Raised on malformed ciphertexts or invalid signatures."""


def is_probable_prime(n: int, rounds: int = 32, rng=None) -> bool:
    """Miller-Rabin primality test with a small-prime pre-sieve."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        if rng is None:
            a = 2 + int.from_bytes(os.urandom(8), "big") % (n - 3)
        else:
            a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> bytes:
        """Stable 32-byte identifier for this key (hash of n||e)."""
        return sha256(self.n.to_bytes(self.byte_length, "big"),
                      self.e.to_bytes(8, "big"))

    def encrypt(self, plaintext: bytes, rng=None) -> bytes:
        """Hybrid-encrypt *plaintext* to this key.

        Output layout: ``len(rsa_block) [2 bytes] || rsa_block || sealed``
        where *rsa_block* transports a fresh 32-byte AEAD key.
        """
        session = AeadKey.generate(rng)
        pad_len = self.byte_length - len(_ENC_PREFIX) - len(session.key) - 1
        if pad_len < 8:
            raise RsaError("modulus too small for key transport")
        if rng is None:
            padding = bytes((b % 255) + 1 for b in os.urandom(pad_len))
        else:
            padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
        block = _ENC_PREFIX + padding + b"\x00" + session.key
        m = int.from_bytes(block, "big")
        if m >= self.n:
            raise RsaError("message representative out of range")
        c = pow(m, self.e, self.n)
        rsa_block = c.to_bytes(self.byte_length, "big")
        sealed = aead_seal(session, plaintext, rng=rng)
        return len(rsa_block).to_bytes(2, "big") + rsa_block + sealed

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Check an RSA signature over SHA-256(*message*)."""
        if len(signature) != self.byte_length:
            return False
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            return False
        m = pow(s, self.e, self.n)
        expected = int.from_bytes(_SIG_PREFIX + sha256(message), "big")
        return m == expected


@dataclass(frozen=True)
class RsaKeyPair:
    """An RSA key pair; holds the private exponent alongside the public key."""

    public: RsaPublicKey
    d: int

    @classmethod
    def generate(cls, bits: int = 1024, rng=None) -> "RsaKeyPair":
        """Generate a key pair with a *bits*-bit modulus.

        Without an explicit *rng*, key material comes from the
        sanctioned system-entropy helper — the one place the
        determinism checker whitelists (see :mod:`repro.crypto.rng`).
        """
        if rng is None:
            rng = system_rng()
        e = 65537
        while True:
            p = _random_prime(bits // 2, rng)
            q = _random_prime(bits - bits // 2, rng)
            if p == q:
                continue
            n = p * q
            phi = (p - 1) * (q - 1)
            if phi % e == 0:
                continue
            d = pow(e, -1, phi)
            return cls(public=RsaPublicKey(n=n, e=e), d=d)

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RsaPublicKey.encrypt`."""
        if len(ciphertext) < 2:
            raise RsaError("ciphertext too short")
        rsa_len = int.from_bytes(ciphertext[:2], "big")
        if rsa_len != self.public.byte_length:
            raise RsaError("ciphertext key-transport length mismatch")
        if len(ciphertext) < 2 + rsa_len:
            raise RsaError("truncated ciphertext")
        rsa_block = ciphertext[2:2 + rsa_len]
        sealed = ciphertext[2 + rsa_len:]
        c = int.from_bytes(rsa_block, "big")
        if c >= self.public.n:
            raise RsaError("ciphertext representative out of range")
        m = pow(c, self.d, self.public.n)
        block = m.to_bytes(self.public.byte_length, "big")
        if not block.startswith(_ENC_PREFIX):
            raise RsaError("bad key-transport padding")
        try:
            sep = block.index(b"\x00", len(_ENC_PREFIX))
        except ValueError as exc:
            raise RsaError("bad key-transport padding") from exc
        session_key = block[sep + 1:]
        if len(session_key) != 32:
            raise RsaError("bad transported key length")
        try:
            return aead_open(AeadKey(session_key), sealed)
        except Exception as exc:  # AeadError — normalise to RsaError
            raise RsaError("payload authentication failed") from exc

    def sign(self, message: bytes) -> bytes:
        """RSA-sign SHA-256(*message*)."""
        m = int.from_bytes(_SIG_PREFIX + sha256(message), "big")
        if m >= self.public.n:
            raise RsaError("modulus too small to sign")
        s = pow(m, self.d, self.public.n)
        return s.to_bytes(self.public.byte_length, "big")
