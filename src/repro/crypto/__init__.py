"""From-scratch cryptographic substrate.

CYCLOSA's design leans on cryptography in three places: TLS-like secure
channels between enclaves and to the search engine, layered (onion)
encryption for the TOR baseline, and signed attestation quotes. This
package implements the needed primitives from scratch on top of the
standard library's SHA-256:

- :mod:`repro.crypto.hashes` — SHA-256 / HMAC / HKDF-style derivation.
- :mod:`repro.crypto.aead`   — authenticated encryption (encrypt-then-MAC
  over an HMAC-CTR keystream).
- :mod:`repro.crypto.dh`     — finite-field Diffie-Hellman key agreement.
- :mod:`repro.crypto.rsa`    — RSA keygen / encrypt / sign (Miller-Rabin
  primes, deterministic-padding hybrid encryption for onion layers).
- :mod:`repro.crypto.keys`   — key containers and identity key pairs.
- :mod:`repro.crypto.rng`    — the one sanctioned system-entropy RNG
  (everything else threads a seeded ``random.Random``; the
  determinism checker in :mod:`repro.lint` enforces this).

These are *simulation-grade* primitives: algorithmically faithful,
constant-time-agnostic, and sized for test speed. They exist so the
systems above them exercise real byte-level encryption, decryption and
verification paths rather than pretending with no-ops.
"""

from repro.crypto.aead import AeadKey, AeadError, seal, open_ as open_sealed
from repro.crypto.dh import DhKeyPair, DhParams, derive_shared_key
from repro.crypto.hashes import hkdf, hmac_sha256, sha256
from repro.crypto.keys import IdentityKeyPair, SymmetricKey
from repro.crypto.rng import system_rng
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, RsaError

__all__ = [
    "AeadKey",
    "AeadError",
    "seal",
    "open_sealed",
    "DhKeyPair",
    "DhParams",
    "derive_shared_key",
    "hkdf",
    "hmac_sha256",
    "sha256",
    "IdentityKeyPair",
    "SymmetricKey",
    "RsaKeyPair",
    "RsaPublicKey",
    "RsaError",
    "system_rng",
]
