"""Authenticated encryption (encrypt-then-MAC over an HMAC-CTR keystream).

CYCLOSA encrypts every inter-enclave message and every enclave-to-search-
engine payload. We build an AEAD from the primitives in
:mod:`repro.crypto.hashes`:

- The keystream is ``HMAC-SHA256(enc_key, nonce || counter)`` blocks
  XORed with the plaintext (a CTR-mode stream cipher with SHA-256 as the
  block function).
- Integrity is an HMAC-SHA256 tag over ``nonce || associated_data ||
  ciphertext`` under an independent MAC key; both keys are derived from
  the AEAD key with distinct HKDF labels.

The construction is IND-CPA + INT-CTXT under standard PRF assumptions —
the point here is that every byte that crosses a trust boundary in the
simulation is genuinely encrypted and authenticated, so tests can assert
that tampering or key mismatch is *detected* rather than trusted.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.crypto.hashes import (
    DIGEST_SIZE,
    constant_time_equal,
    hkdf,
    hmac_sha256,
)

NONCE_SIZE = 16
TAG_SIZE = DIGEST_SIZE
KEY_SIZE = 32


class AeadError(Exception):
    """Raised when decryption fails authentication."""


@dataclass(frozen=True)
class AeadKey:
    """An AEAD key with pre-derived encryption and MAC subkeys."""

    key: bytes
    _enc_key: bytes = field(init=False, repr=False)
    _mac_key: bytes = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.key) != KEY_SIZE:
            raise ValueError(f"AEAD key must be {KEY_SIZE} bytes")
        object.__setattr__(
            self, "_enc_key", hkdf(self.key, b"repro.aead.enc"))
        object.__setattr__(
            self, "_mac_key", hkdf(self.key, b"repro.aead.mac"))

    @classmethod
    def generate(cls, rng=None) -> "AeadKey":
        """Create a fresh random key (from *rng* if given, else OS entropy)."""
        if rng is None:
            return cls(os.urandom(KEY_SIZE))
        return cls(bytes(rng.getrandbits(8) for _ in range(KEY_SIZE)))

    @classmethod
    def from_secret(cls, secret: bytes, label: bytes = b"repro.aead.key") -> "AeadKey":
        """Derive an AEAD key from an arbitrary shared secret."""
        return cls(hkdf(secret, label, KEY_SIZE))


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(
            hmac_sha256(enc_key, nonce, counter.to_bytes(8, "big")))
        counter += 1
    return b"".join(blocks)[:length]


def seal(key: AeadKey, plaintext: bytes, associated_data: bytes = b"",
         rng=None) -> bytes:
    """Encrypt and authenticate *plaintext*.

    Returns ``nonce || ciphertext || tag``. *associated_data* is
    authenticated but not encrypted (used for headers/addresses that
    relays must read).
    """
    if rng is None:
        nonce = os.urandom(NONCE_SIZE)
    else:
        nonce = bytes(rng.getrandbits(8) for _ in range(NONCE_SIZE))
    stream = _keystream(key._enc_key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac_sha256(key._mac_key, nonce, associated_data, ciphertext)
    return nonce + ciphertext + tag


def open_(key: AeadKey, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Verify and decrypt a message produced by :func:`seal`.

    Raises :class:`AeadError` on truncation, tampering, wrong key or
    wrong associated data — callers must treat that as a hard protocol
    failure, never as recoverable noise.
    """
    if len(sealed) < NONCE_SIZE + TAG_SIZE:
        raise AeadError("sealed message too short")
    nonce = sealed[:NONCE_SIZE]
    tag = sealed[-TAG_SIZE:]
    ciphertext = sealed[NONCE_SIZE:-TAG_SIZE]
    expected = hmac_sha256(key._mac_key, nonce, associated_data, ciphertext)
    if not constant_time_equal(tag, expected):
        raise AeadError("authentication failed")
    stream = _keystream(key._enc_key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


def sealed_overhead() -> int:
    """Bytes added by :func:`seal` over the plaintext length."""
    return NONCE_SIZE + TAG_SIZE
