"""Authenticated encryption (encrypt-then-MAC over an HMAC-CTR keystream).

CYCLOSA encrypts every inter-enclave message and every enclave-to-search-
engine payload. We build an AEAD from the primitives in
:mod:`repro.crypto.hashes`:

- The keystream is ``HMAC-SHA256(enc_key, nonce || counter)`` blocks
  XORed with the plaintext (a CTR-mode stream cipher with SHA-256 as the
  block function).
- Integrity is an HMAC-SHA256 tag over ``nonce || associated_data ||
  ciphertext`` under an independent MAC key; both keys are derived from
  the AEAD key with distinct HKDF labels.

The construction is IND-CPA + INT-CTXT under standard PRF assumptions —
the point here is that every byte that crosses a trust boundary in the
simulation is genuinely encrypted and authenticated, so tests can assert
that tampering or key mismatch is *detected* rather than trusted.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
from dataclasses import dataclass, field

from repro.crypto.hashes import (
    DIGEST_SIZE,
    constant_time_equal,
    hkdf,
    hmac_sha256,
)

NONCE_SIZE = 16
TAG_SIZE = DIGEST_SIZE
KEY_SIZE = 32


class AeadError(Exception):
    """Raised when decryption fails authentication."""


@dataclass(frozen=True)
class AeadKey:
    """An AEAD key with pre-derived encryption and MAC subkeys."""

    key: bytes
    _enc_key: bytes = field(init=False, repr=False)
    _mac_key: bytes = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.key) != KEY_SIZE:
            raise ValueError(f"AEAD key must be {KEY_SIZE} bytes")
        object.__setattr__(
            self, "_enc_key", hkdf(self.key, b"repro.aead.enc"))
        object.__setattr__(
            self, "_mac_key", hkdf(self.key, b"repro.aead.mac"))

    @classmethod
    def generate(cls, rng=None) -> "AeadKey":
        """Create a fresh random key (from *rng* if given, else OS entropy)."""
        if rng is None:
            return cls(os.urandom(KEY_SIZE))
        return cls(bytes(rng.getrandbits(8) for _ in range(KEY_SIZE)))

    @classmethod
    def from_secret(cls, secret: bytes, label: bytes = b"repro.aead.key") -> "AeadKey":
        """Derive an AEAD key from an arbitrary shared secret."""
        return cls(hkdf(secret, label, KEY_SIZE))


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    # Equivalent to concatenating
    # ``hmac_sha256(enc_key, nonce, counter)`` blocks, but the HMAC
    # state over key and nonce is absorbed once and cloned per block —
    # every block then only hashes its 8 counter bytes. Sealing large
    # payloads (replica scatter-gather partials) is keystream-bound, so
    # this path is deliberately allocation-light.
    base = _hmac.new(enc_key, nonce, hashlib.sha256)
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block_mac = base.copy()
        block_mac.update(counter.to_bytes(8, "big"))
        block = block_mac.digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    # Single big-int XOR instead of a per-byte generator: both paths
    # produce the same bytes, this one stays in C.
    return (int.from_bytes(data, "big")
            ^ int.from_bytes(stream, "big")).to_bytes(len(data), "big")


def seal(key: AeadKey, plaintext: bytes, associated_data: bytes = b"",
         rng=None) -> bytes:
    """Encrypt and authenticate *plaintext*.

    Returns ``nonce || ciphertext || tag``. *associated_data* is
    authenticated but not encrypted (used for headers/addresses that
    relays must read).
    """
    if rng is None:
        nonce = os.urandom(NONCE_SIZE)
    else:
        nonce = bytes(rng.getrandbits(8) for _ in range(NONCE_SIZE))
    stream = _keystream(key._enc_key, nonce, len(plaintext))
    ciphertext = _xor_bytes(plaintext, stream)
    tag = hmac_sha256(key._mac_key, nonce, associated_data, ciphertext)
    return nonce + ciphertext + tag


def open_(key: AeadKey, sealed: bytes, associated_data: bytes = b"") -> bytes:
    """Verify and decrypt a message produced by :func:`seal`.

    Raises :class:`AeadError` on truncation, tampering, wrong key or
    wrong associated data — callers must treat that as a hard protocol
    failure, never as recoverable noise.
    """
    if len(sealed) < NONCE_SIZE + TAG_SIZE:
        raise AeadError("sealed message too short")
    nonce = sealed[:NONCE_SIZE]
    tag = sealed[-TAG_SIZE:]
    ciphertext = sealed[NONCE_SIZE:-TAG_SIZE]
    expected = hmac_sha256(key._mac_key, nonce, associated_data, ciphertext)
    if not constant_time_equal(tag, expected):
        raise AeadError("authentication failed")
    stream = _keystream(key._enc_key, nonce, len(ciphertext))
    return _xor_bytes(ciphertext, stream)


def sealed_overhead() -> int:
    """Bytes added by :func:`seal` over the plaintext length."""
    return NONCE_SIZE + TAG_SIZE
