"""Finite-field Diffie-Hellman key agreement.

Used by the TLS-like secure channels (:mod:`repro.net.tls`) and by the
attestation handshake to establish per-session AEAD keys between
enclaves. We use the 2048-bit MODP group from RFC 3526 (group 14) by
default; a small test group is provided for speed-sensitive property
tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.hashes import hkdf

# RFC 3526, group 14 (2048-bit MODP). Generator 2.
_MODP_2048_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF"
)


@dataclass(frozen=True)
class DhParams:
    """A Diffie-Hellman group: safe prime *p* and generator *g*."""

    p: int
    g: int

    @classmethod
    def rfc3526_group14(cls) -> "DhParams":
        """The standard 2048-bit MODP group (production default)."""
        return cls(p=int(_MODP_2048_HEX, 16), g=2)

    @classmethod
    def small_test_group(cls) -> "DhParams":
        """A 127-bit group for fast tests. NOT for real security margins.

        Uses the Mersenne prime 2^127 - 1 with generator 3; the subgroup
        structure is irrelevant for functional tests.
        """
        return cls(p=(1 << 127) - 1, g=3)

    def public_from_private(self, private: int) -> int:
        """Compute g^private mod p."""
        return pow(self.g, private, self.p)


@dataclass(frozen=True)
class DhKeyPair:
    """An ephemeral DH key pair bound to its group parameters."""

    params: DhParams
    private: int
    public: int

    @classmethod
    def generate(cls, params: DhParams | None = None, rng=None) -> "DhKeyPair":
        """Generate a fresh key pair (seeded via *rng* when provided)."""
        if params is None:
            params = DhParams.rfc3526_group14()
        nbits = max(256, params.p.bit_length() // 8)
        if rng is None:
            private = int.from_bytes(os.urandom(nbits // 8), "big")
        else:
            private = rng.getrandbits(nbits)
        private = (private % (params.p - 3)) + 2  # in [2, p-2]
        return cls(params=params,
                   private=private,
                   public=params.public_from_private(private))

    def shared_secret(self, peer_public: int) -> bytes:
        """Raw DH shared secret with a peer's public value, as bytes."""
        if not 2 <= peer_public <= self.params.p - 2:
            raise ValueError("peer public value out of range")
        secret = pow(peer_public, self.private, self.params.p)
        length = (self.params.p.bit_length() + 7) // 8
        return secret.to_bytes(length, "big")


def derive_shared_key(keypair: DhKeyPair, peer_public: int,
                      label: bytes = b"repro.dh.session") -> bytes:
    """Agree on a 32-byte session key with *peer_public* under *label*."""
    return hkdf(keypair.shared_secret(peer_public), label, 32)
