"""Key containers: node identities and symmetric keys.

Every simulated node (CYCLOSA peers, TOR relays, PEAS servers, the
search engine front-end) owns an :class:`IdentityKeyPair` — a long-term
RSA signing/decryption key plus a stable fingerprint used as its wire
identity in directories, gossip descriptors and attestation reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.aead import AeadKey
from repro.crypto.hashes import hkdf
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey


@dataclass(frozen=True)
class SymmetricKey:
    """A labelled symmetric key with cheap sub-key derivation."""

    key: bytes
    label: str = "unlabelled"

    def derive(self, purpose: str) -> "SymmetricKey":
        """Derive an independent sub-key for *purpose*."""
        material = hkdf(self.key, purpose.encode("utf-8"), len(self.key))
        return SymmetricKey(key=material, label=f"{self.label}/{purpose}")

    def as_aead(self) -> AeadKey:
        """View this key as an AEAD key (must be 32 bytes)."""
        return AeadKey(self.key)


@dataclass(frozen=True)
class IdentityKeyPair:
    """A node's long-term identity: RSA key pair + fingerprint."""

    rsa: RsaKeyPair
    fingerprint: bytes = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fingerprint", self.rsa.public.fingerprint())

    @classmethod
    def generate(cls, bits: int = 1024, rng=None) -> "IdentityKeyPair":
        """Generate a fresh identity (deterministic when *rng* is seeded)."""
        return cls(rsa=RsaKeyPair.generate(bits=bits, rng=rng))

    @property
    def public(self) -> RsaPublicKey:
        return self.rsa.public

    def short_id(self) -> str:
        """Human-readable 8-hex-char identity, for logs and test output."""
        return self.fingerprint[:4].hex()
