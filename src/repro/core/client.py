"""Public API: build and drive a CYCLOSA deployment.

:class:`CyclosaNetwork` assembles everything — the event loop, the
simulated internet, the search engine, the attestation service, the
bootstrap repository and N CYCLOSA nodes — wires the latency
calibration from :class:`~repro.core.config.CyclosaConfig`, and runs
the warm-up (gossip mixing, engine handshakes).

:meth:`CyclosaUser.search` is the synchronous facade used by the
examples: it schedules a protected search and drives the simulator
until the result lands.
"""

from __future__ import annotations

import random
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import CyclosaConfig
from repro.core.enclave import CyclosaEnclave
from repro.core.node import CyclosaNode, CyclosaServices
from repro.core.sensitivity import SemanticAssessor
from repro.datasets.trends import trending_queries
from repro.gossip.bootstrap_repo import PublicRepository
from repro.net.latency import LogNormalLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.cache import ResultCache
from repro.searchengine.corpus import Corpus, build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode
from repro.searchengine.ratelimit import RateLimiter
from repro.searchengine.sharding import build_shard_engines, replica_addresses
from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy
from repro.text.wordnet import SyntheticWordNet


@dataclass(frozen=True)
class SearchResult:
    """What a user gets back from one protected search."""

    query: str
    k: int
    status: str
    hits: List[Dict[str, Any]]
    latency: float
    #: Trace id of the search's root span when observability is
    #: enabled (see :mod:`repro.obs`); ``None`` otherwise.
    trace_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def documents(self) -> List[str]:
        """Result URLs, in rank order."""
        return [hit["url"] for hit in self.hits]


class CyclosaUser:
    """Synchronous facade over one node for interactive use."""

    def __init__(self, deployment: "CyclosaNetwork", node: CyclosaNode) -> None:
        self._deployment = deployment
        self.node = node

    def search(self, query: str, k_override: Optional[int] = None,
               max_wait: float = 600.0) -> SearchResult:
        """Issue a protected search and run the simulation until the
        result arrives (or *max_wait* simulated seconds elapse)."""
        holder: Dict[str, Any] = {}
        self.node.search(query, on_result=lambda r: holder.update(r),
                         k_override=k_override)
        trace_id = self.node.last_trace_id
        simulator = self._deployment.simulator
        deadline = simulator.now + max_wait
        while "status" not in holder and simulator.now < deadline:
            if not simulator.step():
                break
        if "status" not in holder:
            return SearchResult(query=query, k=-1, status="timeout",
                                hits=[], latency=max_wait,
                                trace_id=trace_id)
        return SearchResult(
            query=holder["query"], k=holder["k"], status=holder["status"],
            hits=holder["hits"], latency=holder["latency"],
            trace_id=trace_id)

    def preload_history(self, queries: List[str]) -> None:
        self.node.preload_history(queries)


def _register_backlog_collector(registry, deployment: "CyclosaNetwork") -> None:
    """Bridge ``outstanding_searches()`` into the registry as a
    pull-based gauge.

    Registered on ``observe=True`` deployments so backlog depth is
    visible to snapshots, the time-series layer and the chaos matrix
    without per-event plumbing: the gauges are refreshed only when the
    registry is collected, never on the search hot path. The collector
    holds a weak reference — once the deployment is garbage, it stops
    touching the gauges (and ``enable(fresh=True)`` carrying it into a
    later run's registry stays harmless)."""
    ref = weakref.ref(deployment)

    def collect(reg) -> None:
        dep = ref()
        if dep is None:
            return
        reg.gauge(
            "cyclosa_core_outstanding_searches",
            "protected searches issued but not yet terminal, summed "
            "over all nodes (pull gauge over outstanding_searches())",
        ).set(sum(node.outstanding_count() for node in dep.nodes))
        reg.gauge(
            "cyclosa_net_pending_events",
            "future events on the deployment's simulator heap",
        ).set(dep.simulator.pending)

    registry.register_collector(collect)


@dataclass
class CyclosaNetwork:
    """A fully assembled CYCLOSA deployment over the simulator."""

    simulator: Simulator
    network: Network
    engine_node: SearchEngineNode
    nodes: List[CyclosaNode]
    services: CyclosaServices
    config: CyclosaConfig
    rng: random.Random
    #: Every engine replica (``engine_node`` is replica 0; a single
    #: entry on unsharded deployments).
    engine_nodes: List[SearchEngineNode] = field(default_factory=list)
    _users: Dict[int, CyclosaUser] = field(default_factory=dict)

    @classmethod
    def create(cls, num_nodes: int = 20, seed: int = 0,
               config: Optional[CyclosaConfig] = None,
               semantic: Optional[SemanticAssessor] = None,
               corpus: Optional[Corpus] = None,
               warmup_seconds: float = 40.0,
               observe: bool = False) -> "CyclosaNetwork":
        """Build a deployment.

        Parameters
        ----------
        num_nodes:
            CYCLOSA participants (each is simultaneously client and relay).
        seed:
            Master seed; the whole deployment is deterministic given it.
        config:
            Tunables; defaults to the paper's evaluation settings.
        semantic:
            Shared semantic assessor. Default: WordNet-domain
            dictionaries over the user's sensitive topics (building the
            LDA leg is the experiments' job — it needs a training
            corpus).
        corpus:
            Search-engine corpus; a default corpus is generated if omitted.
        warmup_seconds:
            Simulated time to let gossip mix views and engine
            handshakes finish before the deployment is used.
        observe:
            Enable :mod:`repro.obs` tracing + metrics for this
            deployment, with spans stamped in *simulated* time. The
            obs state is process-global: the last deployment created
            with ``observe=True`` owns it.
        """
        if num_nodes < 2:
            raise ValueError("a CYCLOSA overlay needs at least 2 nodes")
        config = config or CyclosaConfig()
        rng = random.Random(seed)
        simulator = Simulator()
        if observe:
            import repro.obs as obs

            obs.enable(simulator=simulator)
        network = Network(
            simulator, rng,
            default_latency=LogNormalLatency(
                median=config.peer_link_median,
                sigma=config.peer_link_sigma),
            num_shards=config.sim_shards)

        corpus_obj = corpus if corpus is not None else build_corpus(seed=seed)
        num_replicas = config.engine_replicas
        addresses = replica_addresses(num_replicas)
        if num_replicas == 1:
            engines = [SearchEngine(
                corpus_obj, results_per_query=config.results_per_query)]
        else:
            engines = build_shard_engines(
                corpus_obj, num_replicas,
                results_per_query=config.results_per_query)
        engine_nodes: List[SearchEngineNode] = []
        for address, engine in zip(addresses, engines):
            rate_limiter = None
            if config.engine_rate_limit is not None:
                # One limiter per replica: each replica admits the
                # identities routed to it (Fig 8d reproduces per replica).
                rate_limiter = RateLimiter(
                    max_per_window=config.engine_rate_limit)
            engine_nodes.append(SearchEngineNode(
                network, engine, rng, address=address,
                processing=LogNormalLatency(
                    median=config.engine_processing_median,
                    sigma=config.engine_processing_sigma),
                rate_limiter=rate_limiter,
                log_capacity=config.engine_log_capacity,
                cluster=addresses if num_replicas > 1 else None,
                response_cache=(ResultCache(config.engine_cache_size)
                                if config.engine_cache_size else None),
                partial_cache=(ResultCache(config.engine_cache_size)
                               if config.engine_cache_size
                               and num_replicas > 1 else None),
                batch_window=config.engine_batch_window,
                shard_timeout=config.engine_shard_timeout))
        engine_node = engine_nodes[0]
        # Datacenter interconnect between replicas, plus the sealed
        # channels the scatter-gather partials ride on (established
        # during warm-up).
        for first in engine_nodes:
            for second in engine_nodes:
                if first is not second:
                    network.set_link_latency(
                        first.address, second.address,
                        LogNormalLatency(
                            median=config.engine_interlink_median,
                            sigma=0.2))
        for index, first in enumerate(engine_nodes):
            for second in engine_nodes[index + 1:]:
                first.tls.establish(second.address,
                                    on_ready=lambda channel: None)

        if semantic is None:
            wordnet = SyntheticWordNet.build(seed=seed)
            semantic = SemanticAssessor.from_resources(
                wordnet=wordnet,
                sensitive_topics=config.sensitive_topics,
                mode="wordnet", wordnet_min_hits=1)

        services = CyclosaServices(
            ias=IntelAttestationService(),
            policy=MeasurementPolicy(),
            repository=PublicRepository(rng),
            engine_address=engine_node.address,
            engine_addresses=tuple(addresses),
            bootstrap_queries=trending_queries(config.bootstrap_trends,
                                               seed=seed))
        services.policy.allow_class(CyclosaEnclave)

        nodes: List[CyclosaNode] = []
        for index in range(num_nodes):
            node = CyclosaNode(
                network, f"node{index:03d}", rng, config, services,
                semantic=semantic, user_id=f"user{index:03d}")
            # Peers reach the engine tier over a fast, well-peered path
            # — unlike the residential peer↔peer links.
            for replica in engine_nodes:
                network.set_link_latency(
                    node.address, replica.address,
                    LogNormalLatency(median=config.engine_link_median,
                                     sigma=0.3))
            if config.peer_heterogeneity_sigma > 0:
                # Heterogeneous access links: some homes are on fibre,
                # some on congested DSL — scale this node's link model.
                import math

                factor = math.exp(
                    config.peer_heterogeneity_sigma * rng.gauss(0.0, 1.0))
                network.set_node_latency(
                    node.address,
                    LogNormalLatency(
                        median=config.peer_link_median * factor,
                        sigma=config.peer_link_sigma))
            nodes.append(node)
        for node in nodes:
            node.bootstrap()

        deployment = cls(
            simulator=simulator, network=network, engine_node=engine_node,
            nodes=nodes, services=services, config=config, rng=rng,
            engine_nodes=engine_nodes)
        if observe:
            import repro.obs as obs

            _register_backlog_collector(obs.get_registry(), deployment)
        if warmup_seconds > 0:
            simulator.run(until=warmup_seconds)
        return deployment

    # -- access ------------------------------------------------------------

    def node(self, index: int) -> CyclosaUser:
        """A synchronous user handle for node *index*."""
        if index not in self._users:
            self._users[index] = CyclosaUser(self, self.nodes[index])
        return self._users[index]

    def run(self, seconds: float) -> None:
        """Advance the whole deployment by *seconds* of simulated time."""
        self.simulator.advance(seconds)

    @property
    def shard_assignment(self) -> Dict[str, int]:
        """Address → shard under ``config.sim_shards`` (all zeros on
        unsharded deployments); with ``sim_shards > 1`` the transport
        additionally counts cross-shard traffic in
        ``network.stats.cross_shard``."""
        return self.network.shard_assignment()

    def assembled_trace(self, trace_id: str):
        """Merge every node's span sink into the one causal trace of
        *trace_id* (see :func:`repro.obs.distributed.assemble`).

        Requires ``observe=True``; drive the deployment forward first
        (``deployment.run(...)``) if you want the fake legs' responses
        — which arrive after the real result — included.
        """
        import repro.obs as obs

        return obs.assemble(trace_id, *obs.trace_sources(obs.OBS))

    @property
    def engine_log(self):
        """The honest-but-curious engine's observation log (for attacks
        and metrics).

        A bounded ring buffer: ``config.engine_log_capacity`` caps how
        many observations are retained (oldest evicted first; eviction
        counts are on ``engine_node.tap.dropped``). With replicas, the
        tier-wide view: every replica's tap merged in timestamp order
        (the engine operator runs all replicas, so the adversary sees
        the union). Same-timestamp observations — common under the
        discrete-event clock, where several replicas serve in the same
        instant — tie-break on ``(replica index, arrival rank)``, so
        the merged order is a pure function of the deployment seed and
        never of Python's sort internals."""
        if len(self.engine_nodes) <= 1:
            return self.engine_node.tap.entries
        merged = [(entry.timestamp, replica_index, entry.seq, entry)
                  for replica_index, replica in enumerate(self.engine_nodes)
                  for entry in replica.tap.entries]
        merged.sort(key=lambda item: item[:3])
        return [entry for _, _, _, entry in merged]
