"""CYCLOSA's core: the paper's contribution.

- :mod:`repro.core.sensitivity`  — the two-dimensional sensitivity
  analysis (§V-A): semantic tagging against user-selected sensitive
  topics (WordNet + LDA dictionaries) and linkability against the
  user's own past queries (ranked cosine + exponential smoothing).
- :mod:`repro.core.adaptive`     — the adaptive protection rule (§V-B):
  semantically sensitive → ``kmax`` fakes; otherwise a linear
  projection of the linkability score onto [0, kmax].
- :mod:`repro.core.fake_queries` — the in-enclave table of *other
  users'* past queries, the source of indistinguishable fakes (§IV).
- :mod:`repro.core.enclave`      — the CYCLOSA enclave: channel keys,
  past-query table, query protection and relay forwarding, all behind
  ecall gates (§IV: "all components that process sensitive data are
  located within the enclave").
- :mod:`repro.core.node`         — the browser-extension node: the
  untrusted side (sensitivity analysis on the *user's own* data, peer
  sampling, transport) plus the enclave.
- :mod:`repro.core.client`       — the public API: build a network,
  search from any node, inspect results.
"""

from repro.core.adaptive import choose_k
from repro.core.client import CyclosaNetwork, SearchResult
from repro.core.config import CyclosaConfig
from repro.core.fake_queries import PastQueryTable
from repro.core.node import CyclosaNode
from repro.core.sensitivity import (
    LinkabilityAssessor,
    SemanticAssessor,
    SensitivityAnalysis,
    SensitivityReport,
)

__all__ = [
    "choose_k",
    "CyclosaNetwork",
    "SearchResult",
    "CyclosaConfig",
    "PastQueryTable",
    "CyclosaNode",
    "LinkabilityAssessor",
    "SemanticAssessor",
    "SensitivityAnalysis",
    "SensitivityReport",
]
