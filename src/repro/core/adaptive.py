"""The adaptive protection rule (§V-B).

"If the query includes at least one term which belongs to a dictionary
related to a sensitive topic defined by the user, the number of fake
queries is maximal, as defined by kmax. ... For queries that are not
semantically sensitive, the number of fake queries is defined according
to a linear projection between the score returned by the linkability
assessment in [0, 1] and the maximum number of fake queries."
"""

from __future__ import annotations

from repro.core.sensitivity import SensitivityReport
from repro.obs import OBS

#: Histogram buckets for chosen k (kmax is 7 in the paper's privacy
#: runs; leave headroom for sweeps).
K_BUCKETS = tuple(float(k) for k in range(17))


def choose_k(report: SensitivityReport, kmax: int) -> int:
    """Number of fake queries for one assessed query.

    - Semantically sensitive → ``kmax`` (maximum protection).
    - Otherwise → ``round(linkability * kmax)`` (linear projection).
    """
    if kmax < 0:
        raise ValueError("kmax must be >= 0")
    if report.semantic_sensitive:
        k = kmax
    else:
        k = min(kmax, int(round(report.linkability * kmax)))
    if OBS.enabled:
        OBS.registry.histogram(
            "cyclosa_core_k_chosen",
            "fake-query count selected by the adaptive rule (§V-B)",
            buckets=K_BUCKETS).observe(k)
        if report.semantic_sensitive:
            OBS.registry.counter(
                "cyclosa_core_semantic_sensitive_total",
                "queries tagged semantically sensitive").inc()
    return k
