"""The adaptive protection rule (§V-B).

"If the query includes at least one term which belongs to a dictionary
related to a sensitive topic defined by the user, the number of fake
queries is maximal, as defined by kmax. ... For queries that are not
semantically sensitive, the number of fake queries is defined according
to a linear projection between the score returned by the linkability
assessment in [0, 1] and the maximum number of fake queries."
"""

from __future__ import annotations

from repro.core.sensitivity import SensitivityReport


def choose_k(report: SensitivityReport, kmax: int) -> int:
    """Number of fake queries for one assessed query.

    - Semantically sensitive → ``kmax`` (maximum protection).
    - Otherwise → ``round(linkability * kmax)`` (linear projection).
    """
    if kmax < 0:
        raise ValueError("kmax must be >= 0")
    if report.semantic_sensitive:
        return kmax
    return min(kmax, int(round(report.linkability * kmax)))
