"""The past-queries table: CYCLOSA's fake-query source (§IV, §V-C, §V-D).

Fake queries are *real past queries of other users*, observed while
this node relayed for them and stored in enclave memory. That makes
fakes statistically indistinguishable from real traffic — the decisive
advantage over RSS/dictionary-generated fakes (TrackMeNot, GooPIR),
measured in Fig 5.

The table is a bounded FIFO with de-duplication. When empty at start-up
it is seeded from trending queries (§V-D). It lives in enclave memory:
the owner of the machine never sees other users' queries in plain text.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional


class PastQueryTable:
    """Bounded, de-duplicating FIFO of query strings."""

    def __init__(self, capacity: int = 2000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, None]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, query: str) -> bool:
        return query in self._entries

    def add(self, query: str) -> bool:
        """Insert one query; returns True if the table grew (i.e. the
        entry is new — callers use this to charge EPC for new entries).

        A repeated query is refreshed to the back of the FIFO so hot
        queries stay available as fakes.
        """
        query = query.strip()
        if not query:
            return False
        if query in self._entries:
            self._entries.move_to_end(query)
            return False
        grew = True
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            grew = False  # net memory unchanged: one in, one out
        self._entries[query] = None
        return grew

    def extend(self, queries: Iterable[str]) -> int:
        """Insert many; returns the number of net-new entries."""
        return sum(1 for query in queries if self.add(query))

    def sample(self, count: int, rng,
               exclude: Optional[str] = None) -> List[str]:
        """Draw up to *count* distinct queries uniformly at random.

        *exclude* removes the user's own real query from candidates so a
        fake never duplicates the query it is protecting.
        """
        candidates = [q for q in self._entries if q != exclude]
        if count >= len(candidates):
            return candidates
        return rng.sample(candidates, count)

    def entries(self) -> List[str]:
        """Snapshot of the table contents (oldest first)."""
        return list(self._entries)
