"""Query sensitivity analysis (§V-A).

Two independent assessments, both computed *outside* the enclave
because they only touch the local user's own data (§IV):

- **Semantic** (§V-A1): binary — does the query contain a term from a
  dictionary associated with a topic the user marked sensitive? The
  dictionary is the union of two legs: the (synthetic) WordNet domains
  and a trained LDA model's topic terms. Modes:

  * ``"wordnet"``  — one dictionary hit flags the query (high recall,
    poor precision: WordNet's polysemy tags neutral terms too);
  * ``"lda"``      — one LDA-dictionary hit flags the query;
  * ``"combined"`` — corroboration: a query is flagged when it hits a
    *core* (high-probability) LDA term, has two LDA hits, or has one
    LDA hit confirmed by a WordNet hit. Demanding corroboration for
    weak single-term evidence trades a little of LDA's recall for the
    best precision — Table II's third row.

  Both dictionaries are built after removing an *extended stoplist* of
  web-search glue words ("free", "best", "pictures", ...), exactly as
  a Mallet-style pipeline strips corpus-frequent function words; glue
  words carry no topical signal and would otherwise flag most queries.

- **Linkability** (§V-A2): a score in [0, 1] — cosine similarity of the
  query's binary term vector against each of the user's past queries,
  ranked ascending and exponentially smoothed, so the aggregate is
  dominated by the closest matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.text.smoothing import smoothed_similarity
from repro.text.stem import porter_stem
from repro.text.tokenize import tokenize
from repro.text.vectorize import cosine_binary, query_vector


@dataclass(frozen=True)
class SensitivityReport:
    """Outcome of the two-dimensional assessment for one query."""

    query: str
    semantic_sensitive: bool
    linkability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.linkability <= 1.0:
            raise ValueError("linkability must be in [0, 1]")


class SemanticAssessor:
    """Dictionary-based semantic sensitivity tagging.

    Build one with explicit dictionaries, or via :meth:`from_resources`
    from a :class:`~repro.text.wordnet.SyntheticWordNet` and/or a
    fitted :class:`~repro.text.lda.LdaModel`.
    """

    MODES = ("wordnet", "lda", "combined")

    def __init__(self, wordnet_terms: Iterable[str] = (),
                 lda_terms: Iterable[str] = (),
                 lda_core_terms: Iterable[str] = (),
                 mode: str = "combined",
                 wordnet_min_hits: int = 2,
                 stem_dictionaries: bool = True,
                 exclude_terms: Optional[Iterable[str]] = None) -> None:
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        self.mode = mode
        self.wordnet_min_hits = max(1, wordnet_min_hits)
        normalise = porter_stem if stem_dictionaries else (lambda t: t)
        self._stem = stem_dictionaries
        if exclude_terms is None:
            from repro.datasets.vocabulary import GENERAL_TERMS

            exclude_terms = GENERAL_TERMS
        excluded = frozenset(normalise(term) for term in exclude_terms)
        self.wordnet_terms: FrozenSet[str] = frozenset(
            normalise(term) for term in wordnet_terms) - excluded
        self.lda_terms: FrozenSet[str] = frozenset(
            normalise(term) for term in lda_terms) - excluded
        self.lda_core_terms: FrozenSet[str] = frozenset(
            normalise(term) for term in lda_core_terms) - excluded

    @classmethod
    def from_resources(cls, wordnet=None, lda_model=None,
                       sensitive_topics: Optional[Tuple[str, ...]] = None,
                       mode: str = "combined",
                       lda_topn: int = 90,
                       lda_topn_core: int = 50,
                       wordnet_min_hits: int = 2) -> "SemanticAssessor":
        """Build dictionaries from the lexical resources (§V-F).

        *lda_topn* sizes the broad LDA dictionary; *lda_topn_core* the
        high-confidence core used by the combined corroboration rule.
        """
        wordnet_terms: Set[str] = set()
        if wordnet is not None:
            if sensitive_topics is None:
                wordnet_terms = set(wordnet.sensitive_dictionary())
            else:
                wordnet_terms = set(
                    wordnet.sensitive_dictionary(tuple(sensitive_topics)))
        lda_terms: Set[str] = set()
        lda_core_terms: Set[str] = set()
        if lda_model is not None:
            lda_terms = set(lda_model.term_dictionary(topn_per_topic=lda_topn))
            lda_core_terms = set(
                lda_model.term_dictionary(topn_per_topic=lda_topn_core))
        return cls(wordnet_terms=wordnet_terms, lda_terms=lda_terms,
                   lda_core_terms=lda_core_terms,
                   mode=mode, wordnet_min_hits=wordnet_min_hits)

    def _query_terms(self, query: str) -> List[str]:
        tokens = tokenize(query)
        if self._stem:
            tokens = [porter_stem(token) for token in tokens]
        return tokens

    def is_sensitive(self, query: str) -> bool:
        """Binary semantic assessment of one query."""
        terms = self._query_terms(query)
        if not terms:
            return False
        wordnet_hits = sum(1 for term in terms if term in self.wordnet_terms)
        lda_hits = sum(1 for term in terms if term in self.lda_terms)
        if self.mode == "wordnet":
            return wordnet_hits >= 1
        if self.mode == "lda":
            return lda_hits >= 1
        # combined: corroboration — a high-confidence core LDA term, two
        # broad LDA hits, or one LDA hit confirmed by WordNet. Weak
        # single-term evidence is no longer enough, which is where the
        # precision gain over LDA-alone comes from (Table II, row 3).
        core_hits = sum(1 for term in terms if term in self.lda_core_terms)
        if core_hits >= 1 or lda_hits >= 2:
            return True
        return lda_hits >= 1 and wordnet_hits >= 1


class LinkabilityAssessor:
    """Similarity of a query to the user's own past queries (§V-A2)."""

    def __init__(self, alpha: float = 0.5,
                 history: Sequence[str] = ()) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._history_vectors: List[FrozenSet[str]] = [
            query_vector(text) for text in history
        ]

    def __len__(self) -> int:
        return len(self._history_vectors)

    def record(self, query: str) -> None:
        """Append a query the user actually issued to the local history."""
        vector = query_vector(query)
        if vector:
            self._history_vectors.append(vector)

    def score(self, query: str) -> float:
        """Linkability in [0, 1]; 0.0 with no history (a fresh profile
        cannot be linked to anything)."""
        vector = query_vector(query)
        if not vector or not self._history_vectors:
            return 0.0
        similarities = (
            cosine_binary(vector, past) for past in self._history_vectors
        )
        return min(1.0, max(0.0, smoothed_similarity(
            similarities, alpha=self.alpha)))


class SensitivityAnalysis:
    """The full §V-A pipeline: semantic + linkability for one user."""

    def __init__(self, semantic: SemanticAssessor,
                 linkability: LinkabilityAssessor) -> None:
        self.semantic = semantic
        self.linkability = linkability

    def assess(self, query: str) -> SensitivityReport:
        return SensitivityReport(
            query=query,
            semantic_sensitive=self.semantic.is_sensitive(query),
            linkability=self.linkability.score(query),
        )

    def remember(self, query: str) -> None:
        """Record an issued query so future linkability sees it."""
        self.linkability.record(query)
