"""Query sensitivity analysis (§V-A).

Two independent assessments, both computed *outside* the enclave
because they only touch the local user's own data (§IV):

- **Semantic** (§V-A1): binary — does the query contain a term from a
  dictionary associated with a topic the user marked sensitive? The
  dictionary is the union of two legs: the (synthetic) WordNet domains
  and a trained LDA model's topic terms. Modes:

  * ``"wordnet"``  — one dictionary hit flags the query (high recall,
    poor precision: WordNet's polysemy tags neutral terms too);
  * ``"lda"``      — one LDA-dictionary hit flags the query;
  * ``"combined"`` — corroboration: a query is flagged when it hits a
    *core* (high-probability) LDA term, has two LDA hits, or has one
    LDA hit confirmed by a WordNet hit. Demanding corroboration for
    weak single-term evidence trades a little of LDA's recall for the
    best precision — Table II's third row.

  Both dictionaries are built after removing an *extended stoplist* of
  web-search glue words ("free", "best", "pictures", ...), exactly as
  a Mallet-style pipeline strips corpus-frequent function words; glue
  words carry no topical signal and would otherwise flag most queries.

- **Linkability** (§V-A2): a score in [0, 1] — cosine similarity of the
  query's binary term vector against each of the user's past queries,
  ranked ascending and exponentially smoothed, so the aggregate is
  dominated by the closest matches.

The linkability assessor keeps an incremental inverted index
(term → history entries containing it), the same structure the
SimAttack adversary builds over whole profile corpora
(:mod:`repro.attacks.simattack`): scoring touches only the history
entries that share a term with the query — the only entries with a
non-zero cosine — instead of scanning the full history, while
returning bit-identical scores (see :meth:`LinkabilityAssessor.score`
and the reference :meth:`LinkabilityAssessor.score_linear`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.text.smoothing import exponential_smoothing, smoothed_similarity
from repro.text.stem import porter_stem
from repro.text.tokenize import stemmed_terms, tokenize
from repro.text.vectorize import cosine_binary, query_vector


@dataclass(frozen=True)
class SensitivityReport:
    """Outcome of the two-dimensional assessment for one query."""

    query: str
    semantic_sensitive: bool
    linkability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.linkability <= 1.0:
            raise ValueError("linkability must be in [0, 1]")


class SemanticAssessor:
    """Dictionary-based semantic sensitivity tagging.

    Build one with explicit dictionaries, or via :meth:`from_resources`
    from a :class:`~repro.text.wordnet.SyntheticWordNet` and/or a
    fitted :class:`~repro.text.lda.LdaModel`.
    """

    MODES = ("wordnet", "lda", "combined")

    def __init__(self, wordnet_terms: Iterable[str] = (),
                 lda_terms: Iterable[str] = (),
                 lda_core_terms: Iterable[str] = (),
                 mode: str = "combined",
                 wordnet_min_hits: int = 1,
                 stem_dictionaries: bool = True,
                 exclude_terms: Optional[Iterable[str]] = None) -> None:
        # wordnet_min_hits: dictionary hits required to flag a query in
        # "wordnet" mode. The default is 1 — the paper's single-hit
        # tagging rule, and the behaviour every existing caller
        # observed while the threshold was stored but never consulted.
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        self.mode = mode
        self.wordnet_min_hits = max(1, wordnet_min_hits)
        normalise = porter_stem if stem_dictionaries else (lambda t: t)
        self._stem = stem_dictionaries
        if exclude_terms is None:
            from repro.datasets.vocabulary import GENERAL_TERMS

            exclude_terms = GENERAL_TERMS
        excluded = frozenset(normalise(term) for term in exclude_terms)
        self.wordnet_terms: FrozenSet[str] = frozenset(
            normalise(term) for term in wordnet_terms) - excluded
        self.lda_terms: FrozenSet[str] = frozenset(
            normalise(term) for term in lda_terms) - excluded
        self.lda_core_terms: FrozenSet[str] = frozenset(
            normalise(term) for term in lda_core_terms) - excluded

    @classmethod
    def from_resources(cls, wordnet=None, lda_model=None,
                       sensitive_topics: Optional[Tuple[str, ...]] = None,
                       mode: str = "combined",
                       lda_topn: int = 90,
                       lda_topn_core: int = 50,
                       wordnet_min_hits: int = 1) -> "SemanticAssessor":
        """Build dictionaries from the lexical resources (§V-F).

        *lda_topn* sizes the broad LDA dictionary; *lda_topn_core* the
        high-confidence core used by the combined corroboration rule.
        """
        wordnet_terms: Set[str] = set()
        if wordnet is not None:
            if sensitive_topics is None:
                wordnet_terms = set(wordnet.sensitive_dictionary())
            else:
                wordnet_terms = set(
                    wordnet.sensitive_dictionary(tuple(sensitive_topics)))
        lda_terms: Set[str] = set()
        lda_core_terms: Set[str] = set()
        if lda_model is not None:
            lda_terms = set(lda_model.term_dictionary(topn_per_topic=lda_topn))
            lda_core_terms = set(
                lda_model.term_dictionary(topn_per_topic=lda_topn_core))
        return cls(wordnet_terms=wordnet_terms, lda_terms=lda_terms,
                   lda_core_terms=lda_core_terms,
                   mode=mode, wordnet_min_hits=wordnet_min_hits)

    def _query_terms(self, query: str) -> Sequence[str]:
        if self._stem:
            # Memoized tokenise+stem (repro.text.cache): repeated
            # queries skip the whole text pipeline.
            return stemmed_terms(query)
        return tokenize(query)

    def is_sensitive(self, query: str) -> bool:
        """Binary semantic assessment of one query."""
        terms = self._query_terms(query)
        if not terms:
            return False
        wordnet_hits = sum(1 for term in terms if term in self.wordnet_terms)
        lda_hits = sum(1 for term in terms if term in self.lda_terms)
        if self.mode == "wordnet":
            return wordnet_hits >= self.wordnet_min_hits
        if self.mode == "lda":
            return lda_hits >= 1
        # combined: corroboration — a high-confidence core LDA term, two
        # broad LDA hits, or one LDA hit confirmed by WordNet. Weak
        # single-term evidence is no longer enough, which is where the
        # precision gain over LDA-alone comes from (Table II, row 3).
        core_hits = sum(1 for term in terms if term in self.lda_core_terms)
        if core_hits >= 1 or lda_hits >= 2:
            return True
        return lda_hits >= 1 and wordnet_hits >= 1


class LinkabilityAssessor:
    """Similarity of a query to the user's own past queries (§V-A2).

    Backed by an incremental inverted index: :meth:`record` appends the
    query's terms to per-term postings lists, and :meth:`score` visits
    only the history entries sharing at least one term with the query.
    Entries sharing no term have cosine exactly 0.0 and enter the
    exponentially-smoothed aggregate only through their *count* (they
    occupy the low end of the ascending ranking), so the indexed score
    is bit-identical to the O(history) scan it replaces —
    :meth:`score_linear` keeps that reference implementation for
    equivalence tests and the perf trajectory.

    Parameters
    ----------
    alpha:
        Exponential-smoothing factor of the ranked aggregate.
    history:
        Pre-CYCLOSA queries to preload (every entry counts toward the
        ranking, even ones that vectorize to nothing — matching the
        original constructor).
    max_history:
        Optional sliding-window bound: once exceeded, the *oldest*
        entries stop contributing to the score and are dropped from the
        index (postings are pruned lazily, then compacted). ``None``
        (the default) keeps the full unbounded history, as the paper
        assumes.
    """

    def __init__(self, alpha: float = 0.5,
                 history: Sequence[str] = (),
                 max_history: Optional[int] = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if max_history is not None and max_history < 1:
            raise ValueError("max_history must be None or >= 1")
        self.alpha = alpha
        self.max_history = max_history
        #: live history entries: index -> binary term vector.
        self._vectors: Dict[int, FrozenSet[str]] = {}
        #: term -> ascending indices of history entries containing it.
        self._postings: Dict[str, List[int]] = {}
        self._next_index = 0
        self._start = 0        # first live index (window eviction)
        self._dead = 0         # evicted entries still in postings
        for text in history:
            self._append(query_vector(text))

    def __len__(self) -> int:
        return len(self._vectors)

    def _append(self, vector: FrozenSet[str]) -> None:
        index = self._next_index
        self._next_index = index + 1
        self._vectors[index] = vector
        postings = self._postings
        for term in vector:
            postings.setdefault(term, []).append(index)
        if self.max_history is not None:
            while len(self._vectors) > self.max_history:
                del self._vectors[self._start]
                self._start += 1
                self._dead += 1
            # Postings keep pointing at evicted indices (score skips
            # them); rebuild once the dead weight rivals the live set.
            if self._dead > 256 and self._dead >= len(self._vectors):
                self._compact()

    def _compact(self) -> None:
        postings: Dict[str, List[int]] = {}
        for index in sorted(self._vectors):
            for term in self._vectors[index]:
                postings.setdefault(term, []).append(index)
        self._postings = postings
        self._dead = 0

    def record(self, query: str) -> None:
        """Append a query the user actually issued to the local history."""
        vector = query_vector(query)
        if vector:
            self._append(vector)

    def score(self, query: str) -> float:
        """Linkability in [0, 1]; 0.0 with no history (a fresh profile
        cannot be linked to anything).

        Index walk instead of history scan: accumulate per-entry term
        overlaps from the postings of the query's terms, turn them into
        the non-zero cosines, and smooth. Entries never touched have
        cosine 0.0; ranked ascending they precede every non-zero value
        and leave the running smoothed value at exactly 0.0, so only
        *whether* zeros exist matters — reproduced here by seeding the
        recurrence with 0.0 whenever fewer entries overlap than exist.
        """
        vector = query_vector(query)
        total = len(self._vectors)
        if not vector or not total:
            return 0.0
        overlaps: Dict[int, int] = {}
        start = self._start
        postings_get = self._postings.get
        for term in vector:
            for index in postings_get(term, ()):
                if index >= start:
                    overlaps[index] = overlaps.get(index, 0) + 1
        qlen = len(vector)
        vectors = self._vectors
        similarities = [
            count / math.sqrt(qlen * len(vectors[index]))
            for index, count in overlaps.items()
        ]
        similarities.sort()
        if len(similarities) < total:
            # At least one zero-cosine entry ranks first: the smoothing
            # recurrence reaches the non-zero tail with value 0.0.
            alpha = self.alpha
            beta = 1.0 - alpha
            smoothed = 0.0
            for value in similarities:
                smoothed = alpha * value + beta * smoothed
        else:
            # No zeros: the smallest non-zero seeds the recurrence.
            smoothed = exponential_smoothing(similarities, alpha=self.alpha)
        return min(1.0, max(0.0, smoothed))

    def score_linear(self, query: str) -> float:
        """The pre-index reference: cosine against *every* live history
        entry, then :func:`~repro.text.smoothing.smoothed_similarity`.
        O(history); kept for equivalence tests and the perf benches."""
        vector = query_vector(query)
        if not vector or not self._vectors:
            return 0.0
        similarities = (
            cosine_binary(vector, past) for past in self._vectors.values()
        )
        return min(1.0, max(0.0, smoothed_similarity(
            similarities, alpha=self.alpha)))


class SensitivityAnalysis:
    """The full §V-A pipeline: semantic + linkability for one user."""

    def __init__(self, semantic: SemanticAssessor,
                 linkability: LinkabilityAssessor) -> None:
        self.semantic = semantic
        self.linkability = linkability

    def assess(self, query: str) -> SensitivityReport:
        return SensitivityReport(
            query=query,
            semantic_sensitive=self.semantic.is_sensitive(query),
            linkability=self.linkability.score(query),
        )

    def remember(self, query: str) -> None:
        """Record an issued query so future linkability sees it."""
        self.linkability.record(query)
