"""The CYCLOSA node: browser extension + enclave (§IV, §V).

One node plays both roles of the protocol:

- **Client**: assess the local user's query sensitivity (outside the
  enclave — it only involves the user's own data), pick ``k + 1``
  random relays from the peer-sampling view, have the enclave build one
  sealed record per relay (real query to one, indistinguishable fakes
  to the others), dispatch them, and surface only the real query's
  results.
- **Relay**: accept sealed records from attested peers, let the enclave
  store the query and re-seal it for the engine, forward, and route the
  sealed answer back. The relay host never sees any plaintext.

Failure handling follows §VI-b: a relay that does not respond within
the timeout is blacklisted (dropped from the view and its channel
forgotten) and the real query is retried through a different peer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.adaptive import choose_k
from repro.core.config import CyclosaConfig
from repro.core.enclave import CyclosaEnclave
from repro.core.sensitivity import (
    LinkabilityAssessor,
    SemanticAssessor,
    SensitivityAnalysis,
)
from repro.gossip.bootstrap_repo import PublicRepository
from repro.gossip.peer_sampling import PeerSamplingService
from repro.net.transport import Network, NetNode, RequestContext
from repro.obs import (OBS, TraceContext, close_remote_span,
                       open_remote_span, remote_context)
from repro.net.tls import SecureChannelManager, SgxAuthenticator, SignatureAuthenticator
from repro.searchengine.sharding import route_to_replica
from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy
from repro.sgx.enclave import EnclaveHost

FORWARD_KIND = "cyclosa.fwd"


@dataclass
class CyclosaServices:
    """Deployment-wide services every node shares."""

    ias: IntelAttestationService
    policy: MeasurementPolicy
    repository: PublicRepository
    engine_address: str
    bootstrap_queries: List[str] = field(default_factory=list)
    #: Every engine replica's address (scale-out tier); empty means a
    #: single engine at ``engine_address``. Each node is pinned to one
    #: replica by a stable hash of its own address, so the per-identity
    #: rate limiter at that replica keeps seeing the same identities.
    engine_addresses: Tuple[str, ...] = ()


@dataclass
class NodeStats:
    """Per-node counters surfaced to the experiments."""

    queries_issued: int = 0
    fakes_sent: int = 0
    relayed: int = 0
    retries: int = 0
    blacklisted_peers: int = 0
    #: Searches whose real-query relay set ever intersected the fake
    #: legs' relay set (§V one-query-per-relay property; must stay 0).
    disjointness_violations: int = 0


@dataclass
class ProtectedSearch:
    """Book-keeping for one in-flight protected query."""

    query: str
    k: int
    issued_at: float
    on_result: Callable[[Dict[str, Any]], None]
    retries_left: int
    real_token: Optional[str] = None
    done: bool = False
    #: Node-unique id; the search stays in ``CyclosaNode._searches``
    #: until a terminal status is delivered (hang detection).
    search_id: str = ""
    #: Retry attempts consumed so far (drives the backoff schedule).
    attempts: int = 0
    #: Every relay that ever carried the real query (initial dispatch
    #: plus §VI-b retries) / a fake leg. Replacement draws exclude the
    #: union, so the two sets stay disjoint across retries (§V).
    real_relays: Set[str] = field(default_factory=set)
    fake_relays: Set[str] = field(default_factory=set)
    #: Root span of this query's trace (None when obs is disabled).
    trace_root: Optional[Any] = None
    #: The open ``engine`` stage span (real record in flight).
    engine_span: Optional[Any] = None
    #: Distributed tracing: relay -> (path index, reserved span id of
    #: that leg's ``path`` span). The same span id is embedded (as the
    #: parent) in the sealed record bound for that relay.
    path_info: Dict[str, Any] = field(default_factory=dict)
    #: Open per-leg ``path`` spans, keyed by path index.
    path_spans: Dict[int, Any] = field(default_factory=dict)
    #: Next fan-out leg number — retries continue numbering past k.
    next_path: int = 0


class CyclosaNode(NetNode):
    """One participant: untrusted extension code + trusted enclave."""

    _ids = itertools.count()

    def __init__(self, network: Network, address: str, rng,
                 config: CyclosaConfig, services: CyclosaServices,
                 semantic: Optional[SemanticAssessor] = None,
                 user_id: Optional[str] = None) -> None:
        super().__init__(network, address)
        self.rng = rng
        self.config = config
        self.services = services
        self.user_id = user_id or address
        #: The engine replica this node (as client *and* relay) talks
        #: to — a stable hash of the node address over the tier's
        #: addresses, so the assignment survives restarts and keeps
        #: per-identity rate limiting per replica meaningful.
        self.engine_address = route_to_replica(
            address, services.engine_addresses or (services.engine_address,))
        self.stats = NodeStats()

        # -- trusted side ------------------------------------------------
        self.host = EnclaveHost(rng)
        self.enclave: CyclosaEnclave = self.host.create_enclave(
            CyclosaEnclave,
            table_capacity=config.table_capacity,
            bytes_per_table_entry=config.bytes_per_table_entry)
        services.ias.provision_host(self.host)

        # -- channel managers ---------------------------------------------
        # Peer channels require mutual remote attestation (§V-D); keys
        # land inside the enclave on establishment, both directions.
        self.peer_tls = SecureChannelManager(
            self,
            SgxAuthenticator(self.enclave, self.host, services.ias,
                             services.policy),
            rng, kind="atls",
            on_established=lambda ch: self.enclave.install_peer_channel(
                ch.peer, ch))
        # The engine channel is ordinary server-auth TLS, terminated
        # inside the enclave (§V-F).
        self.engine_tls = SecureChannelManager(
            self,
            SignatureAuthenticator(self.enclave.identity),
            rng, kind="tls",
            on_established=lambda ch: self.enclave.install_engine_channel(ch))

        # -- overlay -----------------------------------------------------
        self.pss = PeerSamplingService(
            self, rng, view_size=config.view_size,
            interval=config.gossip_interval)

        # -- sensitivity (untrusted: local user's own data, §IV) ----------
        self.sensitivity = SensitivityAnalysis(
            semantic=semantic or SemanticAssessor(),
            linkability=LinkabilityAssessor(alpha=config.smoothing_alpha))

        # -- sealed persistence -------------------------------------------
        from repro.sgx.sealing import SealingService

        self.sealing = SealingService(self.host.platform_id, rng)

        self._searches: Dict[str, ProtectedSearch] = {}
        self._search_ids = itertools.count()
        #: Trace id of the most recently issued search (None when obs
        #: is disabled); the synchronous facade surfaces it.
        self.last_trace_id: Optional[str] = None

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def bootstrap(self) -> None:
        """Join the overlay: publish, seed the view and the fake table,
        start gossip, open the engine channel (§V-D)."""
        repo = self.services.repository
        self.pss.bootstrap(repo.sample(self.config.bootstrap_sample,
                                       exclude=[self.address]))
        repo.publish(self.address)
        self.pss.start()
        if self.services.bootstrap_queries:
            self.enclave.seed_table(
                list(self.services.bootstrap_queries[: self.config.bootstrap_trends]))
        self.engine_tls.establish(
            self.engine_address,
            on_ready=lambda channel: None)

    def preload_history(self, queries: List[str]) -> None:
        """Load the user's pre-CYCLOSA search history (the linkability
        assessment compares new queries against it, §V-A2)."""
        for query in queries:
            self.sensitivity.remember(query)

    def persist_table(self):
        """Seal the enclave's past-queries table for storage across
        browser restarts. Returns an opaque blob the untrusted host can
        keep on disk but cannot read."""
        return self.enclave.seal_table(self.sealing)

    def restore_table(self, blob) -> int:
        """Restore a sealed table blob; returns entries restored."""
        return self.enclave.unseal_table(self.sealing, blob)

    # ------------------------------------------------------------------
    # client side
    # ------------------------------------------------------------------

    def search(self, query: str,
               on_result: Callable[[Dict[str, Any]], None],
               k_override: Optional[int] = None) -> int:
        """Issue one protected search; *on_result* receives a dict with
        ``query``, ``k``, ``hits``, ``latency`` and ``status``.

        Returns the chosen ``k`` (useful to experiments). Pass
        *k_override* to bypass the adaptive rule (the latency sweeps of
        Fig 8b fix k explicitly).
        """
        tracer = OBS.tracer if OBS.enabled else None
        root = None
        if tracer is not None:
            root = tracer.start_span("search", attributes={
                "node": self.address, "query_terms": len(query.split())})
        self.last_trace_id = root.trace_id if root is not None else None

        if k_override is not None:
            k = k_override
            if tracer is not None:
                # Emit the assessment stages even when bypassed, so
                # every trace carries the full six-stage pipeline.
                span = tracer.start_span("sensitivity", parent=root,
                                         attributes={"skipped": True})
                tracer.end_span(span)
                span = tracer.start_span(
                    "adaptive_k", parent=root,
                    attributes={"k": k, "override": True})
                tracer.end_span(span)
        else:
            if tracer is not None:
                span = tracer.start_span("sensitivity", parent=root)
                report = self.sensitivity.assess(query)
                span.set_attributes({
                    "semantic_sensitive": report.semantic_sensitive,
                    "linkability": report.linkability})
                tracer.end_span(span)
                span = tracer.start_span("adaptive_k", parent=root)
                k = choose_k(report, self.config.kmax)
                span.set_attribute("k", k)
                tracer.end_span(span)
            else:
                report = self.sensitivity.assess(query)
                k = choose_k(report, self.config.kmax)
        self.sensitivity.remember(query)
        self.stats.queries_issued += 1
        if OBS.enabled:
            OBS.registry.counter("cyclosa_core_searches_total",
                                 "protected searches issued").inc()

        # The enclave can only produce as many distinct fakes as its
        # table holds; clamp k so relay selection matches.
        k = min(k, self.enclave.table_size())
        if root is not None:
            root.set_attribute("k", k)

        search = ProtectedSearch(
            query=query, k=k, issued_at=self.network.simulator.now,
            on_result=on_result, retries_left=self.config.max_retries,
            trace_root=root,
            search_id=f"{self.address}/s{next(self._search_ids):06d}")
        self._searches[search.search_id] = search
        self._select_relays_and_dispatch(search)
        return k

    def outstanding_searches(self) -> List[ProtectedSearch]:
        """Issued searches that have not yet reached a terminal status.

        Every protected search must terminate — with ``ok``,
        ``captcha``, ``no-peers``, ``relay-failure`` or
        ``channel-failure`` — whatever the overlay does (§VI-b). The
        chaos harness drains the simulator and asserts this is empty;
        a non-empty result after a drain is a hung search, i.e. a bug.
        """
        return list(self._searches.values())

    def outstanding_count(self) -> int:
        """Backlog depth: ``len(outstanding_searches())`` without the
        copy — cheap enough for pull-gauge collectors to call on every
        registry snapshot."""
        return len(self._searches)

    # -- relay selection -------------------------------------------------

    def _select_relays_and_dispatch(self, search: ProtectedSearch) -> None:
        needed = search.k + 1
        relays = self.pss.random_peers(needed, exclude=[self.address])
        if not relays:
            self._finish(search, status="no-peers", hits=[])
            return
        if len(relays) < needed:
            # Small view: degrade protection rather than fail (§V-C
            # always sends the real query).
            search.k = len(relays) - 1
        self._ensure_channels(
            relays[: search.k + 1],
            lambda ready: self._dispatch(search, ready))

    def _ensure_channels(self, relays: List[str],
                         proceed: Callable[[List[str]], None]) -> None:
        """Attest-and-connect any relay we lack a channel with, then
        call *proceed* with those that succeeded."""
        missing = [r for r in relays if not self.enclave.has_peer_channel(r)]
        if not missing:
            proceed(relays)
            return
        outcome = {"waiting": len(missing), "failed": set()}

        def settle(peer: str, ok: bool) -> None:
            if not ok:
                outcome["failed"].add(peer)
                self._blacklist(peer)
            outcome["waiting"] -= 1
            if outcome["waiting"] == 0:
                ready = [r for r in relays if r not in outcome["failed"]]
                proceed(ready)

        for peer in missing:
            self.peer_tls.establish(
                peer,
                on_ready=lambda ch, p=peer: settle(p, True),
                on_fail=lambda reason, p=peer: settle(p, False),
                timeout=self.config.relay_timeout)

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, search: ProtectedSearch, relays: List[str]) -> None:
        if search.done:
            return
        # Channels are re-checked at dispatch time: while
        # _ensure_channels waited on other handshakes, a concurrent
        # search's timeout may have blacklisted an already-ready relay
        # and dropped its channel. Sealing for it would raise; dropping
        # it degrades k instead (same policy as a small view).
        relays = [r for r in relays if self.enclave.has_peer_channel(r)]
        if not relays:
            # Peers existed but no channel could be established
            # (attestation denied, handshakes timed out): distinct from
            # an empty view, and still a terminal status — never a hang.
            self._finish(search, status="channel-failure", hits=[])
            return
        k = len(relays) - 1
        search.k = min(search.k, k)
        tracer = OBS.tracer if OBS.enabled else None
        fake_span = None
        trace_contexts = None
        root_ctx = None
        if tracer is not None and search.trace_root is not None:
            fake_span = tracer.start_span("fake_generation",
                                          parent=search.trace_root)
            # One leg per relay: reserve the span id of the leg's
            # "path" span now, so the enclave can seal a context whose
            # parent is that span — the relay's spans then attach in
            # the right place without anything crossing the wire in
            # plain text.
            root = search.trace_root
            trace_contexts = {}
            for relay in relays[: search.k + 1]:
                path = search.next_path
                search.next_path += 1
                leg_id = tracer.reserve_span_id()
                search.path_info[relay] = (path, leg_id)
                trace_contexts[relay] = TraceContext(
                    root.trace_id, leg_id, path).to_traceparent()
            root_ctx = TraceContext(root.trace_id, root.span_id, 0)
        if root_ctx is not None:
            with remote_context(self.address, root_ctx):
                batch = self.enclave.build_protected_batch(
                    search.query, search.k, relays[: search.k + 1],
                    true_user=self.user_id, trace_contexts=trace_contexts)
        else:
            batch = self.enclave.build_protected_batch(
                search.query, search.k, relays[: search.k + 1],
                true_user=self.user_id)
        self.stats.fakes_sent += max(0, len(batch) - 1)
        # Enclave crypto cost + per-record client overhead stagger the
        # sends — this serialization is why latency grows with k (Fig 8b).
        delay = self.host.meter.take()
        if fake_span is not None:
            # The modelled enclave time for sealing the batch is the
            # meter cost just drained — stamp it as the span's width.
            fake_span.set_attributes({"k": search.k,
                                      "records": len(batch)})
            tracer.end_span(fake_span, end_time=fake_span.start + delay)
        fanout_span = None
        if tracer is not None and search.trace_root is not None:
            fanout_span = tracer.start_span(
                "fanout", parent=search.trace_root,
                attributes={"records": len(batch)})
        for relay, sealed in batch:
            delay += self.config.client_request_overhead
            token = self.enclave.pending_token_for_relay(relay)
            is_real = token is not None
            if is_real:
                search.real_token = token
                search.real_relays.add(relay)
            else:
                search.fake_relays.add(relay)
            self.network.simulator.post(
                delay,
                lambda r=relay, s=sealed, real=is_real: self._send_record(
                    search, r, s, real))
        if fanout_span is not None:
            # The fan-out stage lasts until the last staggered record
            # leaves the extension: start + the accumulated delay.
            tracer.end_span(fanout_span,
                            end_time=fanout_span.start + delay)

    def _send_record(self, search: ProtectedSearch, relay: str,
                     sealed: bytes, is_real: bool) -> None:
        if search.done:
            return
        if OBS.enabled and search.trace_root is not None:
            info = search.path_info.get(relay)
            if info is not None and info[0] not in search.path_spans:
                # The leg's "path" span: from the record leaving the
                # extension until its response (or timeout) returns.
                # Its id was reserved in _dispatch and is the parent
                # the relay's spans join to.
                path, leg_id = info
                root = search.trace_root
                search.path_spans[path] = open_remote_span(
                    OBS.tracer, "path",
                    TraceContext(root.trace_id, root.span_id, path),
                    node=self.address, span_id=leg_id,
                    attributes={"relay": relay})
        if (is_real and OBS.enabled and search.trace_root is not None
                and search.engine_span is None):
            # The "engine" stage: the real record's round trip through
            # its relay to the search engine and back.
            search.engine_span = OBS.tracer.start_span(
                "engine", parent=search.trace_root,
                attributes={"relay": relay, "bytes": len(sealed)})

        def on_reply(payload: Any) -> None:
            self._on_relay_response(search, relay, payload, is_real)

        def on_timeout() -> None:
            self._on_relay_timeout(search, relay, is_real)

        self.request(relay, sealed, on_reply,
                     timeout=self.config.relay_timeout * 4,
                     on_timeout=on_timeout,
                     size_bytes=len(sealed), kind=FORWARD_KIND)

    # -- responses ---------------------------------------------------------

    def _close_path_span(self, search: ProtectedSearch, relay: str,
                         timed_out: bool = False) -> None:
        """End the fan-out leg's ``path`` span (response or timeout)."""
        info = search.path_info.get(relay)
        if info is None:
            return
        span = search.path_spans.pop(info[0], None)
        if span is None or span.finished:
            return
        if timed_out:
            span.set_attribute("timeout", True)
        OBS.tracer.end_span(span)

    def _on_relay_response(self, search: ProtectedSearch, relay: str,
                           payload: Any, is_real: bool = False) -> None:
        if not isinstance(payload, (bytes, bytearray)):
            if is_real:
                self._on_filtered_real(search)
            return
        leg_ctx = None
        if OBS.enabled:
            self._close_path_span(search, relay)
            info = search.path_info.get(relay)
            if info is not None and search.trace_root is not None:
                leg_ctx = TraceContext(search.trace_root.trace_id,
                                       info[1], info[0])
        meter_before = self.host.meter.total
        if leg_ctx is not None:
            with remote_context(self.address, leg_ctx):
                result = self.enclave.open_relay_response(
                    relay, bytes(payload))
        else:
            result = self.enclave.open_relay_response(relay, bytes(payload))
        filtering_cost = self.host.meter.total - meter_before
        if result is None:
            # fake-query response or undecodable: dropped in-enclave
            if OBS.enabled:
                OBS.registry.counter(
                    "cyclosa_core_fake_responses_total",
                    "relay responses filtered inside the enclave").inc()
            if is_real:
                # The *real* leg's response was unusable — typically a
                # concurrent search timed out on the same relay and
                # blacklisted it, dropping the secure channel while
                # this response was still in flight. The transport has
                # already cancelled this leg's timeout, so without a
                # hand-off here the search would hang forever; route it
                # into the §VI-b retry path instead. The pending token
                # survives an undecryptable response, so rebuild_real
                # can re-seal for a fresh relay.
                self._on_filtered_real(search)
            return
        if search.done:
            return
        if OBS.enabled and search.trace_root is not None:
            tracer = OBS.tracer
            if search.engine_span is not None:
                search.engine_span.set_attribute("status", result["status"])
                tracer.end_span(search.engine_span)
                search.engine_span = None
            span = tracer.start_span(
                "response_filtering", parent=search.trace_root,
                attributes={"status": result["status"],
                            "hits": len(result["hits"])})
            # The enclave charge for opening the response is the
            # stage's modelled duration. The simulator delivers the
            # result at `now` regardless (the charge lives on the cost
            # meter), so extend the root to keep child spans nested;
            # _finish's end_span is then an idempotent no-op.
            tracer.end_span(span, end_time=span.start + filtering_cost)
            tracer.end_span(search.trace_root, end_time=span.end)
        self._finish(search, status=result["status"], hits=result["hits"])

    def _on_relay_timeout(self, search: ProtectedSearch, relay: str,
                          is_real: bool) -> None:
        self._blacklist(relay)
        if OBS.enabled:
            self._close_path_span(search, relay, timed_out=True)
        if not is_real or search.done:
            return
        if OBS.enabled:
            OBS.registry.counter("cyclosa_core_relay_timeouts_total",
                                 "real-query relay timeouts (§VI-b)").inc()
            if search.trace_root is not None and search.engine_span is not None:
                search.engine_span.set_attribute("timeout", True)
                OBS.tracer.end_span(search.engine_span)
                search.engine_span = None
        if search.real_token is None:
            self._finish(search, status="relay-failure", hits=[])
            return
        self._schedule_retry(search)

    def _on_filtered_real(self, search: ProtectedSearch) -> None:
        """A real-leg response arrived but could not be used.

        Unlike a timeout the relay is not blacklisted — it answered;
        the record was lost to a locally dropped channel or a decrypt
        failure. The leg is nonetheless dead (its transport timeout was
        cancelled when the response arrived), so the search must move
        on: retry through a fresh relay, or terminate explicitly once
        the budget is spent.
        """
        if search.done:
            return
        if OBS.enabled:
            OBS.registry.counter(
                "cyclosa_core_real_responses_filtered_total",
                "real-leg responses unusable in-enclave (retried)").inc()
            if search.trace_root is not None and search.engine_span is not None:
                search.engine_span.set_attribute("filtered", True)
                OBS.tracer.end_span(search.engine_span)
                search.engine_span = None
        if search.real_token is None:
            self._finish(search, status="relay-failure", hits=[])
            return
        self._schedule_retry(search)

    # -- §VI-b retry path --------------------------------------------------

    def _schedule_retry(self, search: ProtectedSearch) -> None:
        """Queue the next real-query retry behind exponential backoff.

        The r-th retry waits ``base * factor**r`` (capped), stretched
        by a seeded jitter draw so synchronised clients spread out
        instead of re-hitting a struggling overlay in lock-step. When
        the retry budget is exhausted the search terminates with
        ``relay-failure`` — there is no path out of here that leaves
        the search pending forever.
        """
        if search.done:
            return
        if search.retries_left <= 0:
            self._finish(search, status="relay-failure", hits=[])
            return
        search.retries_left -= 1
        self.stats.retries += 1
        config = self.config
        backoff = min(config.retry_backoff_max,
                      config.retry_backoff_base
                      * config.retry_backoff_factor ** search.attempts)
        search.attempts += 1
        if config.retry_backoff_jitter > 0:
            backoff *= 1.0 + config.retry_backoff_jitter * self.rng.random()
        if OBS.enabled:
            OBS.registry.counter("cyclosa_core_retry_backoff_total",
                                 "backed-off real-query retries").inc()
        self.network.simulator.post(
            backoff, lambda: self._retry_real(search))

    def _retry_real(self, search: ProtectedSearch) -> None:
        """Re-dispatch the real query through a fresh relay.

        The replacement draw excludes every relay this search ever
        used — real legs *and* fake legs — so a retry can never land
        on a relay already holding a fake record of the same search
        (which would clobber its pending entry and break the §V
        one-query-per-relay property).
        """
        if search.done:
            return
        used = search.real_relays | search.fake_relays
        used.add(self.address)
        replacements = self.pss.random_peers(1, exclude=sorted(used))
        if not replacements:
            self._finish(search, status="no-peers", hits=[])
            return
        replacement = replacements[0]

        def retry(ready: List[str]) -> None:
            if search.done:
                return
            if not ready:
                # Channel re-establishment failed (attestation denial,
                # handshake timeout). Burn another retry through the
                # backoff path rather than silently dropping the
                # search; with the budget exhausted this terminates
                # with an explicit status.
                if search.retries_left > 0:
                    self._schedule_retry(search)
                else:
                    self._finish(search, status="channel-failure", hits=[])
                return
            traceparent = None
            if OBS.enabled and search.trace_root is not None:
                # The retry is a fresh fan-out leg: new path number,
                # new reserved "path" span id, same trace.
                root = search.trace_root
                path = search.next_path
                search.next_path += 1
                leg_id = OBS.tracer.reserve_span_id()
                search.path_info[ready[0]] = (path, leg_id)
                traceparent = TraceContext(
                    root.trace_id, leg_id, path).to_traceparent()
            try:
                token, sealed = self.enclave.rebuild_real(
                    search.real_token, ready[0], traceparent=traceparent)
            except KeyError:
                # The channel vanished between establishment and
                # sealing (a concurrent search blacklisted the same
                # peer) or the pending entry is gone: retry elsewhere
                # instead of crashing or hanging.
                if search.retries_left > 0:
                    self._schedule_retry(search)
                else:
                    self._finish(search, status="channel-failure", hits=[])
                return
            search.real_token = token
            search.real_relays.add(ready[0])
            cost = self.host.meter.take()
            self.network.simulator.post(
                cost + self.config.client_request_overhead,
                lambda: self._send_record(search, ready[0], sealed, True))

        self._ensure_channels([replacement], retry)

    def _finish(self, search: ProtectedSearch, status: str,
                hits: List[Dict[str, Any]]) -> None:
        if search.done:
            # Exactly-once delivery: late timeouts / duplicate
            # responses must not re-fire on_result.
            return
        search.done = True
        self._searches.pop(search.search_id, None)
        if search.real_relays & search.fake_relays:
            self.stats.disjointness_violations += 1
        latency = self.network.simulator.now - search.issued_at
        if OBS.enabled:
            tracer = OBS.tracer
            if search.engine_span is not None:
                search.engine_span.set_attribute("status", status)
                tracer.end_span(search.engine_span)
                search.engine_span = None
            if search.trace_root is not None:
                search.trace_root.set_attributes(
                    {"status": status, "k": search.k})
                tracer.end_span(search.trace_root)
            OBS.registry.counter("cyclosa_core_search_results_total",
                                 "completed searches by outcome",
                                 status=status).inc()
            OBS.registry.histogram(
                "cyclosa_core_search_latency_seconds",
                "end-to-end protected-search latency").observe(latency)
        search.on_result({
            "query": search.query,
            "k": search.k,
            "status": status,
            "hits": hits,
            "latency": latency,
            "search_id": search.search_id,
            "retries": search.attempts,
            "relays": {"real": sorted(search.real_relays),
                       "fake": sorted(search.fake_relays)},
        })

    def _blacklist(self, peer: str) -> None:
        """§VI-b: blacklist peers that do not respond in time."""
        self.pss.view.remove(peer)
        self.enclave.drop_peer_channel(peer)
        self.stats.blacklisted_peers += 1

    # ------------------------------------------------------------------
    # relay side
    # ------------------------------------------------------------------

    def handle_request(self, ctx: RequestContext) -> None:
        if self.pss.handle_request(ctx):
            return
        if self.peer_tls.handle_handshake(ctx):
            return
        if ctx.request.kind == f"{FORWARD_KIND}.req":
            self._handle_forward(ctx)
        # anything else: drop silently

    def _handle_forward(self, ctx: RequestContext) -> None:
        payload = ctx.request.payload
        if not isinstance(payload, (bytes, bytearray)):
            return
        tracer = OBS.tracer if OBS.enabled else None
        # Reserve the id of this hop's "relay.forward" span up front:
        # the enclave re-parents the propagated context onto it inside
        # the engine-bound record, so the engine's span attaches here.
        onward_id = tracer.reserve_span_id() if tracer is not None else None
        unwrapped = self.enclave.unwrap_forward(
            ctx.request.src, bytes(payload), onward_span_id=onward_id)
        if unwrapped is None:
            return  # unauthenticated or tampered: a Byzantine peer learns nothing
        handle, sealed_for_engine = unwrapped
        self.stats.relayed += 1
        trace = None
        if tracer is not None:
            OBS.registry.counter("cyclosa_core_relayed_total",
                                 "records forwarded on behalf of peers").inc()
            # Read the propagated context back out of the enclave
            # *before* draining the meter, so the gate's cost folds
            # into this forward's modelled delay like the others.
            incoming = TraceContext.from_traceparent(
                self.enclave.forward_trace_context(handle))
            if incoming is not None:
                fwd_span = open_remote_span(
                    tracer, "relay.forward", incoming,
                    node=self.address, span_id=onward_id)
                trace = (incoming, fwd_span)
        cost = self.host.meter.take()
        if trace is not None:
            # The in-enclave unwrap/re-seal work, as its own child.
            unwrap_span = open_remote_span(
                tracer, "relay.unwrap", trace[0].child(onward_id),
                node=self.address)
            close_remote_span(OBS.router, self.address, unwrap_span,
                              end_time=unwrap_span.start + cost)

        def forward_to_engine() -> None:
            self.request(
                self.engine_address, sealed_for_engine,
                on_reply=lambda response: self._relay_engine_reply(
                    ctx, handle, response, trace=trace),
                timeout=60.0,
                size_bytes=len(sealed_for_engine),
                kind="searchtls")

        self.network.simulator.post(cost, forward_to_engine)

    def _relay_engine_reply(self, ctx: RequestContext, handle: int,
                            response: Any, trace=None) -> None:
        if not isinstance(response, (bytes, bytearray)):
            return
        if trace is not None and OBS.enabled:
            incoming, fwd_span = trace
            with remote_context(self.address,
                                incoming.child(fwd_span.span_id)):
                wrapped = self.enclave.wrap_relay_response(
                    handle, bytes(response))
        else:
            wrapped = self.enclave.wrap_relay_response(handle, bytes(response))
        if wrapped is None:
            return
        _src, sealed = wrapped
        cost = self.host.meter.take()
        if trace is not None and OBS.enabled:
            incoming, fwd_span = trace
            respond_span = open_remote_span(
                OBS.tracer, "relay.respond",
                incoming.child(fwd_span.span_id), node=self.address)
            close_remote_span(OBS.router, self.address, respond_span,
                              end_time=respond_span.start + cost)
            # The forward span covers the full relay residency: from
            # unwrap to the moment the re-sealed answer leaves.
            close_remote_span(OBS.router, self.address, fwd_span,
                              end_time=respond_span.start + cost)
        self.network.simulator.post(
            cost, lambda: ctx.respond(sealed, size_bytes=len(sealed)))
