"""Configuration for CYCLOSA nodes and networks.

One dataclass gathers every tunable the paper mentions, with defaults
matching the evaluation setup (kmax = 7 for the privacy experiments,
k = 3 for the latency ones — experiments override as needed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.datasets.vocabulary import SENSITIVE_TOPICS


@dataclass
class CyclosaConfig:
    """All knobs of a CYCLOSA deployment."""

    # -- adaptive protection (§V-B) -------------------------------------
    #: Maximum number of fake queries; semantically sensitive queries
    #: always get this many (Fig 7 uses kmax = 7).
    kmax: int = 7
    #: Topics the user declared sensitive (§V-A1; default: all four of
    #: the Google-privacy-policy categories).
    sensitive_topics: Tuple[str, ...] = SENSITIVE_TOPICS
    #: Exponential-smoothing factor of the linkability assessment.
    smoothing_alpha: float = 0.5

    # -- fake-query table (§IV, §V-D) ------------------------------------
    #: Maximum number of past queries retained in enclave memory.
    table_capacity: int = 2000
    #: Number of trending queries used to seed an empty table.
    bootstrap_trends: int = 50
    #: Approximate bytes charged to the EPC per stored query.
    bytes_per_table_entry: int = 64

    # -- overlay (§V-E) ----------------------------------------------------
    #: Peer-sampling partial-view size.
    view_size: int = 8
    #: Seconds between gossip rounds.
    gossip_interval: float = 5.0
    #: Seed peers drawn from the public repository when joining.
    bootstrap_sample: int = 4

    # -- forwarding (§V-C, §VI-b) ------------------------------------------
    #: Seconds before an unresponsive relay is blacklisted and the real
    #: query is retried through another peer.
    relay_timeout: float = 5.0
    #: Maximum retries for the real query after relay failures.
    max_retries: int = 3
    #: Client-side per-dispatch overhead (enclave sealing + js-ctypes
    #: marshalling + consumer uplink serialisation); this is what makes
    #: latency grow with k in Fig 8b.
    client_request_overhead: float = 0.085
    #: Real-query retries back off exponentially so a degraded overlay
    #: is not hammered: the r-th retry waits
    #: ``min(retry_backoff_max, retry_backoff_base * retry_backoff_factor**r)``
    #: seconds, stretched by up to ``retry_backoff_jitter`` (a fraction,
    #: drawn from the deployment RNG — deterministic per seed) to keep
    #: synchronised clients from retrying in lock-step.
    retry_backoff_base: float = 0.25
    retry_backoff_factor: float = 2.0
    retry_backoff_max: float = 5.0
    retry_backoff_jitter: float = 0.2

    # -- latency calibration (Fig 8a) ---------------------------------------
    #: Median / sigma of the residential peer-to-peer link (one way).
    peer_link_median: float = 0.105
    peer_link_sigma: float = 0.45
    #: Heterogeneity of peer access links: each node's link model is
    #: scaled by exp(N(0, this)) at deployment time. 0 = homogeneous
    #: peers (the default, matching the paper's uniform testbed);
    #: ~0.5 gives a realistic mix of fibre and congested-DSL homes.
    peer_heterogeneity_sigma: float = 0.0
    #: Median one-way latency from a peer to the search engine.
    engine_link_median: float = 0.03
    #: Search-engine processing median / sigma.
    engine_processing_median: float = 0.32
    engine_processing_sigma: float = 0.35

    # -- engine ---------------------------------------------------------
    #: Results per query returned by the engine.
    results_per_query: int = 10
    #: Optional per-identity hourly rate limit at the engine
    #: (None = unlimited; Fig 8d sets 1000/h). With replicas, each
    #: replica runs its own limiter over the identities routed to it.
    engine_rate_limit: Optional[int] = None
    #: Ring-buffer capacity of the honest-but-curious engine log
    #: (None = unbounded; the default bounds memory on long runs while
    #: retaining far more history than any experiment consumes).
    engine_log_capacity: Optional[int] = 100_000

    # -- engine tier scale-out ------------------------------------------
    #: Engine replica nodes; the TF-IDF posting lists are sharded
    #: across them (doc_id % replicas) and every replica coordinates
    #: scatter-gather merges for the clients routed to it. 1 (the
    #: default) reproduces the single-engine deployments byte for byte.
    engine_replicas: int = 1
    #: Capacity of the per-replica result caches (response pages and
    #: shard partials). None disables caching. Cache hits are
    #: indistinguishable from misses on the wire — identical message
    #: kinds, sizes, and seeded response timing; only ranking CPU is
    #: saved (audited by repro.obs.audit.audit_cache_indistinguishability).
    engine_cache_size: Optional[int] = None
    #: Simulated seconds a replica holds admitted queries before
    #: serving them as one batch (duplicates ranked once, one
    #: scatter-gather round per sibling per flush). 0 disables
    #: batching and serves every query immediately (the default).
    engine_batch_window: float = 0.0
    #: Simulated seconds a coordinator waits for a sibling replica's
    #: partial top-k before degrading to the surviving shards.
    engine_shard_timeout: float = 2.0
    #: Median one-way latency between engine replicas (datacenter
    #: interconnect, far below the peer links).
    engine_interlink_median: float = 0.002

    # -- simulation sharding --------------------------------------------
    #: Space-partition granularity of the deployment's node space
    #: (see :mod:`repro.net.shards`). 1 — the default — is the
    #: single-heap kernel, byte-identical to every seeded figure.
    #: Values > 1 make the transport classify local vs cross-shard
    #: traffic under :func:`repro.net.shards.shard_of` (the numbers
    #: that size ShardedSimulator barrier windows); the partition is
    #: exposed as ``deployment.shard_assignment``.
    sim_shards: int = 1

    def __post_init__(self) -> None:
        if self.kmax < 0:
            raise ValueError("kmax must be >= 0")
        if not 0.0 < self.smoothing_alpha <= 1.0:
            raise ValueError("smoothing_alpha must be in (0, 1]")
        if self.table_capacity < 1:
            raise ValueError("table_capacity must be >= 1")
        if self.engine_log_capacity is not None \
                and self.engine_log_capacity < 1:
            raise ValueError("engine_log_capacity must be >= 1 (or None)")
        if self.engine_replicas < 1:
            raise ValueError("engine_replicas must be >= 1")
        if self.engine_cache_size is not None and self.engine_cache_size < 1:
            raise ValueError("engine_cache_size must be >= 1 (or None)")
        if self.engine_batch_window < 0:
            raise ValueError("engine_batch_window must be >= 0")
        if self.engine_shard_timeout <= 0:
            raise ValueError("engine_shard_timeout must be > 0")
        if self.sim_shards < 1:
            raise ValueError("sim_shards must be >= 1")
        unknown = set(self.sensitive_topics) - set(SENSITIVE_TOPICS)
        # Users may define custom topics by importing dictionaries
        # (§V-A1); unknown names are allowed but must be non-empty.
        if any(not topic for topic in self.sensitive_topics):
            raise ValueError("sensitive topic names must be non-empty")
        del unknown
