"""The CYCLOSA enclave: all trusted code of a node (§IV).

Everything that touches *other users'* data runs behind ecall gates:

- the secure-channel keys (peer channels are only installed after
  remote attestation; the engine channel is TLS terminated inside the
  enclave, §V-F);
- the past-queries table (fake-query source — other users' queries must
  never reach the untrusted host in plain text);
- query protection: choosing fakes, binding each query to its relay,
  sealing one record per relay (§V-C);
- relay forwarding: unwrapping a peer's record, storing its query in
  the table, re-sealing it for the engine, and re-sealing the engine's
  answer for the requester — the plaintext of a relayed query exists
  *only* inside the enclave;
- response filtering: only the record carrying the real query's token
  surfaces results; fake responses are decrypted and dropped inside
  the enclave, so even the local host cannot tell which response
  mattered.

The untrusted node (:mod:`repro.core.node`) moves sealed bytes around
and runs everything that only involves the local user's own data
(sensitivity analysis, peer sampling) — "this allows to drastically
minimise the amount of trusted code" (§IV).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.core.fake_queries import PastQueryTable
from repro.net import wire
from repro.net.tls import SecureChannel, TlsError
from repro.obs import TraceContext
from repro.sgx.enclave import Enclave, ecall

#: Forward records are padded to a multiple of this envelope before
#: sealing, so an observer of encrypted traffic cannot distinguish a
#: short real query from a long fake (or vice versa) by size — the §IV
#: argument for why CYCLOSA's traffic is uniform where X-Search's
#: OR-groups are visibly larger than plain queries.
RECORD_ENVELOPE_BYTES = 512


def _pad_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Pad a wire-encodable record up to the envelope boundary."""
    base = len(wire.encode({**record, "pad": ""}))
    target = ((base // RECORD_ENVELOPE_BYTES) + 1) * RECORD_ENVELOPE_BYTES
    return {**record, "pad": "0" * (target - base)}


class CyclosaEnclave(Enclave):
    """Trusted code of one CYCLOSA node.

    §V-F: linking mbedTLS yields "an enclave of only 1.7 MB, thus,
    CYCLOSA does not suffer from EPC paging" — the base footprint below
    is exactly that figure, and the EPC tests assert the no-paging
    claim.
    """

    ENCLAVE_VERSION = "1.0"
    BASE_FOOTPRINT_BYTES = 1_700_000
    #: Bound on outstanding per-record state (pending tokens and relay
    #: forward handles). Responses that never arrive would otherwise
    #: leak enclave memory forever; beyond the cap, the oldest entries
    #: are dropped — their late responses are then treated like any
    #: unknown token (silently discarded).
    MAX_PENDING = 4096

    def __init__(self, host, enclave_id, rng,
                 table_capacity: int = 2000,
                 bytes_per_table_entry: int = 64) -> None:
        super().__init__(host, enclave_id, rng)
        self._rng = rng
        self._bytes_per_entry = bytes_per_table_entry
        self._token_counter = itertools.count(1)
        # Trusted state is initialised through a private gate: the
        # constructor runs "during EINIT", conceptually inside.
        self._depth += 1
        try:
            self.trusted["table"] = PastQueryTable(capacity=table_capacity)
            self.trusted["peer_channels"] = {}
            self.trusted["engine_channel"] = None
            self.trusted["pending"] = {}   # token -> {"real", "query", ...}
            self.trusted["forwards"] = {}  # handle -> {"src", "token"}
        finally:
            self._depth -= 1

    # -- channels ---------------------------------------------------------

    @ecall
    def install_peer_channel(self, peer: str, channel: SecureChannel) -> None:
        """Store an attested peer channel's keys in enclave memory."""
        self.trusted["peer_channels"][peer] = channel

    @ecall
    def install_engine_channel(self, channel: SecureChannel) -> None:
        """Store the enclave→engine TLS channel."""
        self.trusted["engine_channel"] = channel

    @ecall
    def has_peer_channel(self, peer: str) -> bool:
        return peer in self.trusted["peer_channels"]

    @ecall
    def has_engine_channel(self) -> bool:
        return self.trusted["engine_channel"] is not None

    @ecall
    def drop_peer_channel(self, peer: str) -> None:
        """Forget a (blacklisted) peer's channel."""
        self.trusted["peer_channels"].pop(peer, None)

    # -- past-queries table -------------------------------------------------

    @ecall
    def seed_table(self, queries: List[str]) -> int:
        """Bootstrap the fake-query table (§V-D, trending queries)."""
        table: PastQueryTable = self.trusted["table"]
        grew = table.extend(queries)
        if grew:
            self.trusted_alloc(grew * self._bytes_per_entry)
        return grew

    @ecall
    def table_size(self) -> int:
        return len(self.trusted["table"])

    @ecall
    def seal_table(self, sealing_service) -> "object":
        """Persist the past-queries table to untrusted storage.

        The blob is sealed to this enclave's measurement on this
        platform: the browser can stash it on disk across restarts, but
        neither the host nor a different enclave build can read other
        users' queries out of it.
        """
        table: PastQueryTable = self.trusted["table"]
        payload = wire.encode(table.entries())
        self.charge_crypto(len(payload), operations=1)
        return sealing_service.seal(type(self).measurement(), payload,
                                    rng=self._rng)

    @ecall
    def unseal_table(self, sealing_service, blob) -> int:
        """Restore a previously sealed table; returns entries restored.

        Raises :class:`repro.sgx.sealing.SealingError` when the blob was
        sealed by a different enclave build or platform.
        """
        payload = sealing_service.unseal(type(self).measurement(), blob)
        self.charge_crypto(len(payload), operations=1)
        entries = wire.decode(payload)
        table: PastQueryTable = self.trusted["table"]
        grew = table.extend(entries)
        if grew:
            self.trusted_alloc(grew * self._bytes_per_entry)
        return grew

    def _evict_stale(self, store_key: str) -> None:
        """Drop oldest entries once a per-record store exceeds the cap.

        Python dicts preserve insertion order, so the first keys are
        the oldest; real enclave code would do the same with an
        intrusive FIFO.
        """
        store = self.trusted[store_key]
        while len(store) > self.MAX_PENDING:
            oldest = next(iter(store))
            del store[oldest]

    # -- client side: query protection (§V-C) -------------------------------

    @ecall
    def build_protected_batch(self, query: str, k: int, relays: List[str],
                              true_user: Optional[str] = None,
                              trace_contexts: Optional[Dict[str, str]] = None
                              ) -> List[Tuple[str, bytes]]:
        """Produce one sealed forward record per relay.

        ``relays`` must contain ``k + 1`` addresses with installed
        channels. One random relay carries the real query; each other
        relay carries a distinct fake drawn from the past-queries
        table. Which relay got the real query is recorded *only* in
        enclave state, keyed by per-record tokens.

        ``trace_contexts`` (optional, observability) maps relay address
        to a traceparent string embedded in that relay's record. The
        context rides *inside* the sealed payload — never on the
        plaintext wire — and every record (real or fake) carries a
        same-shaped string, so sealed sizes stay indistinguishable
        (records are envelope-padded regardless).

        Returns ``[(relay_address, sealed_record), ...]`` in randomized
        dispatch order.
        """
        if len(relays) != k + 1:
            raise ValueError(f"need exactly k+1={k + 1} relays, got {len(relays)}")
        channels: Dict[str, SecureChannel] = self.trusted["peer_channels"]
        missing = [relay for relay in relays if relay not in channels]
        if missing:
            raise KeyError(f"no attested channel with relays {missing}")

        table: PastQueryTable = self.trusted["table"]
        fakes = table.sample(k, self._rng, exclude=query)
        # A sparsely seeded table may not have k distinct fakes yet;
        # reuse trending-style duplicates rather than under-protect.
        while len(fakes) < k and fakes:
            fakes.append(self._rng.choice(fakes))
        if len(fakes) < k:
            fakes = [query] * 0  # empty table: degrade to k=0
        relays = list(relays)
        self._rng.shuffle(relays)
        real_relay = relays[0] if not fakes else self._rng.choice(relays)

        batch: List[Tuple[str, bytes]] = []
        pending: Dict[str, Dict[str, Any]] = self.trusted["pending"]
        fake_iter = iter(fakes)
        for relay in relays:
            token = f"t{next(self._token_counter):08d}"
            if relay == real_relay:
                text, is_fake = query, False
            else:
                try:
                    text, is_fake = next(fake_iter), True
                except StopIteration:
                    continue  # table under-filled: fewer fakes than k
            fields: Dict[str, Any] = {
                "token": token,
                "query": text,
                "meta": {"true_user": true_user, "is_fake": is_fake},
            }
            if trace_contexts and relay in trace_contexts:
                fields["tp"] = trace_contexts[relay]
            record = _pad_record(fields)
            pending[token] = {
                "real": not is_fake,
                "relay": relay,
                "query": query,
            }
            sealed = channels[relay].seal(record, rng=self._rng)
            self.charge_crypto(len(sealed), operations=1)
            batch.append((relay, sealed))
        self._evict_stale("pending")
        return batch

    @ecall
    def rebuild_real(self, token: str, new_relay: str,
                     traceparent: Optional[str] = None) -> Tuple[str, bytes]:
        """Re-issue the real query through *new_relay* after its original
        relay timed out (§VI-b blacklisting + retry)."""
        pending: Dict[str, Dict[str, Any]] = self.trusted["pending"]
        entry = pending.pop(token, None)
        if entry is None or not entry["real"]:
            raise KeyError("token is not a pending real query")
        channels = self.trusted["peer_channels"]
        if new_relay not in channels:
            raise KeyError(f"no attested channel with {new_relay}")
        new_token = f"t{next(self._token_counter):08d}"
        fields: Dict[str, Any] = {
            "token": new_token,
            "query": entry["query"],
            "meta": {"true_user": None, "is_fake": False},
        }
        if traceparent is not None:
            fields["tp"] = traceparent
        record = _pad_record(fields)
        pending[new_token] = {
            "real": True, "relay": new_relay, "query": entry["query"],
        }
        sealed = channels[new_relay].seal(record, rng=self._rng)
        return new_token, sealed

    @ecall
    def pending_token_for_relay(self, relay: str) -> Optional[str]:
        """The real-query token currently assigned to *relay*, if any."""
        for token, entry in self.trusted["pending"].items():
            if entry["relay"] == relay and entry["real"]:
                return token
        return None

    @ecall
    def open_relay_response(self, relay: str, sealed: bytes
                            ) -> Optional[Dict[str, Any]]:
        """Decrypt a relay's response; surface it only for the real query.

        Returns ``{"hits": [...], "query": ...}`` when the response
        answers the user's real query, ``None`` when it answered a fake
        (dropped inside the enclave, §IV step 8) or fails to decrypt.
        """
        channels: Dict[str, SecureChannel] = self.trusted["peer_channels"]
        channel = channels.get(relay)
        if channel is None:
            return None
        try:
            response = channel.open(sealed)
        except TlsError:
            return None
        self.charge_crypto(len(sealed), operations=1)
        token = response.get("token")
        pending: Dict[str, Dict[str, Any]] = self.trusted["pending"]
        entry = pending.pop(token, None)
        if entry is None:
            return None
        if not entry["real"]:
            return None  # fake-query response: silently dropped
        return {
            "query": entry["query"],
            "status": response.get("status", "ok"),
            "hits": response.get("hits", []),
        }

    # -- relay side: forwarding (§V-C) ---------------------------------------

    @ecall
    def unwrap_forward(self, src: str, sealed: bytes,
                       onward_span_id: Optional[int] = None
                       ) -> Optional[Tuple[int, bytes]]:
        """Relay step: decrypt a peer's record, store its query in the
        past-queries table, and re-seal it for the search engine.

        Returns ``(handle, sealed_for_engine)``; the untrusted host
        ships the sealed bytes to the engine and later exchanges the
        handle for the sealed response via :meth:`wrap_relay_response`.
        Returns ``None`` if the source has no attested channel or the
        record fails authentication.

        When the record carries a trace context and *onward_span_id*
        is given (observability on), the context is re-parented onto
        that span id and embedded in the engine-bound record — hop-by-
        hop propagation, again enclave-to-enclave only. The incoming
        context is retained with the forward handle for
        :meth:`forward_trace_context`.
        """
        channels: Dict[str, SecureChannel] = self.trusted["peer_channels"]
        channel = channels.get(src)
        engine: Optional[SecureChannel] = self.trusted["engine_channel"]
        if channel is None or engine is None:
            return None
        try:
            record = channel.open(sealed)
        except TlsError:
            return None
        self.charge_crypto(len(sealed), operations=1)
        # §V-C: "Once a proxy receives a query forwarding request, it
        # adds this query in its local table of past queries". Real and
        # fake queries are treated identically — the relay cannot tell.
        table: PastQueryTable = self.trusted["table"]
        if table.add(record["query"]):
            self.trusted_alloc(self._bytes_per_entry)
        handle = next(self._token_counter)
        self.trusted["forwards"][handle] = {
            "src": src,
            "token": record["token"],
            "tp": record.get("tp"),
        }
        self._evict_stale("forwards")
        engine_record: Dict[str, Any] = {
            "query": record["query"], "meta": record.get("meta") or {}}
        if onward_span_id is not None:
            incoming = TraceContext.from_traceparent(record.get("tp"))
            if incoming is not None:
                engine_record["tp"] = (
                    incoming.child(onward_span_id).to_traceparent())
        sealed_for_engine = engine.seal(engine_record, rng=self._rng)
        self.charge_crypto(len(sealed_for_engine), operations=1)
        return handle, sealed_for_engine

    @ecall
    def forward_trace_context(self, handle: int) -> Optional[str]:
        """The traceparent that arrived inside forward *handle*'s record.

        Lets the untrusted host attach its relay spans to the right
        parent without ever seeing the record's query or token — the
        trace context is the only field that crosses this gate.
        """
        forward = self.trusted["forwards"].get(handle)
        if forward is None:
            return None
        return forward.get("tp")

    @ecall
    def wrap_relay_response(self, handle: int, sealed_engine_response: bytes
                            ) -> Optional[Tuple[str, bytes]]:
        """Relay step: decrypt the engine's answer and re-seal it for the
        original requester. Returns ``(requester_address, sealed)``."""
        forward = self.trusted["forwards"].pop(handle, None)
        engine: Optional[SecureChannel] = self.trusted["engine_channel"]
        if forward is None or engine is None:
            return None
        try:
            engine_response = engine.open(sealed_engine_response)
        except TlsError:
            return None
        self.charge_crypto(len(sealed_engine_response), operations=1)
        channels: Dict[str, SecureChannel] = self.trusted["peer_channels"]
        channel = channels.get(forward["src"])
        if channel is None:
            return None
        response = {
            "token": forward["token"],
            "status": engine_response.get("status", "ok"),
            "hits": engine_response.get("hits", []),
        }
        sealed = channel.seal(response, rng=self._rng)
        self.charge_crypto(len(sealed), operations=1)
        return forward["src"], sealed
