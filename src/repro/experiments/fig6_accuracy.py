"""Fig 6: accuracy of results returned to users (k = 3).

Paper: TOR, TrackMeNot and CYCLOSA achieve perfect correctness and
completeness (no obfuscation, or real/fake responses handled
separately); GooPIR, PEAS and X-Search lose accuracy to OR-aggregation
plus filtering (≈65 % / ≈70 % at k = 3, worse at larger k).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import (
    CyclosaAnalytic,
    GooPir,
    Peas,
    TorSearch,
    TrackMeNot,
    XSearch,
)
from repro.core.sensitivity import SemanticAssessor
from repro.experiments.common import (
    build_wordnet,
    build_workload,
    print_table,
)
from repro.metrics.accuracy import (
    AccuracyScore,
    correctness_completeness,
    mean_accuracy,
)


def run(num_users: int = 100, mean_queries: float = 100.0,
        k: int = 3, seed: int = 0,
        max_queries: Optional[int] = 500) -> Dict[str, AccuracyScore]:
    """Mean correctness/completeness per system at the given *k*."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records
    if max_queries is not None:
        records = records[:max_queries]

    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")
    systems = [
        TorSearch(seed=seed),
        TrackMeNot(seed=seed),
        GooPir(k=k, seed=seed),
        Peas(k=k, seed=seed),
        XSearch(k=k, seed=seed),
        CyclosaAnalytic(semantic, kmax=k, adaptive=False, seed=seed),
    ]
    results: Dict[str, AccuracyScore] = {}
    for system in systems:
        if hasattr(system, "prime"):
            system.prime(workload.training_texts())
        scores = []
        for record in records:
            reference = [hit.url for hit in workload.engine.search(record.text)]
            observations = system.protect(record.user_id, record.text)
            returned = system.results_for(workload.engine, record.text,
                                          observations)
            scores.append(correctness_completeness(reference, returned))
        results[system.name] = mean_accuracy(scores)
    return results


def main() -> None:
    results = run()
    rows = [
        [name, f"{score.correctness * 100:.1f} %",
         f"{score.completeness * 100:.1f} %"]
        for name, score in results.items()
    ]
    print_table("Fig 6 — accuracy of results returned to users (k=3)",
                ["System", "Correctness", "Completeness"], rows)
    print("\nPaper: TOR / TrackMeNot / CYCLOSA = 100 % on both; "
          "GooPIR / PEAS / X-Search ≈ 65 % correctness, ≈ 70 % completeness.")


if __name__ == "__main__":
    main()
