"""Terminal plots: render experiment series as ASCII charts.

The repository ships no plotting dependency; these helpers draw the
paper's figures directly in the terminal so `python -m repro run fig8a`
shows a *picture*, not only a table.

- :func:`ascii_cdf`  — multi-series CDF plot (Figs 7, 8a, 8b).
- :func:`ascii_bars` — horizontal bar chart (Figs 5, 6).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

_MARKERS = "ox+*#@%&"


def ascii_bars(values: Dict[str, float], width: int = 50,
               unit: str = "", max_value: float = None) -> str:
    """Horizontal bars, one per labelled value."""
    if not values:
        return "(no data)"
    peak = max_value if max_value is not None else max(values.values())
    peak = peak or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        filled = int(round(width * value / peak))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{label:<{label_width}} |{bar}| "
                     f"{value:.3g}{unit}")
    return "\n".join(lines)


def ascii_cdf(series: Dict[str, Sequence[float]], width: int = 60,
              height: int = 16, log_x: bool = False) -> str:
    """A multi-series CDF plot over shared axes.

    Each series is a list of raw samples; markers distinguish series
    (legend at the bottom). ``log_x`` reproduces Fig 8a's log-scale
    x-axis.
    """
    populated = {name: sorted(samples)
                 for name, samples in series.items() if samples}
    if not populated:
        return "(no data)"

    lo = min(samples[0] for samples in populated.values())
    hi = max(samples[-1] for samples in populated.values())
    if log_x:
        lo = max(lo, 1e-9)
        hi = max(hi, lo * 1.0001)

    def x_of(value: float) -> int:
        if log_x:
            position = ((math.log10(value) - math.log10(lo))
                        / (math.log10(hi) - math.log10(lo)))
        else:
            position = (value - lo) / (hi - lo) if hi > lo else 0.0
        return min(width - 1, max(0, int(position * (width - 1))))

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, samples) in enumerate(populated.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        n = len(samples)
        for row in range(height):
            quantile = (row + 0.5) / height
            sample = samples[min(n - 1, int(quantile * n))]
            column = x_of(max(sample, lo))
            grid[height - 1 - row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        quantile = 1.0 - row_index / height
        lines.append(f"{quantile:4.0%} |" + "".join(row))
    axis = "     +" + "-" * width
    lines.append(axis)
    if log_x:
        lines.append(f"      {lo:.3g}s (log scale) "
                     f"{'':{max(0, width - 30)}}{hi:.3g}s")
    else:
        lines.append(f"      {lo:.3g}s{'':{max(0, width - 14)}}{hi:.3g}s")
    legend = "      " + "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(populated))
    lines.append(legend)
    return "\n".join(lines)
