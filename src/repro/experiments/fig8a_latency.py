"""Fig 8a: end-to-end latency CDFs for 200 queries, k = 3.

Paper medians: Direct < X-Search 0.577 s < CYCLOSA 0.876 s ≪ TOR
62.28 s (a 13× gap between CYCLOSA and TOR on average). The shapes
come from the calibrated models: datacenter-grade paths for Direct and
the X-Search proxy, residential peer links for CYCLOSA relays, and
heavy-tailed volunteer circuits for TOR.

Each system runs in its own deterministic simulation; queries are
issued sequentially from one client, exactly like the paper's
benchmark.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.baselines.direct import DirectClientNode
from repro.baselines.tor import TorClientNode, build_tor_network
from repro.baselines.xsearch import XSearchClientNode, XSearchEnclave, XSearchProxyNode
from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.experiments.common import build_workload, print_table
from repro.metrics.latencystats import cdf_points, summarize
from repro.net.latency import LogNormalLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode
from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy

PAPER_MEDIANS = {
    "Direct": 0.4,
    "X-Search": 0.577,
    "CYCLOSA": 0.876,
    "TOR": 62.28,
}


def _drive(simulator: Simulator, issue: Callable[[Callable], None],
           num_queries: int, queries: List[str],
           max_wait: float = 3600.0) -> List[float]:
    """Issue queries sequentially; collect per-query latencies."""
    latencies: List[float] = []
    for index in range(num_queries):
        holder: Dict[str, float] = {}
        issue(queries[index % len(queries)], lambda r: holder.update(r))
        deadline = simulator.now + max_wait
        while "latency" not in holder and simulator.now < deadline:
            if not simulator.step():
                break
        if "latency" in holder:
            latencies.append(holder["latency"])
    return latencies


def _engine_setup(seed: int, config: CyclosaConfig):
    rng = random.Random(seed)
    simulator = Simulator()
    network = Network(simulator, rng, default_latency=LogNormalLatency(
        median=config.peer_link_median, sigma=config.peer_link_sigma))
    engine_node = SearchEngineNode(
        network, SearchEngine(build_corpus(seed=seed)), rng,
        processing=LogNormalLatency(
            median=config.engine_processing_median,
            sigma=config.engine_processing_sigma))
    return rng, simulator, network, engine_node


def run_direct(num_queries: int, queries: List[str],
               seed: int = 0) -> List[float]:
    config = CyclosaConfig()
    rng, simulator, network, engine_node = _engine_setup(seed, config)
    client = DirectClientNode(network, "client", engine_node.address)
    network.set_link_latency(
        client.address, engine_node.address,
        LogNormalLatency(median=config.engine_link_median, sigma=0.3))
    return _drive(simulator,
                  lambda q, cb: client.search(q, cb),
                  num_queries, queries)


def run_tor(num_queries: int, queries: List[str],
            seed: int = 0, num_relays: int = 9) -> List[float]:
    config = CyclosaConfig()
    rng, simulator, network, engine_node = _engine_setup(seed, config)
    relays = build_tor_network(network, rng, engine_node.address,
                               num_relays=num_relays)
    client = TorClientNode(network, "client", rng, relays,
                           engine_node.address)
    return _drive(simulator,
                  lambda q, cb: client.search(q, cb),
                  num_queries, queries)


def run_xsearch(num_queries: int, queries: List[str], k: int = 3,
                seed: int = 0) -> List[float]:
    config = CyclosaConfig()
    rng, simulator, network, engine_node = _engine_setup(seed, config)
    ias = IntelAttestationService()
    policy = MeasurementPolicy()
    policy.allow_class(XSearchEnclave)
    proxy = XSearchProxyNode(network, rng, engine_node.address, ias, policy,
                             k=k)
    proxy.prime(queries)
    # Proxy and engine sit in datacenters (fast peering between them);
    # the client reaches the proxy over its residential access link.
    network.set_link_latency(proxy.address, engine_node.address,
                             LogNormalLatency(median=0.012, sigma=0.25))
    client = XSearchClientNode(network, "client", rng, proxy, ias, policy)
    network.set_link_latency(client.address, proxy.address,
                             LogNormalLatency(median=0.105, sigma=0.35))
    network.set_link_latency(client.address, engine_node.address,
                             LogNormalLatency(median=config.engine_link_median,
                                              sigma=0.3))
    done = {}
    client.connect(lambda: done.setdefault("ok", True))
    simulator.run(until=simulator.now + 30)
    return _drive(simulator,
                  lambda q, cb: client.search(q, cb),
                  num_queries, queries)


def run_cyclosa(num_queries: int, queries: List[str], k: int = 3,
                seed: int = 0, num_nodes: int = 20) -> List[float]:
    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed)
    user = deployment.node(0)
    latencies = []
    for index in range(num_queries):
        result = user.search(queries[index % len(queries)], k_override=k)
        if result.ok:
            latencies.append(result.latency)
    return latencies


def run_cyclosa_breakdown(num_queries: int, queries: List[str], k: int = 3,
                          seed: int = 0, num_nodes: int = 20) -> Dict:
    """The CYCLOSA leg again, traced: where does the latency go?

    Runs the same deployment with :mod:`repro.obs` enabled and returns
    a JSON-ready dict with per-pipeline-stage timings (mean seconds per
    query) and a component decomposition — enclave compute vs SGX gate
    crossings vs network flight vs engine processing — taken from
    metric deltas scoped to the query phase (warm-up excluded).
    """
    from repro import obs
    from repro.obs import PIPELINE_STAGES, stage_breakdown

    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                       observe=True)
    user = deployment.node(0)

    def _value(name: str) -> float:
        metric = obs.get_registry().get(name)
        return float(metric.value) if metric is not None else 0.0

    def _hist_sum(name: str) -> float:
        metric = obs.get_registry().get(name)
        return float(metric.sum) if metric is not None else 0.0

    # Baselines after warm-up: gossip and handshake traffic from
    # deployment creation must not pollute the per-query components.
    base = {
        "crossing": _value("cyclosa_sgx_crossing_seconds_total"),
        "meter": _hist_sum("cyclosa_sgx_meter_charge_seconds"),
        "network": _value("cyclosa_net_flight_seconds_total"),
        "engine": _hist_sum("cyclosa_engine_processing_seconds"),
    }
    obs.get_tracer().sink.clear()

    latencies = []
    for index in range(num_queries):
        result = user.search(queries[index % len(queries)], k_override=k)
        if result.ok:
            latencies.append(result.latency)

    n = max(1, len(latencies))
    stages = {
        row.stage: {
            "mean_seconds": row.duration / n,
            "total_seconds": row.duration,
            "spans": row.count,
        }
        for row in stage_breakdown(obs.get_tracer().sink.spans)
        if row.stage in PIPELINE_STAGES
    }
    crossing = _value("cyclosa_sgx_crossing_seconds_total") - base["crossing"]
    meter = _hist_sum("cyclosa_sgx_meter_charge_seconds") - base["meter"]
    components = {
        # CostMeter charges include the crossings; enclave = the rest
        # (sealing, table maintenance, EPC traffic).
        "enclave_seconds": max(0.0, meter - crossing),
        "crossing_seconds": crossing,
        "network_seconds":
            _value("cyclosa_net_flight_seconds_total") - base["network"],
        "engine_seconds":
            _hist_sum("cyclosa_engine_processing_seconds") - base["engine"],
    }
    obs.disable(reset=True)
    return {
        "queries": len(latencies),
        "k": k,
        "stages": stages,
        "components": components,
    }


def run(num_queries: int = 200, k: int = 3, seed: int = 0,
        num_users: int = 60) -> Dict[str, List[float]]:
    """Latency samples per system (the Fig 8a series)."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=60.0, seed=seed)
    queries = [record.text for record in workload.test.records[:num_queries]]
    return {
        "Direct": run_direct(num_queries, queries, seed=seed),
        "X-Search": run_xsearch(num_queries, queries, k=k, seed=seed),
        "CYCLOSA": run_cyclosa(num_queries, queries, k=k, seed=seed),
        "TOR": run_tor(num_queries, queries, seed=seed),
    }


def main() -> None:
    import json

    from repro.experiments.plotting import ascii_cdf

    samples = run()
    rows = []
    for name, latencies in samples.items():
        summary = summarize(latencies)
        rows.append([name, f"{summary.median:.3f} s",
                     f"{PAPER_MEDIANS[name]:.3f} s",
                     f"{summary.p90:.3f} s", f"{summary.p99:.3f} s"])
    print_table("Fig 8a — end-to-end latency (200 queries, k=3)",
                ["System", "Median", "(paper)", "p90", "p99"], rows)
    print()
    print(ascii_cdf(samples, log_x=True))
    for name, latencies in samples.items():
        print(f"\n{name} CDF:",
              "  ".join(f"{q:.2f}:{v:.2f}s" for q, v in cdf_points(latencies)))

    # Where CYCLOSA's latency goes — a smaller traced run (repro.obs).
    workload = build_workload(num_users=60, mean_queries_per_user=60.0,
                              seed=0)
    queries = [record.text for record in workload.test.records[:50]]
    breakdown = run_cyclosa_breakdown(50, queries, k=3, seed=0)
    print("\nCYCLOSA per-stage breakdown (traced, 50 queries):")
    print(json.dumps(breakdown, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
