"""Fig 8a: end-to-end latency CDFs for 200 queries, k = 3.

Paper medians: Direct < X-Search 0.577 s < CYCLOSA 0.876 s ≪ TOR
62.28 s (a 13× gap between CYCLOSA and TOR on average). The shapes
come from the calibrated models: datacenter-grade paths for Direct and
the X-Search proxy, residential peer links for CYCLOSA relays, and
heavy-tailed volunteer circuits for TOR.

Each system runs in its own deterministic simulation; queries are
issued sequentially from one client, exactly like the paper's
benchmark.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.baselines.direct import DirectClientNode
from repro.baselines.tor import TorClientNode, build_tor_network
from repro.baselines.xsearch import XSearchClientNode, XSearchEnclave, XSearchProxyNode
from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.experiments.common import build_workload, print_table
from repro.metrics.latencystats import cdf_points, summarize
from repro.net.latency import LogNormalLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.searchengine.node import SearchEngineNode
from repro.sgx.attestation import IntelAttestationService, MeasurementPolicy

PAPER_MEDIANS = {
    "Direct": 0.4,
    "X-Search": 0.577,
    "CYCLOSA": 0.876,
    "TOR": 62.28,
}


def _drive(simulator: Simulator, issue: Callable[[Callable], None],
           num_queries: int, queries: List[str],
           max_wait: float = 3600.0) -> List[float]:
    """Issue queries sequentially; collect per-query latencies."""
    latencies: List[float] = []
    for index in range(num_queries):
        holder: Dict[str, float] = {}
        issue(queries[index % len(queries)], lambda r: holder.update(r))
        deadline = simulator.now + max_wait
        while "latency" not in holder and simulator.now < deadline:
            if not simulator.step():
                break
        if "latency" in holder:
            latencies.append(holder["latency"])
    return latencies


def _engine_setup(seed: int, config: CyclosaConfig):
    rng = random.Random(seed)
    simulator = Simulator()
    network = Network(simulator, rng, default_latency=LogNormalLatency(
        median=config.peer_link_median, sigma=config.peer_link_sigma))
    engine_node = SearchEngineNode(
        network, SearchEngine(build_corpus(seed=seed)), rng,
        processing=LogNormalLatency(
            median=config.engine_processing_median,
            sigma=config.engine_processing_sigma))
    return rng, simulator, network, engine_node


def run_direct(num_queries: int, queries: List[str],
               seed: int = 0) -> List[float]:
    config = CyclosaConfig()
    rng, simulator, network, engine_node = _engine_setup(seed, config)
    client = DirectClientNode(network, "client", engine_node.address)
    network.set_link_latency(
        client.address, engine_node.address,
        LogNormalLatency(median=config.engine_link_median, sigma=0.3))
    return _drive(simulator,
                  lambda q, cb: client.search(q, cb),
                  num_queries, queries)


def run_tor(num_queries: int, queries: List[str],
            seed: int = 0, num_relays: int = 9) -> List[float]:
    config = CyclosaConfig()
    rng, simulator, network, engine_node = _engine_setup(seed, config)
    relays = build_tor_network(network, rng, engine_node.address,
                               num_relays=num_relays)
    client = TorClientNode(network, "client", rng, relays,
                           engine_node.address)
    return _drive(simulator,
                  lambda q, cb: client.search(q, cb),
                  num_queries, queries)


def run_xsearch(num_queries: int, queries: List[str], k: int = 3,
                seed: int = 0) -> List[float]:
    config = CyclosaConfig()
    rng, simulator, network, engine_node = _engine_setup(seed, config)
    ias = IntelAttestationService()
    policy = MeasurementPolicy()
    policy.allow_class(XSearchEnclave)
    proxy = XSearchProxyNode(network, rng, engine_node.address, ias, policy,
                             k=k)
    proxy.prime(queries)
    # Proxy and engine sit in datacenters (fast peering between them);
    # the client reaches the proxy over its residential access link.
    network.set_link_latency(proxy.address, engine_node.address,
                             LogNormalLatency(median=0.012, sigma=0.25))
    client = XSearchClientNode(network, "client", rng, proxy, ias, policy)
    network.set_link_latency(client.address, proxy.address,
                             LogNormalLatency(median=0.105, sigma=0.35))
    network.set_link_latency(client.address, engine_node.address,
                             LogNormalLatency(median=config.engine_link_median,
                                              sigma=0.3))
    done = {}
    client.connect(lambda: done.setdefault("ok", True))
    simulator.run(until=simulator.now + 30)
    return _drive(simulator,
                  lambda q, cb: client.search(q, cb),
                  num_queries, queries)


def run_cyclosa(num_queries: int, queries: List[str], k: int = 3,
                seed: int = 0, num_nodes: int = 20) -> List[float]:
    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed)
    user = deployment.node(0)
    latencies = []
    for index in range(num_queries):
        result = user.search(queries[index % len(queries)], k_override=k)
        if result.ok:
            latencies.append(result.latency)
    return latencies


def run(num_queries: int = 200, k: int = 3, seed: int = 0,
        num_users: int = 60) -> Dict[str, List[float]]:
    """Latency samples per system (the Fig 8a series)."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=60.0, seed=seed)
    queries = [record.text for record in workload.test.records[:num_queries]]
    return {
        "Direct": run_direct(num_queries, queries, seed=seed),
        "X-Search": run_xsearch(num_queries, queries, k=k, seed=seed),
        "CYCLOSA": run_cyclosa(num_queries, queries, k=k, seed=seed),
        "TOR": run_tor(num_queries, queries, seed=seed),
    }


def main() -> None:
    from repro.experiments.plotting import ascii_cdf

    samples = run()
    rows = []
    for name, latencies in samples.items():
        summary = summarize(latencies)
        rows.append([name, f"{summary.median:.3f} s",
                     f"{PAPER_MEDIANS[name]:.3f} s",
                     f"{summary.p90:.3f} s", f"{summary.p99:.3f} s"])
    print_table("Fig 8a — end-to-end latency (200 queries, k=3)",
                ["System", "Median", "(paper)", "p90", "p99"], rows)
    print()
    print(ascii_cdf(samples, log_x=True))
    for name, latencies in samples.items():
        print(f"\n{name} CDF:",
              "  ".join(f"{q:.2f}:{v:.2f}s" for q, v in cdf_points(latencies)))


if __name__ == "__main__":
    main()
