"""The calibration sweep behind the workload's two behavioural knobs.

docs/workload.md documents that the generator's Zipf exponent and
exploration rate were set against two anchors: the paper's TOR
re-identification rate (36 %, Fig 5) and Fig 7's unlinkable-query mass
(≈25 % at k = 0). This module *is* that sweep — rerunnable whenever the
generator changes, so the calibration stays auditable instead of
folklore:

    python -m repro.experiments.calibration
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.attacks.profiles import build_profiles
from repro.attacks.simattack import SimAttack
from repro.baselines.tor import TorSearch
from repro.datasets.aol import generate_aol_log
from repro.datasets.split import train_test_split
from repro.experiments.common import print_table
from repro.metrics.privacy import reidentification_rate

#: The paper anchors the knobs target.
TOR_ANCHOR = 0.36       # Fig 5, TOR bar (= k=0 for the unlinkable systems)
K0_ANCHOR = 0.25        # Fig 7, fraction of queries needing no fakes


def measure_point(zipf_exponent: float, exploration_rate: float,
                  num_users: int = 50, mean_queries: float = 60.0,
                  seed: int = 0,
                  max_queries: int = 1200) -> Dict[str, float]:
    """One grid point: TOR re-identification and unlinkable mass."""
    log = generate_aol_log(num_users=num_users,
                           mean_queries_per_user=mean_queries,
                           zipf_exponent=zipf_exponent,
                           exploration_rate=exploration_rate,
                           seed=seed)
    train, test = train_test_split(log)
    attack = SimAttack(build_profiles(train))
    records = test.records[:max_queries]

    tor = TorSearch(seed=seed)
    observations = []
    for record in records:
        observations.extend(tor.protect(record.user_id, record.text))
    tor_rate = reidentification_rate(attack, observations,
                                     tor.attack_surface)

    # The k=0 mass under pure linkability (semantic aside): queries the
    # attack cannot attribute at all are the ones adaptive protection
    # leaves unprotected.
    unattributable = sum(
        1 for record in records if attack.attribute(record.text) is None)
    return {
        "zipf": zipf_exponent,
        "exploration": exploration_rate,
        "tor_rate": tor_rate,
        "unlinkable_mass": unattributable / max(1, len(records)),
        "sensitive_rate": log.sensitive_rate(),
    }


def run(zipf_values: Sequence[float] = (1.05, 1.2, 1.35),
        exploration_values: Sequence[float] = (0.10, 0.22, 0.35),
        seed: int = 0, **kwargs) -> List[Dict[str, float]]:
    """The full grid; rows carry per-point distances to the anchors."""
    rows = []
    for zipf in zipf_values:
        for exploration in exploration_values:
            point = measure_point(zipf, exploration, seed=seed, **kwargs)
            point["anchor_distance"] = (
                abs(point["tor_rate"] - TOR_ANCHOR)
                + 0.5 * abs(point["unlinkable_mass"] - K0_ANCHOR))
            rows.append(point)
    return rows


def best_point(rows: List[Dict[str, float]]) -> Dict[str, float]:
    """The grid point closest to the paper anchors."""
    return min(rows, key=lambda row: row["anchor_distance"])


def main() -> None:
    rows = run()
    print_table(
        "Calibration sweep — generator knobs vs paper anchors "
        f"(TOR {TOR_ANCHOR:.0%}, k0 mass {K0_ANCHOR:.0%})",
        ["zipf", "exploration", "TOR re-id", "unlinkable", "distance"],
        [[f"{r['zipf']:.2f}", f"{r['exploration']:.2f}",
          f"{r['tor_rate'] * 100:.1f} %",
          f"{r['unlinkable_mass'] * 100:.1f} %",
          f"{r['anchor_distance']:.3f}"] for r in rows])
    chosen = best_point(rows)
    print(f"\nclosest grid point: zipf={chosen['zipf']:.2f}, "
          f"exploration={chosen['exploration']:.2f} "
          f"(the shipped defaults, 1.20 / 0.22, were chosen at the "
          f"paper's 100-user scale — attack rates grow with population, "
          f"so re-run with num_users=100 before re-tuning)")


if __name__ == "__main__":
    main()
