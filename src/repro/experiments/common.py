"""Shared experiment fixtures: the standard workload and adversary.

Builds the §VII setup once per parameterisation: synthetic AOL log over
the most-active users, 2/3-1/3 temporal split, SimAttack profiles from
the training split, the TF-IDF engine, and the semantic assessors.
Results are memoised by parameters so a pytest-benchmark session pays
the setup cost once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence

from repro.attacks.profiles import UserProfile, build_profiles
from repro.attacks.simattack import SimAttack
from repro.core.sensitivity import SemanticAssessor
from repro.datasets.aol import SyntheticAolLog, generate_aol_log
from repro.datasets.split import train_test_split
from repro.datasets.vocabulary import (
    GENERAL_TERMS,
    SENSITIVE_TOPICS,
    build_topic_vocabularies,
)
from repro.searchengine.corpus import build_corpus
from repro.searchengine.engine import SearchEngine
from repro.text.lda import LdaModel, fit_lda
from repro.text.wordnet import SyntheticWordNet


@dataclass(frozen=True)
class Workload:
    """Everything the analytic experiments consume."""

    log: SyntheticAolLog
    train: SyntheticAolLog
    test: SyntheticAolLog
    profiles: Dict[str, UserProfile]
    attack: SimAttack
    engine: SearchEngine
    seed: int

    def training_texts(self) -> List[str]:
        return [record.text for record in self.train.records]

    def user_training_texts(self, user_id: str) -> List[str]:
        return [record.text for record in self.train.queries_of(user_id)]


@lru_cache(maxsize=4)
def build_workload(num_users: int = 100,
                   mean_queries_per_user: float = 100.0,
                   seed: int = 0) -> Workload:
    """The standard §VII workload at the requested scale."""
    log = generate_aol_log(
        num_users=num_users,
        mean_queries_per_user=mean_queries_per_user,
        seed=seed)
    train, test = train_test_split(log)
    profiles = build_profiles(train)
    return Workload(
        log=log, train=train, test=test, profiles=profiles,
        attack=SimAttack(profiles),
        engine=SearchEngine(build_corpus(seed=seed)),
        seed=seed)


# ---------------------------------------------------------------------------
# Semantic resources (Table II / Fig 7 legs)
# ---------------------------------------------------------------------------


def build_sensitive_corpus(docs_per_topic: int = 200,
                           doc_length: int = 12,
                           neutral_noise: float = 0.01,
                           general_rate: float = 0.05,
                           seed: int = 0) -> List[List[str]]:
    """A training corpus about the sensitive topics (the stand-in for
    the paper's 2 M video titles/descriptions, §V-F).

    Documents are short title-like token lists drawn from the sensitive
    vocabularies, with small amounts of general glue and neutral-topic
    contamination (the impurities that cost the LDA dictionary its
    precision).
    """
    rng = random.Random(seed)
    vocabularies = build_topic_vocabularies()
    neutral_terms: List[str] = []
    for topic, vocabulary in vocabularies.items():
        if not vocabulary.sensitive:
            neutral_terms.extend(vocabulary.terms)
    corpus: List[List[str]] = []
    for topic in SENSITIVE_TOPICS:
        terms = list(vocabularies[topic].terms)
        for _ in range(docs_per_topic):
            length = rng.randint(max(4, doc_length - 4), doc_length + 4)
            tokens: List[str] = []
            for _ in range(length):
                roll = rng.random()
                if roll < neutral_noise:
                    tokens.append(rng.choice(neutral_terms))
                elif roll < neutral_noise + general_rate:
                    tokens.append(rng.choice(GENERAL_TERMS))
                else:
                    tokens.append(rng.choice(terms))
            corpus.append(tokens)
    return corpus


@lru_cache(maxsize=2)
def build_lda_model(num_topics: int = 8, iterations: int = 60,
                    seed: int = 0) -> LdaModel:
    """Fit the sensitive-topic LDA model (§V-F, scaled down)."""
    corpus = build_sensitive_corpus(seed=seed)
    return fit_lda([tuple(doc) for doc in corpus], num_topics=num_topics,
                   iterations=iterations, seed=seed)


@lru_cache(maxsize=2)
def build_wordnet(seed: int = 0) -> SyntheticWordNet:
    return SyntheticWordNet.build(seed=seed)


def build_assessors(seed: int = 0, lda_topn: int = 90
                    ) -> Dict[str, SemanticAssessor]:
    """The three Table II configurations: WordNet, LDA, WordNet+LDA."""
    wordnet = build_wordnet(seed=seed)
    lda_model = build_lda_model(seed=seed)
    return {
        "WordNet": SemanticAssessor.from_resources(
            wordnet=wordnet, mode="wordnet"),
        "LDA": SemanticAssessor.from_resources(
            lda_model=lda_model, mode="lda", lda_topn=lda_topn),
        "WordNet + LDA": SemanticAssessor.from_resources(
            wordnet=wordnet, lda_model=lda_model, mode="combined",
            lda_topn=lda_topn, wordnet_min_hits=2),
    }


def print_table(title: str, header: Sequence[str],
                rows: Sequence[Sequence[object]]) -> None:
    """Render one experiment's output as an aligned text table."""
    widths = [len(str(h)) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))
    line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i])
                        for i, cell in enumerate(row)))
