"""Export figure/table data as CSV files.

Downstream users who want to re-plot the paper's figures (matplotlib,
gnuplot, a spreadsheet) get machine-readable series instead of printed
tables: ``python -m repro.experiments.export --outdir results/`` writes
one CSV per experiment.
"""

from __future__ import annotations

import argparse
import csv
import os
from typing import Dict, List, Optional, Sequence


def _write_csv(path: str, header: Sequence[str],
               rows: Sequence[Sequence[object]]) -> None:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_table2(outdir: str, **kwargs) -> str:
    from repro.experiments.table2_categorizer import run

    results = run(**kwargs)
    path = os.path.join(outdir, "table2_categorizer.csv")
    _write_csv(path, ["semantic_tool", "precision", "recall"],
               [[name, f"{p:.4f}", f"{r:.4f}"]
                for name, (p, r) in results.items()])
    return path


def export_fig5(outdir: str, **kwargs) -> str:
    from repro.experiments.fig5_reidentification import run

    rates = run(**kwargs)
    path = os.path.join(outdir, "fig5_reidentification.csv")
    _write_csv(path, ["system", "reidentification_rate"],
               [[name, f"{rate:.4f}"] for name, rate in rates.items()])
    return path


def export_fig6(outdir: str, **kwargs) -> str:
    from repro.experiments.fig6_accuracy import run

    results = run(**kwargs)
    path = os.path.join(outdir, "fig6_accuracy.csv")
    _write_csv(path, ["system", "correctness", "completeness"],
               [[name, f"{score.correctness:.4f}",
                 f"{score.completeness:.4f}"]
                for name, score in results.items()])
    return path


def export_fig7(outdir: str, **kwargs) -> str:
    from repro.experiments.fig7_adaptive_k import run

    outcome = run(**kwargs)
    path = os.path.join(outdir, "fig7_adaptive_k_cdf.csv")
    _write_csv(path, ["k", "cdf"],
               [[k, f"{fraction:.4f}"] for k, fraction in outcome["cdf"]])
    return path


def export_fig8a(outdir: str, **kwargs) -> str:
    from repro.experiments.fig8a_latency import run
    from repro.metrics.latencystats import cdf_points

    samples = run(**kwargs)
    path = os.path.join(outdir, "fig8a_latency_cdf.csv")
    rows: List[List[object]] = []
    quantiles = [i / 100.0 for i in range(1, 100)]
    for name, latencies in samples.items():
        for quantile, value in cdf_points(latencies, points=quantiles):
            rows.append([name, f"{quantile:.2f}", f"{value:.6f}"])
    _write_csv(path, ["system", "quantile", "latency_s"], rows)
    return path


def export_fig8b(outdir: str, **kwargs) -> str:
    from repro.experiments.fig8b_k_latency import run
    from repro.metrics.latencystats import cdf_points

    samples = run(**kwargs)
    path = os.path.join(outdir, "fig8b_k_latency_cdf.csv")
    rows: List[List[object]] = []
    quantiles = [i / 100.0 for i in range(1, 100)]
    for k, latencies in samples.items():
        for quantile, value in cdf_points(latencies, points=quantiles):
            rows.append([k, f"{quantile:.2f}", f"{value:.6f}"])
    _write_csv(path, ["k", "quantile", "latency_s"], rows)
    return path


def export_fig8c(outdir: str, **kwargs) -> str:
    from repro.experiments.fig8c_throughput import run

    results = run(**kwargs)
    path = os.path.join(outdir, "fig8c_throughput.csv")
    rows = []
    for name, series in results.items():
        for point in series:
            rows.append([name, f"{point['rate']:.0f}",
                         f"{point['median']:.6f}", f"{point['p90']:.6f}"])
    _write_csv(path, ["system", "offered_req_s", "median_s", "p90_s"], rows)
    return path


def export_fig8d(outdir: str, **kwargs) -> str:
    from repro.experiments.fig8d_ratelimit import run

    outcome = run(**kwargs)
    path = os.path.join(outdir, "fig8d_ratelimit.csv")
    _write_csv(
        path,
        ["minute", "xsearch_admitted_per_h", "xsearch_rejected_per_h",
         "cyclosa_mean_per_node_h", "cyclosa_max_per_node_h"],
        [[f"{p['minute']:.0f}", f"{p['xsearch_admitted_per_h']:.1f}",
          f"{p['xsearch_rejected_per_h']:.1f}",
          f"{p['cyclosa_mean_per_node_h']:.2f}",
          f"{p['cyclosa_max_per_node_h']:.1f}"]
         for p in outcome["series"]])
    return path


EXPORTERS = {
    "table2": export_table2,
    "fig5": export_fig5,
    "fig6": export_fig6,
    "fig7": export_fig7,
    "fig8a": export_fig8a,
    "fig8b": export_fig8b,
    "fig8c": export_fig8c,
    "fig8d": export_fig8d,
}


def export_all(outdir: str, only: Optional[Sequence[str]] = None,
               **kwargs) -> Dict[str, str]:
    """Export every (or the selected) figure's data; returns paths."""
    selected = dict(EXPORTERS)
    if only:
        unknown = set(only) - set(EXPORTERS)
        if unknown:
            raise ValueError(f"unknown exports: {sorted(unknown)}")
        selected = {name: EXPORTERS[name] for name in only}
    return {name: exporter(outdir, **kwargs)
            for name, exporter in selected.items()}


def main() -> None:
    parser = argparse.ArgumentParser(
        description="export experiment data as CSV")
    parser.add_argument("--outdir", default="results")
    parser.add_argument("--only", nargs="*", choices=sorted(EXPORTERS),
                        help="subset of exports (default: all)")
    args = parser.parse_args()
    paths = export_all(args.outdir, only=args.only)
    for name, path in paths.items():
        print(f"{name:<8} -> {path}")


if __name__ == "__main__":
    main()
