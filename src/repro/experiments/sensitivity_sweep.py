"""Workloads with different query sensitivity levels (§IX future work).

"Future work will investigate other datasets and workloads with
different query sensitivity levels." This experiment does exactly that:
the workload generator's sensitivity rate is swept from 5 % to 60 %,
and for each workload we measure how CYCLOSA's *adaptive* protection
responds on both axes the paper cares about:

- privacy: SimAttack re-identification rate;
- cost: mean k (fakes per query = network + engine overhead).

The comparison line is the static k = kmax policy (X-Search style),
which pays full cost regardless of how sensitive the workload actually
is. The interesting shape: adaptive cost *tracks* workload sensitivity
while static cost is flat, and adaptive privacy stays within a small
factor of static privacy at every sensitivity level.
"""

from __future__ import annotations

from typing import Dict, List

from repro.attacks.profiles import build_profiles
from repro.attacks.simattack import SimAttack
from repro.baselines.cyclosa_analytic import CyclosaAnalytic
from repro.core.sensitivity import SemanticAssessor
from repro.datasets.aol import generate_aol_log
from repro.datasets.split import train_test_split
from repro.experiments.common import build_wordnet, print_table
from repro.metrics.privacy import reidentification_rate


def run(sensitivity_rates=(0.05, 0.1574, 0.35, 0.60),
        num_users: int = 50, mean_queries: float = 60.0,
        kmax: int = 7, seed: int = 0,
        max_queries: int = 1000) -> List[Dict[str, float]]:
    """Sweep workload sensitivity; measure adaptive vs static CYCLOSA."""
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")
    rows: List[Dict[str, float]] = []
    for rate in sensitivity_rates:
        log = generate_aol_log(num_users=num_users,
                               mean_queries_per_user=mean_queries,
                               sensitive_rate=rate, seed=seed)
        train, test = train_test_split(log)
        attack = SimAttack(build_profiles(train))
        records = test.records[:max_queries]

        row: Dict[str, float] = {
            "sensitive_rate": log.sensitive_rate(),
        }
        for label, adaptive in (("adaptive", True), ("static", False)):
            system = CyclosaAnalytic(semantic, kmax=kmax,
                                     adaptive=adaptive, seed=seed)
            for user in log.users:
                system.preload_history(
                    user, [r.text for r in train.queries_of(user)])
            observations = []
            for record in records:
                observations.extend(
                    system.protect(record.user_id, record.text))
            row[f"{label}_reid"] = reidentification_rate(
                attack, observations, system.attack_surface)
            row[f"{label}_mean_k"] = (
                sum(system.k_history) / len(system.k_history))
        rows.append(row)
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Sensitivity sweep — adaptive protection vs workload sensitivity",
        ["workload sensitive", "adaptive re-id", "adaptive mean k",
         "static re-id", "static mean k"],
        [[f"{r['sensitive_rate'] * 100:.1f} %",
          f"{r['adaptive_reid'] * 100:.1f} %",
          f"{r['adaptive_mean_k']:.2f}",
          f"{r['static_reid'] * 100:.1f} %",
          f"{r['static_mean_k']:.2f}"] for r in rows])
    print("\nAdaptive cost (mean k) tracks the workload's actual "
          "sensitivity; the static policy pays kmax everywhere.")


if __name__ == "__main__":
    main()
