"""Full-stack privacy validation: SimAttack against the real pipeline.

Fig 5's numbers come from the fast analytic pipeline; this experiment
closes the loop by attacking the *actual network stack* — enclaves,
attested channels, gossip relay selection, the engine's real log — and
checking the result lands where the analytic model says it should.

Setup: one CYCLOSA node per synthetic user; each node is preloaded with
its user's training history; the test-split queries are issued from
their owners' nodes with adaptive protection. SimAttack then runs on
exactly what the engine logged.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines.base import AttackSurface, EngineObservation
from repro.baselines.cyclosa_analytic import CyclosaAnalytic
from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.core.sensitivity import SemanticAssessor
from repro.experiments.common import build_wordnet, build_workload
from repro.metrics.privacy import reidentification_rate


def run(num_nodes: int = 24, num_queries: int = 240, kmax: int = 7,
        seed: int = 0,
        max_wait: float = 240.0) -> Dict[str, float]:
    """Attack the full stack and its analytic twin on the same workload.

    Returns both rates plus the realised observation counts; the bench
    asserts they agree within sampling noise.
    """
    workload = build_workload(num_users=num_nodes,
                              mean_queries_per_user=60.0, seed=seed)
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")

    config = CyclosaConfig(kmax=kmax)
    deployment = CyclosaNetwork.create(
        num_nodes=num_nodes, seed=seed, config=config, semantic=semantic)

    # Map synthetic users onto nodes and preload their histories.
    user_to_node = {}
    for index, user_id in enumerate(workload.log.users[:num_nodes]):
        node = deployment.nodes[index]
        node.user_id = user_id
        node.preload_history(workload.user_training_texts(user_id))
        user_to_node[user_id] = index

    records = [r for r in workload.test.records
               if r.user_id in user_to_node][:num_queries]

    issued = 0
    for record in records:
        result = deployment.node(user_to_node[record.user_id]).search(
            record.text, max_wait=max_wait)
        if result.status != "no-peers":
            issued += 1

    observations = [
        EngineObservation(identity=entry.identity, text=entry.text,
                          true_user=entry.true_user or "",
                          is_fake=entry.is_fake)
        for entry in deployment.engine_log
        if entry.true_user is not None
    ]
    fullstack_rate = reidentification_rate(
        workload.attack, observations, AttackSurface.ANONYMOUS_SINGLE)

    # The analytic twin on the identical workload.
    analytic = CyclosaAnalytic(semantic, kmax=kmax, adaptive=True,
                               num_relays=num_nodes, seed=seed)
    for user_id in workload.log.users:
        analytic.preload_history(user_id,
                                 workload.user_training_texts(user_id))
    analytic_observations = []
    for record in records:
        analytic_observations.extend(
            analytic.protect(record.user_id, record.text))
    analytic_rate = reidentification_rate(
        workload.attack, analytic_observations,
        AttackSurface.ANONYMOUS_SINGLE)

    return {
        "fullstack_rate": fullstack_rate,
        "analytic_rate": analytic_rate,
        "fullstack_observations": len(observations),
        "analytic_observations": len(analytic_observations),
        "queries_issued": issued,
    }


def main() -> None:
    outcome = run()
    print("== Full-stack privacy validation ==")
    print(f"queries issued through the real stack : "
          f"{outcome['queries_issued']}")
    print(f"engine observed (real stack)          : "
          f"{outcome['fullstack_observations']} queries")
    print(f"re-identification, full stack         : "
          f"{outcome['fullstack_rate'] * 100:.1f} %")
    print(f"re-identification, analytic twin      : "
          f"{outcome['analytic_rate'] * 100:.1f} %")
    print("\nThe two pipelines see the same workload; agreement means "
          "Fig 5's\nanalytic numbers are faithful to the deployed "
          "protocol (enclaves,\nattestation, gossip relays, engine log "
          "and all).")


if __name__ == "__main__":
    main()
