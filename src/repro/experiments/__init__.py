"""Experiment drivers: one module per table/figure of the paper.

Every module exposes ``run(...) -> dict`` returning the rows/series the
paper reports, and prints a formatted report when executed as a module
(``python -m repro.experiments.fig5``). The benchmark harness under
``benchmarks/`` calls the same ``run`` functions at reduced scale;
module CLIs default to paper scale.

| Module              | Reproduces                                     |
|---------------------|------------------------------------------------|
| table1_properties   | Table I property matrix (behavioural probes)   |
| table2_categorizer  | Table II categorizer precision/recall          |
| fig5_reidentification | Fig 5 re-identification rates                |
| fig6_accuracy       | Fig 6 correctness/completeness                 |
| fig7_adaptive_k     | Fig 7 CDF of the adaptive k                    |
| fig8a_latency       | Fig 8a end-to-end latency CDFs                 |
| fig8b_k_latency     | Fig 8b latency vs k                            |
| fig8c_throughput    | Fig 8c throughput/latency saturation           |
| fig8d_ratelimit     | Fig 8d rate-limit survival                     |
| ablations           | design-choice ablations called out in DESIGN.md |
| engine_scaling      | engine-tier scale-out inside full deployments  |
"""
