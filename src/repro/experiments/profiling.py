"""Deterministic profiling scenarios (``repro profile <scenario>``).

Each scenario drives a fixed, seeded workload under the
:class:`repro.obs.DeterministicProfiler` and returns one JSON-ready
report: per-subsystem CPU attribution, collapsed-stack flamegraph
text, windowed heap attribution and (where spans exist) a chrome-trace
view with the profiler's sample track merged in.

Byte-identity contract: two same-seed runs of the same scenario emit
identical ``collapsed`` text and identical ``cpu`` attribution JSON —
the property ``benchmarks/check_profile.py`` gates. Three mechanisms
make this hold even for back-to-back runs in one process:

- every scenario first runs once *unprofiled* (the warm-up pass
  absorbs one-time interpreter work — regex compilation, import-time
  lazy loads — whose call events would otherwise differ between a
  fresh and a reused process), then clears the text caches so the
  measured pass always starts from the same cache state;
- the measured pass runs with the cycle collector frozen
  (``gc.collect()`` then ``gc.disable()``): automatic collections
  trigger on allocation counts accumulated by the *whole process*, and
  any registered ``gc`` callback (test harnesses install these) would
  inject call events at those ambient-dependent points;
- heap snapshots suspend the CPU hook while they are processed (see
  :class:`repro.obs.HeapSampler`), so ``tracemalloc``'s data-dependent
  bookkeeping never reaches the call-event stream. Heap byte *sizes*
  are reported for attribution but are **not** part of the
  byte-identity contract — live-heap contents legitimately depend on
  process history.

Scenarios:

- ``search``  — protected searches end-to-end on a demo overlay
  (the per-subsystem cost of the full CYCLOSA pipeline);
- ``simulator`` — the bare discrete-event loop on the bench workload
  (ROADMAP item 1's sharding target);
- ``sensitivity`` — the §V-A text pipeline, cold caches;
- ``monitor`` — a shortened churn+chaos soak through
  :func:`repro.experiments.monitor.run_scenario`.
"""

from __future__ import annotations

import gc
import random
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.text.cache import clear_caches

#: Default sampling interval for scenarios (denser than the profiler's
#: own default — scenario workloads are short).
DEFAULT_SAMPLE_INTERVAL = 256

#: Heap window width in simulated seconds.
DEFAULT_WINDOW_SECONDS = 5.0


def _queries(count: int, seed: int) -> List[str]:
    from repro.perf import workload_queries

    return workload_queries(count, seed=seed)


# -- scenario bodies ----------------------------------------------------
#
# Each body takes (params, profiler, heap) and returns a dict with the
# scenario-specific extras; the profiler/heap plumbing is shared in
# run_scenario. `profiler is None` is the warm-up pass.


def _scenario_search(params: Dict[str, Any], profiler, heap: bool
                     ) -> Dict[str, Any]:
    from repro.core.client import CyclosaNetwork

    obs.disable(reset=True)
    deployment = CyclosaNetwork.create(
        num_nodes=params["nodes"], seed=params["seed"], observe=True)
    simulator = deployment.simulator
    if profiler is not None:
        profiler.clock = obs.SimulatedClock(simulator)
    queries = _queries(params["searches"], params["seed"])

    sampler = None
    if heap:
        sampler = obs.HeapSampler(
            simulator, window_seconds=params["window_seconds"])
        sampler.start()
    ok = 0
    if profiler is not None:
        profiler.start()
    try:
        for index, query in enumerate(queries):
            if deployment.node(index % params["nodes"]).search(query).ok:
                ok += 1
        deployment.run(60.0)
    finally:
        if profiler is not None:
            profiler.stop()

    heap_windows: List[dict] = []
    heap_final = None
    if sampler is not None:
        heap_windows = sampler.windows
        heap_final = sampler.snapshot_now()
        sampler.stop()

    chrome = None
    if profiler is not None:
        spans = list(obs.OBS.tracer.sink.spans) + obs.OBS.router.all_spans()
        chrome = obs.chrome_trace_with_samples(spans, profiler)
    obs.disable(reset=True)
    needles = list(queries) + [node.address for node in deployment.nodes] \
        + [node.user_id for node in deployment.nodes]
    return {"extra": {"searches": len(queries), "ok": ok},
            "heap_windows": heap_windows, "heap_final": heap_final,
            "chrome": chrome, "audit_needles": needles}


def _scenario_simulator(params: Dict[str, Any], profiler, heap: bool
                        ) -> Dict[str, Any]:
    from repro.net.simulator import Simulator

    simulator = Simulator()
    if profiler is not None:
        profiler.clock = obs.SimulatedClock(simulator)
    rng = random.Random(params["seed"])
    state = {"remaining": params["num_events"], "cancelled": 0}

    def tick() -> None:
        if state["remaining"] <= 0:
            return
        state["remaining"] -= 1
        delay = 1e-4 + rng.random() * 1e-3
        simulator.post(delay, tick)
        if state["remaining"] % 10 == 0:
            simulator.schedule(delay * 2.0, tick).cancel()
            state["cancelled"] += 1

    for _ in range(params["chains"]):
        simulator.post(rng.random() * 1e-3, tick)

    # The heap sampler's rearming flush would keep a run-to-empty loop
    # alive forever, so the measured pass runs to the horizon the
    # warm-up pass recorded (same seed → same natural end time). A
    # warmup-less run falls back to run-to-empty without heap windows.
    horizon = params.get("_sim_horizon")
    sampler = None
    if heap and horizon is not None:
        sampler = obs.HeapSampler(
            simulator, window_seconds=params["window_seconds"])
        sampler.start()
    if profiler is not None:
        profiler.start()
    try:
        if sampler is not None:
            simulator.run(until=horizon)
        else:
            simulator.run()
    finally:
        if profiler is not None:
            profiler.stop()
    if profiler is None:
        params["_sim_horizon"] = simulator.now

    heap_windows: List[dict] = []
    heap_final = None
    if sampler is not None:
        heap_windows = sampler.windows
        heap_final = sampler.snapshot_now()
        sampler.stop()

    chrome = None
    if profiler is not None:
        chrome = obs.chrome_trace_with_samples([], profiler)
    return {"extra": {"events": simulator.events_processed,
                      "cancelled": state["cancelled"]},
            "heap_windows": heap_windows, "heap_final": heap_final,
            "chrome": chrome, "audit_needles": []}


def _scenario_sensitivity(params: Dict[str, Any], profiler, heap: bool
                          ) -> Dict[str, Any]:
    from repro.core.sensitivity import (LinkabilityAssessor,
                                        SemanticAssessor,
                                        SensitivityAnalysis)
    from repro.text.wordnet import SyntheticWordNet

    texts = _queries(params["history_size"] + params["probes"],
                     params["seed"])
    history = texts[:params["history_size"]]
    probes = texts[params["history_size"]:]
    semantic = SemanticAssessor.from_resources(
        wordnet=SyntheticWordNet.build(seed=params["seed"]), mode="wordnet")

    # No simulator here, so no windowed heap sampling and no timeline;
    # the profile is the cold-cache CPU attribution of the pipeline.
    if profiler is not None:
        profiler.start()
    try:
        linkability = LinkabilityAssessor(history=history)
        analysis = SensitivityAnalysis(semantic, linkability)
        for query in probes:
            analysis.assess(query)
    finally:
        if profiler is not None:
            profiler.stop()
    return {"extra": {"history_size": len(history), "probes": len(probes)},
            "heap_windows": [], "heap_final": None, "chrome": None,
            "audit_needles": list(probes)}


def _scenario_monitor(params: Dict[str, Any], profiler, heap: bool
                      ) -> Dict[str, Any]:
    from repro.experiments import monitor

    # A shortened soak: the profiler rides inside run_scenario so the
    # report's `profile` section and our attribution agree exactly.
    report = monitor.run_scenario(
        num_nodes=params["nodes"], seed=params["seed"],
        duration=params["monitor_seconds"],
        storm_start=50.0 + params["monitor_seconds"] * 0.25,
        storm_end=50.0 + params["monitor_seconds"] * 0.5,
        drain_seconds=60.0, profiler=profiler)
    obs.disable(reset=True)
    needles = [f"monitor probe {index}"
               for index in range(report["traffic"]["issued"])]
    return {"extra": {"issued": report["traffic"]["issued"],
                      "hung_searches": report["traffic"]["hung_searches"]},
            "heap_windows": [], "heap_final": None, "chrome": None,
            "audit_needles": needles}


SCENARIOS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "search": _scenario_search,
    "simulator": _scenario_simulator,
    "sensitivity": _scenario_sensitivity,
    "monitor": _scenario_monitor,
}


def run_scenario(name: str, seed: int = 0, nodes: int = 8,
                 searches: int = 6,
                 sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 heap: bool = True, warmup: bool = True,
                 history_size: int = 600, probes: int = 30,
                 num_events: int = 30000, chains: int = 16,
                 monitor_seconds: float = 60.0) -> Dict[str, Any]:
    """Run one named scenario under the profiler; return its report.

    The report's ``cpu`` dict and ``collapsed`` text are byte-stable
    across same-seed runs (see the module docstring for how); ``heap``
    rows are attribution-grade, not byte-pinned.
    """
    body = SCENARIOS.get(name)
    if body is None:
        raise ValueError(f"unknown profile scenario: {name!r} "
                         f"(known: {', '.join(SCENARIOS)})")
    if sample_interval < 1:
        raise ValueError("sample_interval must be >= 1")
    params = {
        "seed": seed, "nodes": nodes, "searches": searches,
        "window_seconds": window_seconds, "history_size": history_size,
        "probes": probes, "num_events": num_events, "chains": chains,
        "monitor_seconds": monitor_seconds,
    }
    if warmup:
        body(params, None, False)
    clear_caches()
    # Freeze the cycle collector for the measured pass. Automatic
    # collections fire on allocation-count thresholds, so their timing
    # depends on everything the process allocated *before* this run —
    # and any registered gc callback (hypothesis installs one to track
    # GC time, for example) is a Python function whose invocation
    # injects call events at those ambient-state-dependent points,
    # shifting every later sample. Refcount-driven finalization is
    # unaffected and stays deterministic.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    profiler = obs.DeterministicProfiler(sample_interval=sample_interval)
    try:
        outcome = body(params, profiler, heap)
    finally:
        if gc_was_enabled:
            gc.enable()
    report: Dict[str, Any] = {
        "scenario": name,
        "params": dict(params, sample_interval=sample_interval,
                       heap=heap, warmup=warmup),
        "cpu": profiler.attribution(),
        "collapsed": profiler.collapsed_stacks(),
        "heap": {
            "windows": outcome["heap_windows"],
            "final": outcome["heap_final"],
        },
        "chrome": outcome["chrome"],
        # Workload strings for audit_profile_output: everything that
        # must NOT appear in the profile. Callers use and drop this —
        # it never belongs in a written artifact.
        "audit_needles": outcome["audit_needles"],
    }
    report.update(outcome["extra"])
    return report


__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_WINDOW_SECONDS",
    "SCENARIOS",
    "run_scenario",
]
