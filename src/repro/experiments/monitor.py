"""The flight recorder scenario behind ``repro monitor``.

A soak-style churn+chaos run watched through the time-series and SLO
layers of :mod:`repro.obs`: a deployment serves a steady trickle of
protected searches while a forward-drop fault runs throughout, part of
the overlay churns away mid-run, and the engine is hit with a
rate-limit storm. A :class:`~repro.obs.TimeSeriesRecorder` aggregates
the whole run into fixed windows and the default SLO spec turns them
into a verdict — the burn-rate monitor is expected to flag exactly the
storm's window range, which is what ``benchmarks/check_slo.py`` pins.

Everything is seeded and measured in simulated seconds, so the JSON
report (:func:`report_json`) is byte-identical across same-seed runs —
the property the CI gate enforces. All times in the parameters are
*absolute* simulated seconds (the deployment warm-up occupies
``[0, warmup)``, so traffic, churn and storm should start after it).
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional

from repro import obs
from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.faults.inject import install
from repro.faults.plan import (Drop, FaultPlan, FORWARD_REQUESTS,
                               RateLimitStorm)
from repro.net.churn import ChurnProcess

#: Simulated warm-up; traffic starts once gossip has mixed.
WARMUP_SECONDS = 40.0

LATENCY_HISTOGRAM = "cyclosa_core_search_latency_seconds"
RESULT_COUNTER = "cyclosa_core_search_results_total"
BACKLOG_GAUGE = "cyclosa_core_outstanding_searches"


def default_slo_spec(window_seconds: float = 10.0) -> obs.SloSpec:
    """The standing spec for soak runs.

    - ``search-success``: ≥ 90 % of terminal results are ``ok`` — the
      rule the rate-limit storm breaches (captcha results are bad
      events);
    - ``search-latency``: p95 of end-to-end search latency stays under
      20 s (generous enough for retry chains, tight enough to catch a
      stalled overlay);
    - ``backlog-bounded``: the pull-gauge over
      ``outstanding_searches()`` stays under 64 at every boundary — the
      windowed form of the "zero hung searches" invariant.

    The burn-rate policy is scaled so the short range covers ~30 s and
    the long range ~2 min of simulated time at the given window width.
    """
    scale = max(1.0, 10.0 / window_seconds)
    policy = obs.BurnRatePolicy(short_windows=max(1, int(3 * scale)),
                                long_windows=max(2, int(12 * scale)),
                                factor=2.0)
    return obs.SloSpec(
        name="soak-default",
        policy=policy,
        rules=(
            obs.SuccessRateSlo(name="search-success", target=0.9,
                               counter=RESULT_COUNTER,
                               ok_statuses=("ok",)),
            obs.LatencyQuantileSlo(name="search-latency",
                                   histogram=LATENCY_HISTOGRAM,
                                   threshold_seconds=20.0, q=0.95),
            obs.BoundedGaugeSlo(name="backlog-bounded",
                                gauge=BACKLOG_GAUGE, bound=64.0),
        ))


def run_scenario(num_nodes: int = 12, seed: int = 11, plan_seed: int = 3,
                 duration: float = 200.0, window_seconds: float = 10.0,
                 query_interval: float = 2.0, clients: int = 4, k: int = 2,
                 storm_start: float = 120.0, storm_end: float = 160.0,
                 drop_probability: float = 0.05, churn_victims: int = 2,
                 churn_start: float = 70.0, churn_duration: float = 30.0,
                 drain_seconds: float = 120.0,
                 spec: Optional[obs.SloSpec] = None,
                 profiler: Optional[obs.DeterministicProfiler] = None
                 ) -> Dict[str, Any]:
    """Run the churn+chaos soak and return the full windowed report.

    When a :class:`~repro.obs.DeterministicProfiler` is passed
    (``repro monitor --profile``), it is armed around the traffic +
    drain phase and the report gains a ``profile`` section with the
    per-subsystem attribution; the caller keeps the profiler, so it
    can also export collapsed stacks. Without one, the report is
    byte-identical to previous releases (the ``check_slo.py``
    contract).
    """
    if clients < 1 or clients > num_nodes:
        raise ValueError("need 1 <= clients <= num_nodes")
    if churn_victims > num_nodes - clients:
        raise ValueError("churn victims would include query clients")
    config = CyclosaConfig(relay_timeout=1.5, max_retries=3)
    deployment = CyclosaNetwork.create(
        num_nodes=num_nodes, seed=seed, config=config,
        warmup_seconds=WARMUP_SECONDS, observe=True)
    simulator = deployment.simulator

    recorder = obs.TimeSeriesRecorder(
        obs.get_registry(), simulator, window_seconds=window_seconds)
    recorder.start()

    plan = FaultPlan(seed=plan_seed, faults=(
        Drop(match=FORWARD_REQUESTS, probability=drop_probability),
        RateLimitStorm(start=storm_start, end=storm_end),
    ))
    installed = install(plan, deployment)

    churn = ChurnProcess(
        deployment.network,
        rng=random.Random(plan_seed * 7919 + seed),
        repository=deployment.services.repository)
    if churn_victims > 0:
        churn.schedule_departures(
            deployment.nodes[num_nodes - churn_victims:],
            start=churn_start, duration=churn_duration, style="crash")

    completions: List[Dict[str, Any]] = []
    issued = 0
    start = simulator.now
    when = start
    index = 0
    while when < start + duration:
        node = deployment.nodes[index % clients]

        def issue(node=node, index=index) -> None:
            node.search(f"monitor probe {index}",
                        on_result=completions.append, k_override=k)

        simulator.schedule_at(when, issue)
        issued += 1
        when += query_interval
        index += 1

    if profiler is not None:
        profiler.start()
    try:
        simulator.run(until=start + duration + drain_seconds)
    finally:
        if profiler is not None:
            profiler.stop()
    recorder.stop()
    installed.uninstall()
    hung = sum(node.outstanding_count() for node in deployment.nodes)

    spec = spec or default_slo_spec(window_seconds)
    slo_report = obs.evaluate_slo(spec, recorder.windows)

    statuses: Dict[str, int] = {}
    for result in completions:
        statuses[result["status"]] = statuses.get(result["status"], 0) + 1

    window_width = recorder.window_seconds
    report = {
        "scenario": {
            "nodes": num_nodes,
            "clients": clients,
            "seed": seed,
            "plan_seed": plan_seed,
            "k": k,
            "duration": duration,
            "warmup": WARMUP_SECONDS,
            "window_seconds": window_width,
            "query_interval": query_interval,
            "drop_probability": drop_probability,
            "storm": {"start": storm_start, "end": storm_end,
                      "windows": [int(storm_start // window_width),
                                  int((storm_end - 1e-9) // window_width)]},
            "churn": {"victims": churn_victims, "start": churn_start,
                      "duration": churn_duration},
            "drain_seconds": drain_seconds,
        },
        "traffic": {
            "issued": issued,
            "completed": len(completions),
            "statuses": dict(sorted(statuses.items())),
            "hung_searches": hung,
        },
        "churn_events": [
            {"time": round(event.time, 6), "address": event.address,
             "style": event.style}
            for event in sorted(churn.events, key=lambda e: e.time)],
        "faults_injected": installed.counts,
        "windows": recorder.to_dicts(),
        "windows_evicted": recorder.evicted,
        "slo": slo_report.to_dict(),
    }
    if profiler is not None:
        report["profile"] = profiler.attribution()
    return report


def report_json(report: Dict[str, Any]) -> str:
    """Canonical JSON: the same report always encodes to the same
    bytes (the property ``check_slo.py`` pins across same-seed runs)."""
    return json.dumps(report, sort_keys=True, indent=2)


# -- text dashboard ----------------------------------------------------


def _alerting_windows(report: Dict[str, Any]) -> Dict[int, List[str]]:
    flagged: Dict[int, List[str]] = {}
    for rule in report["slo"]["rules"]:
        for lo, hi in rule["alert_ranges"]:
            for index in range(lo, hi + 1):
                flagged.setdefault(index, []).append(rule["rule"])
    return flagged


def format_dashboard(report: Dict[str, Any]) -> str:
    """Per-window terminal dashboard plus the SLO verdict block."""
    flagged = _alerting_windows(report)
    header = ["win", "t", "issued", "ok", "bad", "p95 lat", "backlog",
              "net KB", "faults", "alerts"]
    rows: List[List[str]] = []
    for window in report["windows"]:
        counters = window["counters"]
        gauges = window["gauges"]
        issued = counters.get("cyclosa_core_searches_total", 0)
        ok = counters.get('cyclosa_core_search_results_total{status="ok"}', 0)
        bad = sum(value for key, value in counters.items()
                  if key.startswith("cyclosa_core_search_results_total{")
                  and key != 'cyclosa_core_search_results_total{status="ok"}')
        hist = window["histograms"].get(LATENCY_HISTOGRAM, {})
        p95 = hist.get("p95", hist.get("p90", 0.0))
        backlog = gauges.get(BACKLOG_GAUGE, 0)
        net_kb = counters.get("cyclosa_net_bytes_total", 0) / 1024.0
        faults = sum(value for key, value in counters.items()
                     if key.startswith("cyclosa_faults_injected_total"))
        alerts = ",".join(flagged.get(window["index"], [])) or "-"
        rows.append([
            str(window["index"]),
            f"{window['start']:.0f}s",
            f"{issued:.0f}",
            f"{ok:.0f}",
            f"{bad:.0f}",
            f"{p95:.2f}s",
            f"{backlog:.0f}",
            f"{net_kb:.1f}",
            f"{faults:.0f}",
            alerts,
        ])
    widths = [len(h) for h in header]
    for row in rows:
        for col, value in enumerate(row):
            widths[col] = max(widths[col], len(value))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(value.ljust(widths[i])
                               for i, value in enumerate(row)))

    traffic = report["traffic"]
    lines.append("")
    lines.append(
        f"traffic: {traffic['issued']} issued, "
        f"{traffic['completed']} completed, "
        f"{traffic['hung_searches']} hung; statuses "
        + ",".join(f"{name}:{count}"
                   for name, count in traffic["statuses"].items()))
    storm = report["scenario"]["storm"]
    lines.append(
        f"injected storm: t={storm['start']:.0f}s..{storm['end']:.0f}s "
        f"(windows {storm['windows'][0]}..{storm['windows'][1]})")
    lines.append("")
    lines.append(_format_slo_block(report["slo"]))
    return "\n".join(lines)


def _format_slo_block(slo: Dict[str, Any]) -> str:
    lines = [f"SLO spec {slo['spec']!r}: {slo['verdict'].upper()} "
             f"({slo['windows']} windows)"]
    for rule in slo["rules"]:
        mark = "PASS" if rule["verdict"] == "ok" else "FAIL"
        lines.append(
            f"  [{mark}] {rule['rule']}: {rule['objective']}  "
            f"attained={rule['attained']:.4f} target={rule['target']:.4f} "
            f"max_burn={rule['max_burn']:.2f}")
        if rule["alert_ranges"]:
            spans = ", ".join(f"windows {lo}..{hi}"
                              for lo, hi in rule["alert_ranges"])
            lines.append(f"         burn-rate alerts: {spans}")
    return "\n".join(lines)
