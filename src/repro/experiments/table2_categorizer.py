"""Table II: precision/recall of the semantic query categorizer.

Paper (sexuality topic, WordNet + LDA pipeline, §VIII-E):

    Semantic tool   Precision  Recall
    WordNet         0.53       0.83
    LDA             0.84       0.89
    WordNet + LDA   0.86       0.85

The reproduction classifies the test split's queries with each of the
three configurations and scores them against the generator's
ground-truth sensitivity labels. The expected *shape*: WordNet-only has
decent recall but poor precision (polysemous domain labels over-tag
neutral queries); LDA is better on both; the combination trades a
little of LDA's recall for the best precision.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import (
    build_assessors,
    build_workload,
    print_table,
)
from repro.metrics.accuracy import precision_recall


def run(num_users: int = 100, mean_queries: float = 100.0, seed: int = 0,
        max_queries: int = 10000) -> Dict[str, Tuple[float, float]]:
    """Classify test queries with each configuration.

    Returns ``{config: (precision, recall)}``. *max_queries* mirrors the
    paper's 10 000-query crowd-sourced evaluation subset (§VII-C).
    """
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records[:max_queries]
    actual = [record.is_sensitive for record in records]
    assessors = build_assessors(seed=seed)
    results: Dict[str, Tuple[float, float]] = {}
    for name, assessor in assessors.items():
        predicted = [assessor.is_sensitive(record.text) for record in records]
        results[name] = precision_recall(predicted, actual)
    return results


PAPER_ROWS = {
    "WordNet": (0.53, 0.83),
    "LDA": (0.84, 0.89),
    "WordNet + LDA": (0.86, 0.85),
}


def main() -> None:
    results = run()
    rows = []
    for name, (precision, recall) in results.items():
        paper_p, paper_r = PAPER_ROWS[name]
        rows.append([
            name,
            f"{precision:.2f}", f"{paper_p:.2f}",
            f"{recall:.2f}", f"{paper_r:.2f}",
        ])
    print_table(
        "Table II — detection of semantically sensitive queries",
        ["Semantic tool", "Precision", "(paper)", "Recall", "(paper)"],
        rows)


if __name__ == "__main__":
    main()
