"""Generate the full paper-vs-measured report as Markdown.

``python -m repro.experiments.report --out report.md`` regenerates an
EXPERIMENTS.md-style document from live runs, so the recorded numbers
can always be re-derived from the code. The benchmark harness asserts
shapes; this module *records* values.
"""

from __future__ import annotations

import argparse
from typing import List


def _md_table(header: List[str], rows: List[List[object]]) -> str:
    lines = ["| " + " | ".join(str(h) for h in header) + " |",
             "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def build_report(scale: str = "small", seed: int = 0) -> str:
    """Run the analytic experiments and render the Markdown report.

    ``scale='small'`` finishes in a couple of minutes; ``'paper'`` uses
    the full defaults of every experiment module.
    """
    if scale not in ("small", "paper"):
        raise ValueError("scale must be 'small' or 'paper'")
    small = scale == "small"
    sections: List[str] = ["# CYCLOSA reproduction report",
                           f"(scale: {scale}, seed: {seed} — regenerate "
                           f"with `python -m repro.experiments.report`)"]

    # -- Table I ----------------------------------------------------------
    from repro.experiments.table1_properties import PROPERTIES, run as t1

    outcome = t1(num_users=40 if small else 60,
                 mean_queries=50.0 if small else 60.0,
                 seed=seed, sample_size=100 if small else 150)
    rows = []
    mismatches = 0
    for name, maps in outcome.items():
        measured = maps["measured"]
        mismatches += sum(measured[p] != maps["declared"][p]
                          for p in PROPERTIES)
        rows.append([name] + ["✓" if measured[p] else "✗"
                              for p in PROPERTIES])
    sections.append("## Table I — property matrix (measured)\n\n"
                    + _md_table(["System", *PROPERTIES], rows)
                    + f"\n\nDisagreements with the paper's matrix: "
                      f"**{mismatches}**")

    # -- Table II ---------------------------------------------------------
    from repro.experiments.table2_categorizer import PAPER_ROWS, run as t2

    results = t2(num_users=60 if small else 100,
                 mean_queries=60.0 if small else 100.0, seed=seed,
                 max_queries=2500 if small else 10000)
    rows = [[name, f"{p:.2f}", f"{PAPER_ROWS[name][0]:.2f}",
             f"{r:.2f}", f"{PAPER_ROWS[name][1]:.2f}"]
            for name, (p, r) in results.items()]
    sections.append("## Table II — categorizer\n\n" + _md_table(
        ["Tool", "P", "P (paper)", "R", "R (paper)"], rows))

    # -- Fig 5 --------------------------------------------------------------
    from repro.experiments.fig5_reidentification import (
        PAPER_RATES, run as f5)

    rates = f5(num_users=60 if small else 100,
               mean_queries=60.0 if small else 100.0, k=7, seed=seed,
               max_queries=1200 if small else None)
    rows = [[name, f"{rate * 100:.1f} %",
             f"{PAPER_RATES[name] * 100:.0f} %"]
            for name, rate in rates.items()]
    sections.append("## Fig 5 — re-identification (k=7)\n\n" + _md_table(
        ["System", "Measured", "Paper"], rows))

    # -- Fig 6 --------------------------------------------------------------
    from repro.experiments.fig6_accuracy import run as f6

    accuracy = f6(num_users=60 if small else 100,
                  mean_queries=60.0 if small else 100.0, k=3, seed=seed,
                  max_queries=200 if small else 500)
    rows = [[name, f"{score.correctness * 100:.1f} %",
             f"{score.completeness * 100:.1f} %"]
            for name, score in accuracy.items()]
    sections.append("## Fig 6 — accuracy (k=3)\n\n" + _md_table(
        ["System", "Correctness", "Completeness"], rows))

    # -- Fig 7 --------------------------------------------------------------
    from repro.experiments.fig7_adaptive_k import run as f7

    adaptive = f7(num_users=60 if small else 100,
                  mean_queries=60.0 if small else 100.0,
                  kmax=7, seed=seed,
                  max_queries=1500 if small else 4000)
    rows = [[k, f"{fraction * 100:.1f} %"] for k, fraction in adaptive["cdf"]]
    sections.append(
        "## Fig 7 — adaptive-k CDF (kmax=7)\n\n"
        + _md_table(["k", "CDF"], rows)
        + f"\n\nmean k = **{adaptive['mean_k']:.2f}** "
          f"(static policy: 7.00); k=0 mass "
          f"{adaptive['fraction_k0'] * 100:.1f} % (paper ≈ 25 %); "
          f"kmax mass {adaptive['fraction_kmax'] * 100:.1f} % "
          f"(paper ≈ 35 %)")

    # -- Fig 8c --------------------------------------------------------------
    from repro.experiments.fig8c_throughput import run as f8c

    throughput = f8c(rates=(5000, 10000, 20000, 30000, 40000), seed=seed,
                     duration=1.0 if small else 2.0)
    rows = []
    for name, series in throughput.items():
        for point in series:
            rows.append([name, f"{point['rate']:.0f}",
                         f"{point['median'] * 1000:.0f} ms"])
    capacities = {name: f"{series[0]['capacity']:.0f}"
                  for name, series in throughput.items()}
    sections.append(
        "## Fig 8c — saturation\n\n" + _md_table(
            ["System", "offered req/s", "median latency"], rows)
        + f"\n\nmeasured capacities: CYCLOSA {capacities['CYCLOSA']} "
          f"req/s (paper: >40k), X-Search {capacities['X-Search']} "
          f"req/s (paper: knee at 30k)")

    # -- Fig 8d --------------------------------------------------------------
    from repro.experiments.fig8d_ratelimit import run as f8d

    ratelimit = f8d(duration_minutes=60 if small else 90, seed=seed)
    last = ratelimit["series"][-1]
    sections.append(
        "## Fig 8d — rate-limit survival\n\n"
        f"- offered: {ratelimit['offered_per_hour']:.0f} queries/h "
        f"(paper ≈ 10 500)\n"
        f"- X-Search rejected total: "
        f"**{ratelimit['xsearch_rejected_total']}** (blocked; final bucket "
        f"admitted {last['xsearch_admitted_per_h']:.0f}/h)\n"
        f"- CYCLOSA rejected total: "
        f"**{ratelimit['cyclosa_rejected_total']}** (max node load "
        f"{last['cyclosa_max_per_node_h']:.0f}/h vs limit "
        f"{ratelimit['limit_per_hour']}/h)")

    return "\n\n".join(sections) + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None,
                        help="write to a file instead of stdout")
    parser.add_argument("--scale", choices=("small", "paper"),
                        default="small")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    report = build_report(scale=args.scale, seed=args.seed)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)


if __name__ == "__main__":
    main()
