"""Table I: the qualitative property matrix, verified behaviourally.

The paper's Table I asserts four properties per system. Rather than
restating the claims, this experiment *probes* each analytic system:

- **Unlinkability** — over a sample of protected queries, does the
  engine ever observe a real query arriving from its user's own
  network identity?
- **Indistinguishability** — does the engine-side traffic contain fake
  material (extra fake queries, or OR-groups hiding the real query)?
- **Accuracy** — is the user's returned result list identical to the
  unprotected engine answer for every sampled query?
- **Scalability** — is the engine-facing load spread over many
  identities (no single identity carries more than a small fraction of
  the traffic)? Centralized proxies fail this by construction.

The probe outcomes are compared against each system's declared Table I
row; disagreement is an error (and a test failure).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines import (
    CyclosaAnalytic,
    GooPir,
    Peas,
    PrivateSearchSystem,
    TorSearch,
    TrackMeNot,
    XSearch,
)
from repro.core.sensitivity import SemanticAssessor
from repro.experiments.common import (
    build_workload,
    build_wordnet,
    print_table,
)
from repro.metrics.accuracy import correctness_completeness

#: A single identity is "centralized" if it carries more than this
#: fraction of all engine-side traffic.
CENTRALIZATION_THRESHOLD = 0.5


def build_systems(seed: int = 0, k: int = 3) -> List[PrivateSearchSystem]:
    """The Table I line-up (plus the unprotected reference)."""
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")
    return [
        TorSearch(seed=seed),
        TrackMeNot(seed=seed),
        GooPir(k=k, seed=seed),
        Peas(k=k, seed=seed),
        XSearch(k=k, seed=seed),
        CyclosaAnalytic(semantic, kmax=k, seed=seed),
    ]


def probe_system(system: PrivateSearchSystem, workload,
                 sample_size: int = 150) -> Dict[str, bool]:
    """Measure the four properties on a sample of test queries."""
    records = workload.test.records[:sample_size]
    if hasattr(system, "prime"):
        system.prime(workload.training_texts())

    identity_counts: Dict[str, int] = {}
    saw_user_identity = False
    saw_fake_material = False
    always_accurate = True
    total_observations = 0

    for record in records:
        observations = system.protect(record.user_id, record.text)
        reference = [hit.url for hit in workload.engine.search(record.text)]
        returned = system.results_for(workload.engine, record.text,
                                      observations)
        score = correctness_completeness(reference, returned)
        if not score.perfect:
            always_accurate = False
        for obs in observations:
            total_observations += 1
            identity_counts[obs.identity] = (
                identity_counts.get(obs.identity, 0) + 1)
            if obs.identity == obs.true_user and not obs.is_fake:
                saw_user_identity = True
            if obs.is_fake or obs.real_index is not None:
                saw_fake_material = True

    max_identity_share = (max(identity_counts.values()) / total_observations
                          if total_observations else 0.0)
    return {
        "unlinkability": not saw_user_identity,
        "indistinguishability": saw_fake_material,
        "accuracy": always_accurate,
        "scalability": max_identity_share < CENTRALIZATION_THRESHOLD,
    }


def run(num_users: int = 60, mean_queries: float = 60.0, seed: int = 0,
        sample_size: int = 150) -> Dict[str, Dict[str, Dict[str, bool]]]:
    """Probe every system; return measured vs declared property maps."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    outcome: Dict[str, Dict[str, Dict[str, bool]]] = {}
    for system in build_systems(seed=seed):
        measured = probe_system(system, workload, sample_size=sample_size)
        outcome[system.name] = {
            "measured": measured,
            "declared": dict(system.properties),
        }
    return outcome


PROPERTIES = ("unlinkability", "indistinguishability", "accuracy",
              "scalability")


def main() -> None:
    outcome = run()
    rows = []
    for name, maps in outcome.items():
        measured = maps["measured"]
        declared = maps["declared"]
        cells = []
        for prop in PROPERTIES:
            mark = "X" if measured[prop] else "-"
            agree = "" if measured[prop] == declared[prop] else " (!)"
            cells.append(mark + agree)
        rows.append([name, *cells])
    print_table("Table I — measured property matrix",
                ["System", *PROPERTIES], rows)
    print("\n'X' = property observed behaviourally; '(!)' would mark "
          "disagreement with the paper's Table I.")


if __name__ == "__main__":
    main()
