"""Fig 7: CDF of the actual number of fake queries (adaptive k, kmax = 7).

Paper: "25 % of queries do not need fake queries, and 50 % of them use
less than 3 fake queries. The sharp increase reported for k = 7
corresponds to queries identified as highly sensitive ... only 35 % of
queries require that maximum number of fake queries. In contrast,
X-SEARCH would have generated, for each user query, that maximum
number."

The adaptive pipeline runs on the test split with the full WordNet+LDA
semantic assessor and per-user linkability histories preloaded from the
training split; the distribution of chosen ``k`` is the result.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines import CyclosaAnalytic
from repro.core.adaptive import choose_k
from repro.experiments.common import (
    build_assessors,
    build_workload,
    print_table,
)


def run(num_users: int = 100, mean_queries: float = 100.0,
        kmax: int = 7, seed: int = 0,
        max_queries: Optional[int] = 4000) -> Dict[str, object]:
    """Return the adaptive-k distribution over the test split."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records
    if max_queries is not None:
        records = records[:max_queries]

    semantic = build_assessors(seed=seed)["WordNet + LDA"]
    system = CyclosaAnalytic(semantic, kmax=kmax, adaptive=True, seed=seed)
    for user_id in workload.log.users:
        system.preload_history(user_id,
                               workload.user_training_texts(user_id))

    k_values: List[int] = []
    for record in records:
        report = system._analysis_for(record.user_id).assess(record.text)
        k_values.append(choose_k(report, kmax))
        system._analysis_for(record.user_id).remember(record.text)

    histogram = [0] * (kmax + 1)
    for k in k_values:
        histogram[k] += 1
    total = len(k_values)
    cdf = []
    cumulative = 0
    for k, count in enumerate(histogram):
        cumulative += count
        cdf.append((k, cumulative / total))
    return {
        "k_values": k_values,
        "histogram": histogram,
        "cdf": cdf,
        "fraction_k0": histogram[0] / total,
        "fraction_le3": sum(histogram[: min(4, kmax + 1)]) / total,
        "fraction_kmax": histogram[kmax] / total,
        "mean_k": sum(k_values) / total,
    }


def main() -> None:
    from repro.experiments.plotting import ascii_bars

    outcome = run()
    rows = [[k, f"{fraction * 100:.1f} %"] for k, fraction in outcome["cdf"]]
    print_table("Fig 7 — CDF of the adaptive number of fake queries (kmax=7)",
                ["k", "CDF"], rows)
    histogram = outcome["histogram"]
    total = sum(histogram)
    print()
    print(ascii_bars({f"k={k}": count * 100.0 / total
                      for k, count in enumerate(histogram)},
                     unit=" %", max_value=100.0, width=40))
    print(f"\nk=0 fraction:    {outcome['fraction_k0'] * 100:.1f} %  (paper ≈ 25 %)")
    print(f"k<=3 fraction:   {outcome['fraction_le3'] * 100:.1f} %  (paper ≈ 50 % use <3)")
    print(f"k=kmax fraction: {outcome['fraction_kmax'] * 100:.1f} %  (paper ≈ 35 %)")
    print(f"mean k:          {outcome['mean_k']:.2f}  "
          f"(X-Search would use kmax = 7 for every query)")


if __name__ == "__main__":
    main()
