"""Ablations of CYCLOSA's design choices (called out in DESIGN.md).

Four studies, each isolating one design decision:

1. **Adaptive k vs static k** — privacy (re-identification rate) and
   traffic cost (fakes per real query) of the adaptive rule against
   always-kmax (X-Search style) and always-0 (TOR style).
2. **Fake-query source** — SimAttack rate when CYCLOSA's fakes come
   from real past queries (the design), from an RSS feed (TrackMeNot
   style) and from a random dictionary (GooPIR style), holding
   everything else fixed.
3. **Separate paths vs OR-groups** — accuracy and privacy of sending
   the k+1 queries individually through distinct relays (the design)
   versus OR-aggregating them through one relay.
4. **EPC size vs throughput** — relay service time as the enclave
   working set crosses the 128 MB EPC cliff (why the 1.7 MB enclave
   matters, §V-F).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.baselines import CyclosaAnalytic, EngineObservation, XSearch
from repro.baselines.base import AttackSurface
from repro.baselines.trackmenot import RssFeedSource
from repro.core.enclave import CyclosaEnclave
from repro.core.sensitivity import SemanticAssessor
from repro.datasets.vocabulary import ALL_TOPICS, build_topic_vocabularies
from repro.experiments.common import build_wordnet, build_workload, print_table
from repro.metrics.privacy import reidentification_rate
from repro.net.tls import SecureChannel, _directional_keys
from repro.sgx.enclave import EnclaveHost
from repro.sgx.epc import EnclavePageCache


# ---------------------------------------------------------------------------
# 1. Adaptive vs static k
# ---------------------------------------------------------------------------


def run_adaptive_ablation(num_users: int = 60, mean_queries: float = 60.0,
                          kmax: int = 7, seed: int = 0,
                          max_queries: int = 1500) -> List[Dict[str, float]]:
    """Compare adaptive k against static k ∈ {0, kmax}."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records[:max_queries]
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")

    configurations = [
        ("static k=0", dict(adaptive=False, kmax=0)),
        (f"static k={kmax} (X-Search policy)", dict(adaptive=False, kmax=kmax)),
        (f"adaptive kmax={kmax} (CYCLOSA)", dict(adaptive=True, kmax=kmax)),
    ]
    rows = []
    for label, params in configurations:
        system = CyclosaAnalytic(semantic, seed=seed, **params)
        for user_id in workload.log.users:
            system.preload_history(
                user_id, workload.user_training_texts(user_id))
        observations = []
        for record in records:
            observations.extend(system.protect(record.user_id, record.text))
        rate = reidentification_rate(
            workload.attack, observations, system.attack_surface)
        fakes = sum(1 for obs in observations if obs.is_fake)
        rows.append({
            "configuration": label,
            "reidentification": rate,
            "fakes_per_query": fakes / len(records),
            "total_traffic": len(observations),
        })
    return rows


# ---------------------------------------------------------------------------
# 2. Fake-query source
# ---------------------------------------------------------------------------


class _FakeSourceCyclosa(CyclosaAnalytic):
    """CYCLOSA with a pluggable fake source, for the ablation only."""

    def __init__(self, semantic, source: str, seed: int = 0, **kwargs) -> None:
        super().__init__(semantic, seed=seed, **kwargs)
        self._source = source
        self._source_rng = random.Random(seed + 1)
        self._rss = RssFeedSource(seed=seed)
        vocabularies = build_topic_vocabularies()
        self._dictionary = [term for topic in ALL_TOPICS
                            for term in vocabularies[topic].terms]

    def _draw_fakes(self, count: int, exclude: str) -> List[str]:
        if self._source == "past-queries":
            return self.table.sample(count, self._source_rng, exclude=exclude)
        if self._source == "rss":
            return [self._rss.next_fake() for _ in range(count)]
        if self._source == "dictionary":
            return [" ".join(self._source_rng.choice(self._dictionary)
                             for _ in range(2)) for _ in range(count)]
        raise ValueError(f"unknown fake source {self._source!r}")

    def protect(self, user_id: str, query: str,
                k_override=None) -> List[EngineObservation]:
        k = self.kmax if k_override is None else k_override
        fakes = self._draw_fakes(k, query)
        self.table.add(query)
        relays = self._rng.sample(self._relays, len(fakes) + 1)
        observations = [EngineObservation(
            identity=relays[0], text=query, true_user=user_id)]
        for relay, fake in zip(relays[1:], fakes):
            observations.append(EngineObservation(
                identity=relay, text=fake, true_user=user_id, is_fake=True))
        self._rng.shuffle(observations)
        return observations


def run_fake_source_ablation(num_users: int = 60, mean_queries: float = 60.0,
                             k: int = 7, seed: int = 0,
                             max_queries: int = 1500) -> List[Dict[str, float]]:
    """Re-identification rate per fake-query source."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records[:max_queries]
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")
    rows = []
    for source in ("past-queries", "rss", "dictionary"):
        system = _FakeSourceCyclosa(semantic, source, seed=seed,
                                    adaptive=False, kmax=k)
        system.table.extend(workload.training_texts())
        observations = []
        for record in records:
            observations.extend(system.protect(record.user_id, record.text))
        rate = reidentification_rate(
            workload.attack, observations, AttackSurface.ANONYMOUS_SINGLE)
        # Attacker precision: of the attributions the adversary commits
        # to, how many are right? Realistic fakes (real past queries)
        # trigger confident-but-useless attributions to their *original*
        # users, collapsing precision; RSS/dictionary fakes score low
        # against every profile, so the adversary stays precise. This is
        # the confusion argument of §VIII-A made quantitative.
        attributions = 0
        correct = 0
        for obs in observations:
            attributed = workload.attack.attribute(obs.text)
            if attributed is None:
                continue
            attributions += 1
            if not obs.is_fake and attributed == obs.true_user:
                correct += 1
        precision = correct / attributions if attributions else 1.0
        rows.append({
            "fake_source": source,
            "reidentification": rate,
            "attacker_precision": precision,
            "attributions": attributions,
        })
    return rows


# ---------------------------------------------------------------------------
# 3. Separate paths vs OR-aggregation
# ---------------------------------------------------------------------------


def run_path_ablation(num_users: int = 60, mean_queries: float = 60.0,
                      k: int = 3, seed: int = 0,
                      max_queries: int = 400) -> List[Dict[str, float]]:
    """Individual per-relay queries (CYCLOSA) vs one OR-group (X-Search),
    with the *same* fake source (past queries), measuring both privacy
    and accuracy."""
    from repro.metrics.accuracy import correctness_completeness, mean_accuracy

    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records[:max_queries]
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")

    separate = CyclosaAnalytic(semantic, kmax=k, adaptive=False, seed=seed)
    separate.table.extend(workload.training_texts())
    grouped = XSearch(k=k, seed=seed)
    grouped.prime(workload.training_texts())

    rows = []
    for label, system in (("separate paths (CYCLOSA)", separate),
                          ("OR-group via proxy (X-Search)", grouped)):
        observations = []
        scores = []
        for record in records:
            obs = system.protect(record.user_id, record.text)
            observations.extend(obs)
            reference = [hit.url
                         for hit in workload.engine.search(record.text)]
            returned = system.results_for(workload.engine, record.text, obs)
            scores.append(correctness_completeness(reference, returned))
        accuracy = mean_accuracy(scores)
        rate = reidentification_rate(
            workload.attack, observations, system.attack_surface)
        rows.append({
            "scheme": label,
            "reidentification": rate,
            "correctness": accuracy.correctness,
            "completeness": accuracy.completeness,
        })
    return rows


# ---------------------------------------------------------------------------
# 4. EPC working set vs throughput
# ---------------------------------------------------------------------------


def run_epc_ablation(working_sets_mb: List[int] = (2, 32, 96, 120, 160, 256),
                     epc_mb: int = 128, seed: int = 0) -> List[Dict[str, float]]:
    """Relay service time as enclave memory crosses the EPC limit."""
    rows = []
    for working_set in working_sets_mb:
        rng = random.Random(seed)
        host = EnclaveHost(rng, epc=EnclavePageCache(
            capacity_bytes=epc_mb * 1024 * 1024))
        enclave = host.create_enclave(CyclosaEnclave)
        extra = working_set * 1024 * 1024 - CyclosaEnclave.BASE_FOOTPRINT_BYTES
        if extra > 0:
            enclave.trusted_alloc(extra)
        enclave.set_touched_bytes_per_call(64 * 1024)

        secret = b"a" * 32
        send_c, recv_c = _directional_keys(secret, initiator=True)
        send_r, recv_r = _directional_keys(secret, initiator=False)
        client_end = SecureChannel(peer="relay", send_key=send_c,
                                   recv_key=recv_c)
        relay_end = SecureChannel(peer="client", send_key=send_r,
                                  recv_key=recv_r)
        engine_secret = b"b" * 32
        send_e, recv_e = _directional_keys(engine_secret, initiator=True)
        send_e2, recv_e2 = _directional_keys(engine_secret, initiator=False)
        enclave.install_peer_channel("client", relay_end)
        enclave.install_engine_channel(SecureChannel(
            peer="engine", send_key=send_e, recv_key=recv_e))
        host.meter.take()

        total = 0.0
        samples = 10
        for index in range(samples):
            sealed = client_end.seal({"token": f"t{index}",
                                      "query": f"query {index}", "meta": {}})
            host.meter.take()
            enclave.unwrap_forward("client", sealed)
            total += host.meter.take()
        service = total / samples
        rows.append({
            "working_set_mb": working_set,
            "paging_ratio": host.epc.paging_ratio(),
            "service_time_us": service * 1e6,
            "capacity_req_s": 1.0 / service,
        })
    return rows


def main() -> None:
    rows = run_adaptive_ablation()
    print_table("Ablation 1 — adaptive vs static k",
                ["configuration", "re-id rate", "fakes/query"],
                [[r["configuration"], f"{r['reidentification'] * 100:.1f} %",
                  f"{r['fakes_per_query']:.2f}"] for r in rows])

    rows = run_fake_source_ablation()
    print_table("Ablation 2 — fake-query source (k=7, individual paths)",
                ["fake source", "re-id rate", "attacker precision",
                 "attributions"],
                [[r["fake_source"], f"{r['reidentification'] * 100:.1f} %",
                  f"{r['attacker_precision'] * 100:.1f} %",
                  r["attributions"]] for r in rows])

    rows = run_path_ablation()
    print_table("Ablation 3 — separate paths vs OR-group (same fakes, k=3)",
                ["scheme", "re-id rate", "correctness", "completeness"],
                [[r["scheme"], f"{r['reidentification'] * 100:.1f} %",
                  f"{r['correctness'] * 100:.1f} %",
                  f"{r['completeness'] * 100:.1f} %"] for r in rows])

    rows = run_epc_ablation()
    print_table("Ablation 4 — EPC working set vs relay capacity (EPC=128 MB)",
                ["working set", "paging ratio", "service time", "capacity"],
                [[f"{r['working_set_mb']} MB", f"{r['paging_ratio']:.2f}",
                  f"{r['service_time_us']:.1f} µs",
                  f"{r['capacity_req_s']:.0f} req/s"] for r in rows])


if __name__ == "__main__":
    main()
