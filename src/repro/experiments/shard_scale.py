"""City-scale churn+chaos run on the sharded simulation kernel.

ROADMAP item 1's success criterion: a 10k-node (up to 100k-node)
overlay surviving churn and message chaos, simulated on one machine.
The workload here is the *network-layer* stress mix of the paper's
threat model — §III lets peers "behave arbitrarily by crashing", §VI-b
answers with per-query blacklisting and retries — distilled to the
traffic shape that saturates the event loop: every node periodically
fans a query out to ``fanout`` random peers (CYCLOSA's k-fan-out,
relay-eye view), peers answer unless chaos drops the response, and a
per-query timer classifies the round as ok / partial / failed.
Churned nodes crash mid-run and their pending traffic is dropped, as
on the real overlay.

Everything — peer choice, chaos drops, churn instants — derives from
per-node seeded RNGs, so the run is byte-identical for any shard
count and any worker count (see :mod:`repro.net.shards`); the event
order digest and the per-node stats are the identity witnesses the
``shard`` test suite and ``benchmarks/check_shard_determinism.py``
compare.

CLI::

    python -m repro scale                      # 10k nodes, churn+chaos
    python -m repro scale --nodes 100000 --shards 16 --duration 10
    python -m repro scale --digest --json
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.net.shards import ShardActor
from repro.net.simulator import ShardedSimulator

#: Defaults of the named 10k-node scenario (the ROADMAP item's target;
#: `main()` and `repro scale` run exactly this).
DEFAULT_SCENARIO: Dict[str, Any] = {
    "num_nodes": 10_000,
    "shards": 8,
    "workers": 1,
    "duration": 20.0,
    "seed": 0,
    "fanout": 3,
    "query_interval": 1.0,
    "query_timeout": 0.8,
    "response_drop": 0.05,
    "churn_fraction": 0.10,
    "churn_start": 5.0,
    "churn_window": 10.0,
    "lookahead": 0.05,
    "latency_jitter": 0.10,
}


class ChurnChaosActor(ShardActor):
    """One overlay node of the churn+chaos stress mix.

    Config keys (see :data:`DEFAULT_SCENARIO`): ``num_nodes``,
    ``fanout``, ``query_interval``, ``query_timeout``,
    ``response_drop`` (chaos: the probability a peer silently eats a
    query, like a crashed-after-receive relay), ``churn_fraction`` /
    ``churn_start`` / ``churn_window`` (which nodes crash, and when).
    """

    def on_start(self) -> None:
        config = self.config
        self.queries = 0
        self.ok = 0
        self.partial = 0
        self.failed = 0
        self.replies_sent = 0
        self.chaos_dropped = 0
        self.was_churned = 0
        self._qid = 0
        self._received: Dict[int, int] = {}
        if self.rng.random() < config["churn_fraction"]:
            self.was_churned = 1
            self.set_timer(
                config["churn_start"]
                + self.rng.uniform(0.0, config["churn_window"]), "depart")
        # Spread first queries over one interval so the overlay does
        # not fire in lock-step.
        self.set_timer(self.rng.uniform(0.0, config["query_interval"]),
                       "query")

    def _pick_peer(self) -> str:
        num_nodes = self.config["num_nodes"]
        while True:
            peer = self.rng.randrange(num_nodes)
            address = f"n{peer:06d}"
            if address != self.address:
                return address

    def on_timer(self, tag: str) -> None:
        if tag == "query":
            self._qid += 1
            qid = self._qid
            self._received[qid] = 0
            for _ in range(self.config["fanout"]):
                self.send(self._pick_peer(), "query", qid)
            self.queries += 1
            self.set_timer(self.config["query_timeout"], f"w:{qid}")
            self.set_timer(self.config["query_interval"], "query")
        elif tag.startswith("w:"):
            received = self._received.pop(int(tag[2:]), 0)
            if received >= self.config["fanout"]:
                self.ok += 1
            elif received > 0:
                self.partial += 1
            else:
                self.failed += 1
        elif tag == "depart":
            self.depart()

    def on_message(self, src: str, kind: str, payload: Any) -> None:
        if kind == "query":
            if self.rng.random() < self.config["response_drop"]:
                self.chaos_dropped += 1  # chaos: silently eaten
                return
            self.replies_sent += 1
            self.send(src, "reply", payload)
        elif kind == "reply":
            qid = payload
            if qid in self._received:
                self._received[qid] += 1

    def node_stats(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "ok": self.ok,
            "partial": self.partial,
            "failed": self.failed,
            "replies_sent": self.replies_sent,
            "chaos_dropped": self.chaos_dropped,
            "was_churned": self.was_churned,
        }


def run(num_nodes: int = 10_000, shards: int = 8, workers: int = 1,
        duration: float = 20.0, seed: int = 0,
        digest: bool = False, collect_node_stats: bool = False,
        **scenario: Any) -> Dict[str, Any]:
    """One churn+chaos run; returns the deterministic report dict.

    *scenario* overrides the :data:`DEFAULT_SCENARIO` workload knobs
    (``fanout``, ``query_interval``, ``response_drop``, ...). The
    returned dict is a pure function of the arguments except for
    ``wall_seconds`` / ``events_per_sec``.
    """
    config = dict(DEFAULT_SCENARIO)
    unknown = set(scenario) - set(config)
    if unknown:
        raise TypeError(f"unknown scenario knobs: {sorted(unknown)}")
    config.update(scenario)
    config.update(num_nodes=num_nodes, shards=shards, workers=workers,
                  duration=duration, seed=seed)
    # Node stats are always collected: the aggregate round counters
    # below come from them, and they are cheap (one small dict per
    # node). The full per-node map is only returned when asked for.
    kernel = ShardedSimulator(
        ChurnChaosActor, config, num_nodes=num_nodes, shards=shards,
        workers=workers, seed=seed, lookahead=config["lookahead"],
        latency_jitter=config["latency_jitter"], digest=digest,
        collect_node_stats=True)
    report = kernel.run(until=duration)
    aggregate = report.aggregate
    completed = (aggregate.get("ok", 0) + aggregate.get("partial", 0)
                 + aggregate.get("failed", 0))
    result: Dict[str, Any] = {
        "scenario": {key: config[key] for key in sorted(config)},
        "windows": report.windows,
        "events": report.events,
        "messages_sent": report.messages_sent,
        "cross_shard_messages": report.cross_shard_messages,
        "cross_shard_fraction": (
            report.cross_shard_messages / report.messages_sent
            if report.messages_sent else 0.0),
        "dropped_to_departed": report.dropped_to_departed,
        "departed": report.departed,
        "completed_rounds": int(completed),
        "ok_rounds": int(aggregate.get("ok", 0)),
        "partial_rounds": int(aggregate.get("partial", 0)),
        "failed_rounds": int(aggregate.get("failed", 0)),
        "chaos_dropped": int(aggregate.get("chaos_dropped", 0)),
        "event_order_digest": report.event_order_digest,
        "wall_seconds": report.wall_seconds,
        "events_per_sec": report.events_per_sec,
    }
    if collect_node_stats:
        result["node_stats"] = report.node_stats
    return result


def report_json(report: Dict[str, Any]) -> str:
    """Canonical JSON of the deterministic part of a report (the
    wall-clock numbers are stripped: same seed → same bytes)."""
    stable = {key: value for key, value in report.items()
              if key not in ("wall_seconds", "events_per_sec")}
    return json.dumps(stable, indent=2, sort_keys=True)


def format_report(report: Dict[str, Any]) -> str:
    scenario = report["scenario"]
    lines = [
        f"sharded churn+chaos run — {scenario['num_nodes']} nodes, "
        f"{scenario['shards']} shard(s), {scenario['workers']} worker(s), "
        f"{scenario['duration']}s simulated (seed {scenario['seed']})",
        f"  events executed          : {report['events']:>12,}",
        f"  events/sec (wall)        : {report['events_per_sec']:>12,.0f}",
        f"  barrier windows          : {report['windows']:>12,}",
        f"  messages (cross-shard)   : {report['messages_sent']:>12,} "
        f"({report['cross_shard_fraction'] * 100:.1f}% cross)",
        f"  query rounds completed   : {report['completed_rounds']:>12,}",
        f"    ok / partial / failed  : {report['ok_rounds']:,} / "
        f"{report['partial_rounds']:,} / {report['failed_rounds']:,}",
        f"  chaos-eaten queries      : {report['chaos_dropped']:>12,}",
        f"  churned nodes            : {report['departed']:>12,}",
        f"  msgs dropped to departed : {report['dropped_to_departed']:>12,}",
    ]
    if report["event_order_digest"]:
        lines.append(
            f"  event order digest       : "
            f"{report['event_order_digest'][:32]}…")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> None:
    """Run the named 10k-node churn+chaos scenario (ROADMAP item 1)."""
    report = run()
    print(format_report(report))


if __name__ == "__main__":
    main()
