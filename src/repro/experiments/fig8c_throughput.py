"""Fig 8c: throughput vs latency under saturation.

Paper: requests are submitted to a single CYCLOSA relay (or the
X-Search proxy) at increasing constant rates, measuring the time to
return a reply *from the next hop* — the engine is not contacted.
CYCLOSA sustains 40 000 req/s with a 0.23 s median response; X-Search
"starts straggling" at 30 000 req/s (the paper annotates a 5.3 s point
past the knee).

Method here: the per-request *service time* is measured by running one
real request through the system's enclave pipeline and draining the
SGX cost meter (gate crossings + EPC traffic + in-enclave crypto).
Arrivals at each offered rate then feed a FIFO single-server queue
(Lindley recursion); the client-observed latency is the network round
trip to the serving node plus queueing sojourn. The knee position is
therefore a *measured* consequence of the enclave cost model, not an
input.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.config import CyclosaConfig
from repro.core.enclave import CyclosaEnclave
from repro.baselines.xsearch import XSearchEnclave
from repro.experiments.common import print_table
from repro.metrics.latencystats import percentile
from repro.net.latency import LogNormalLatency
from repro.net.tls import SecureChannel, _directional_keys
from repro.sgx.enclave import EnclaveHost

DEFAULT_RATES = (1000, 2500, 5000, 10000, 20000, 30000, 40000)


def _paired_channels(peer_a: str, peer_b: str, secret: bytes
                     ) -> Tuple[SecureChannel, SecureChannel]:
    """Two ends of one established channel (handshake elided)."""
    send_a, recv_a = _directional_keys(secret, initiator=True)
    send_b, recv_b = _directional_keys(secret, initiator=False)
    return (SecureChannel(peer=peer_b, send_key=send_a, recv_key=recv_a),
            SecureChannel(peer=peer_a, send_key=send_b, recv_key=recv_b))


def measure_cyclosa_service_time(seed: int = 0, samples: int = 20) -> float:
    """Mean enclave cost of one relay forward+response cycle."""
    rng = random.Random(seed)
    host = EnclaveHost(rng)
    enclave = host.create_enclave(CyclosaEnclave)
    client_end, relay_end = _paired_channels("client", "relay", b"s" * 32)
    engine_relay, engine_end = _paired_channels("relay", "engine", b"e" * 32)
    enclave.install_peer_channel("client", relay_end)
    enclave.install_engine_channel(engine_relay)
    host.meter.take()
    total = 0.0
    for index in range(samples):
        sealed = client_end.seal({
            "token": f"t{index}", "query": f"benchmark query {index}",
            "meta": {}})
        host.meter.take()  # exclude the harness's own sealing
        handle, _for_engine = enclave.unwrap_forward("client", sealed)
        total += host.meter.take()
        # Engine reply arrives pre-sealed; the relay only unseals/reseals.
        reply = engine_end.seal({"status": "ok", "hits": [
            {"url": f"u{i}", "doc_id": i, "score": 0.5} for i in range(10)]})
        host.meter.take()  # exclude the harness's own sealing
        enclave.wrap_relay_response(handle, reply)
        total += host.meter.take()
    return total / samples


def measure_xsearch_service_time(seed: int = 0, samples: int = 20,
                                 k: int = 3) -> float:
    """Mean enclave cost of one proxy obfuscate+filter cycle."""
    rng = random.Random(seed)
    host = EnclaveHost(rng)
    enclave = host.create_enclave(XSearchEnclave, k=k)
    client_end, proxy_end = _paired_channels("client", "proxy", b"x" * 32)
    enclave.install_client_channel("client", proxy_end)
    # Prime the table so obfuscation has fakes to draw.
    table = enclave._trusted["table"]
    table.extend([f"past query {i} terms" for i in range(200)])
    host.meter.take()
    total = 0.0
    for index in range(samples):
        sealed = client_end.seal({"query": f"benchmark query {index}",
                                  "meta": {}})
        host.meter.take()  # exclude the harness's own sealing
        obfuscated = enclave.obfuscate("client", sealed)
        total += host.meter.take()
        hits = [{"url": f"u{i}", "doc_id": i, "score": 0.5,
                 "title": ["benchmark", "query"], "snippet": ["query"]}
                for i in range(20)]
        enclave.filter_and_wrap("client", obfuscated["query"], hits)
        total += host.meter.take()
    return total / samples


def simulate_saturation(service_time: float, rate: float,
                        rtt_model: LogNormalLatency, seed: int = 0,
                        duration: float = 2.0,
                        servers: int = 1) -> Dict[str, float]:
    """Open-loop saturation: Poisson arrivals at *rate* for *duration*
    seconds into a FIFO multi-server station (*servers* = the enclave's
    TCS count); Lindley-style recursion on per-server free times."""
    if servers < 1:
        raise ValueError("servers must be >= 1")
    rng = random.Random(seed)
    latencies: List[float] = []
    arrival = 0.0
    free_at = [0.0] * servers  # when each enclave thread frees up
    while arrival < duration:
        arrival += rng.expovariate(rate)
        # FIFO dispatch to the earliest-free thread.
        index = min(range(servers), key=lambda i: free_at[i])
        start = max(arrival, free_at[index])
        free_at[index] = start + service_time
        sojourn = free_at[index] - arrival
        latencies.append(rtt_model.sample(rng) + sojourn)
    return {
        "rate": rate,
        "median": percentile(latencies, 0.5),
        "p90": percentile(latencies, 0.9),
        "capacity": servers / service_time,
        "servers": servers,
    }


def run(rates: Sequence[float] = DEFAULT_RATES, seed: int = 0,
        duration: float = 2.0) -> Dict[str, List[Dict[str, float]]]:
    """The Fig 8c series: median latency per offered rate, per system."""
    config = CyclosaConfig()
    cyclosa_service = measure_cyclosa_service_time(seed=seed)
    xsearch_service = measure_xsearch_service_time(seed=seed)
    # CYCLOSA's "next hop" is a residential peer; X-Search's is the
    # datacenter proxy.
    cyclosa_rtt = LogNormalLatency(median=2 * config.peer_link_median,
                                   sigma=0.3)
    xsearch_rtt = LogNormalLatency(median=2 * 0.035, sigma=0.3)
    results: Dict[str, List[Dict[str, float]]] = {"CYCLOSA": [], "X-Search": []}
    for rate in rates:
        results["CYCLOSA"].append(simulate_saturation(
            cyclosa_service, rate, cyclosa_rtt, seed=seed, duration=duration))
        results["X-Search"].append(simulate_saturation(
            xsearch_service, rate, xsearch_rtt, seed=seed, duration=duration))
    return results


def run_tcs_scaling(tcs_counts=(1, 2, 4), rate: float = 120000,
                    seed: int = 0,
                    duration: float = 1.0) -> List[Dict[str, float]]:
    """Ablation: relay capacity vs the enclave's TCS (thread) count.

    Real SGX enclaves declare several TCS; the relay's throughput
    ceiling scales with them until EPC or memory bandwidth binds. The
    offered *rate* is set above single-thread capacity so the scaling
    is visible in both capacity and overload latency.
    """
    config = CyclosaConfig()
    service = measure_cyclosa_service_time(seed=seed)
    rtt = LogNormalLatency(median=2 * config.peer_link_median, sigma=0.3)
    return [
        simulate_saturation(service, rate, rtt, seed=seed,
                            duration=duration, servers=tcs)
        for tcs in tcs_counts
    ]


def main() -> None:
    results = run()
    rows = []
    for name, series in results.items():
        capacity = series[0]["capacity"]
        for point in series:
            rows.append([name, f"{point['rate']:.0f}",
                         f"{point['median']:.3f} s", f"{point['p90']:.3f} s"])
        rows.append([name, "capacity", f"{capacity:.0f} req/s", ""])
    print_table("Fig 8c — throughput vs latency (no engine dispatch)",
                ["System", "offered req/s", "median latency", "p90"], rows)
    print("\nPaper: CYCLOSA sustains 40 000 req/s at 0.23 s median; "
          "X-Search straggles from 30 000 req/s (5.3 s point).")


if __name__ == "__main__":
    main()
