"""Fig 8b: impact of k on CYCLOSA's observed latency.

Paper: sweeping k ∈ {0, 1, 3, 5, 7}, the median grows from ≈0.6 s to
1.226 s at k = 7, with the worst case still under ≈1.5 s. The growth is
client-side: each additional fake is one more record to seal in the
enclave, marshal through js-ctypes and push up the consumer uplink
before (on average half the time) the real query's record goes out.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.client import CyclosaNetwork
from repro.experiments.common import build_workload, print_table
from repro.metrics.latencystats import cdf_points, summarize

PAPER_NOTES = "paper: median(k=3) = 0.876 s, median(k=7) = 1.226 s, worst < 1.5 s"


def run(k_values: Sequence[int] = (0, 1, 3, 5, 7),
        num_queries: int = 100, seed: int = 0,
        num_nodes: int = 20, num_users: int = 60) -> Dict[int, List[float]]:
    """Latency samples per k, from one deployment reused across sweeps."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=60.0, seed=seed)
    queries = [record.text for record in workload.test.records[:num_queries]]
    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed)
    user = deployment.node(0)
    samples: Dict[int, List[float]] = {}
    for k in k_values:
        latencies = []
        for index in range(num_queries):
            result = user.search(queries[index % len(queries)], k_override=k)
            if result.ok:
                latencies.append(result.latency)
        samples[k] = latencies
    return samples


def main() -> None:
    from repro.experiments.plotting import ascii_cdf

    samples = run()
    rows = []
    for k, latencies in samples.items():
        summary = summarize(latencies)
        rows.append([k, f"{summary.median:.3f} s", f"{summary.p90:.3f} s",
                     f"{summary.maximum:.3f} s"])
    print_table("Fig 8b — impact of k on CYCLOSA latency",
                ["k", "median", "p90", "max"], rows)
    print()
    print(ascii_cdf({f"k={k}": latencies
                     for k, latencies in samples.items()}))
    print(f"\n({PAPER_NOTES})")
    for k, latencies in samples.items():
        print(f"k={k} CDF:",
              "  ".join(f"{q:.2f}:{v:.2f}s" for q, v in cdf_points(latencies)))


if __name__ == "__main__":
    main()
