"""Fig 8d: query protection vs. users blocked by the search engine.

Paper: the 100 most active AOL users submit ≈31.23 queries/hour each;
protecting them with X-Search at k = 3 funnels ≈10 500 requests/hour
(real + fake) through the proxy's *single* engine-facing identity,
which blows through the engine's per-identity rate limit — requests
get rejected (captcha). CYCLOSA spreads the same load across all
participating nodes, ≈94 requests/hour per node for k = 3, far below
the limit, so everything is admitted.

The simulation replays 90 minutes of Poisson query traffic from the
100 most active synthetic users through both systems against the
engine's :class:`~repro.searchengine.ratelimit.RateLimiter`
(limit 1 000 requests/hour/identity, the paper's "Limit" line).
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.experiments.common import print_table
from repro.searchengine.ratelimit import RateLimiter, RateLimitVerdict

ENGINE_LIMIT_PER_HOUR = 1000
QUERIES_PER_HOUR_PER_USER = 31.23


def run(num_users: int = 100, k: int = 3,
        duration_minutes: float = 90.0,
        num_cyclosa_nodes: int = 100,
        num_xsearch_proxies: int = 1,
        bucket_minutes: float = 10.0,
        seed: int = 0) -> Dict[str, object]:
    """Replay the workload through both systems.

    Returns per-time-bucket series: X-Search admitted/rejected at the
    proxy identities, and the mean/max per-node hourly rate for CYCLOSA.

    *num_xsearch_proxies* quantifies the paper's §II-A4 remark that
    PEAS/X-Search "discuss the possibility to move to distributed
    deployments": even a handful of proxies divides a five-figure
    hourly load into shares that still trip the per-identity limit,
    and every added proxy is provisioned infrastructure — unlike
    CYCLOSA's client machines.
    """
    rng = random.Random(seed)
    duration = duration_minutes * 60.0
    per_user_rate = QUERIES_PER_HOUR_PER_USER / 3600.0

    # One merged Poisson arrival stream for all users.
    arrivals: List[float] = []
    for _ in range(num_users):
        t = rng.expovariate(per_user_rate)
        while t < duration:
            arrivals.append(t)
            t += rng.expovariate(per_user_rate)
    arrivals.sort()

    num_buckets = int(duration_minutes / bucket_minutes)
    xsearch_admitted = [0] * num_buckets
    xsearch_rejected = [0] * num_buckets
    cyclosa_counts = [[0] * num_cyclosa_nodes for _ in range(num_buckets)]

    xsearch_limiter = RateLimiter(max_per_window=ENGINE_LIMIT_PER_HOUR)
    cyclosa_limiter = RateLimiter(max_per_window=ENGINE_LIMIT_PER_HOUR)
    cyclosa_rejected_total = 0

    for arrival in arrivals:
        bucket = min(num_buckets - 1, int(arrival / 60.0 / bucket_minutes))
        # Each user query produces k+1 engine-side queries in both systems.
        for _ in range(k + 1):
            # X-Search: everything leaves from a proxy identity
            # (round-robin when a distributed deployment is modelled).
            proxy = rng.randrange(num_xsearch_proxies)
            verdict = xsearch_limiter.check(f"xsearch-proxy-{proxy}",
                                            arrival)
            if verdict is RateLimitVerdict.ADMITTED:
                xsearch_admitted[bucket] += 1
            else:
                xsearch_rejected[bucket] += 1
            # CYCLOSA: a random relay carries each query.
            node = rng.randrange(num_cyclosa_nodes)
            verdict = cyclosa_limiter.check(f"cyclosa-node-{node}", arrival)
            if verdict is RateLimitVerdict.ADMITTED:
                cyclosa_counts[bucket][node] += 1
            else:
                cyclosa_rejected_total += 1

    scale = 60.0 / bucket_minutes  # bucket counts → hourly rates
    series = []
    for bucket in range(num_buckets):
        node_rates = [count * scale for count in cyclosa_counts[bucket]]
        series.append({
            "minute": (bucket + 1) * bucket_minutes,
            "xsearch_admitted_per_h": xsearch_admitted[bucket] * scale,
            "xsearch_rejected_per_h": xsearch_rejected[bucket] * scale,
            "cyclosa_mean_per_node_h": sum(node_rates) / len(node_rates),
            "cyclosa_max_per_node_h": max(node_rates),
        })
    return {
        "series": series,
        "limit_per_hour": ENGINE_LIMIT_PER_HOUR,
        "cyclosa_rejected_total": cyclosa_rejected_total,
        "xsearch_rejected_total": sum(xsearch_rejected),
        "offered_per_hour": num_users * QUERIES_PER_HOUR_PER_USER * (k + 1),
    }


def main() -> None:
    outcome = run()
    rows = []
    for point in outcome["series"]:
        rows.append([
            f"{point['minute']:.0f}",
            f"{point['xsearch_admitted_per_h']:.0f}",
            f"{point['xsearch_rejected_per_h']:.0f}",
            f"{point['cyclosa_mean_per_node_h']:.1f}",
            f"{point['cyclosa_max_per_node_h']:.0f}",
        ])
    print_table(
        "Fig 8d — engine-side load vs rate limit "
        f"(limit {outcome['limit_per_hour']}/h per identity)",
        ["minute", "X-S adm./h", "X-S rej./h",
         "Cycl. mean/node/h", "Cycl. max/node/h"], rows)
    print(f"\nOffered load: {outcome['offered_per_hour']:.0f} engine "
          f"queries/hour (paper: ≈10 500 for k=3).")
    print(f"X-Search rejected in total: {outcome['xsearch_rejected_total']} "
          f"(proxy is blocked); CYCLOSA rejected: "
          f"{outcome['cyclosa_rejected_total']} (all nodes stay under the limit).")


if __name__ == "__main__":
    main()
