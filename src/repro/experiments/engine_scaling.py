"""Engine tier scale-out inside a full CYCLOSA deployment.

The perf harness (`repro perf`, section ``engine_scaling``) measures
the tier's raw wall-clock throughput with the relay overlay stripped
away. This experiment asks the complementary, deployment-level
question: with real protected searches — fake queries, relays, sealed
channels, the works — what does sharding the engine change for the
*user* and for the *tier*?

Per replica count it reports:

- correctness: every result page must byte-equal the single-replica
  deployment's (the sharding invariant, end to end);
- simulated median end-to-end latency (scatter-gather adds interlink
  hops; the batch window adds admission delay — the experiment makes
  that cost visible rather than pretending scale-out is free);
- load spread: queries served per replica (crc32 identity routing);
- cache traffic: response-cache hit rate across the tier.

Run as a module for the table::

    PYTHONPATH=src python -m repro.experiments.engine_scaling
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.experiments.common import print_table
from repro.metrics.latencystats import percentile

#: Queries driven through every deployment (repetitive, cache-friendly
#: — like the AOL workload the attack experiments replay).
DEFAULT_QUERIES = (
    "symptoms cancer treatment",
    "cheap flights paris",
    "symptoms cancer treatment",
    "football league scores",
    "cheap flights paris",
    "symptoms cancer treatment",
)


def run(num_nodes: int = 12, replica_counts=(1, 2, 4),
        cache_size: int = 256, batch_window: float = 0.05,
        seed: int = 0, queries=DEFAULT_QUERIES) -> List[Dict[str, Any]]:
    """One row per replica count; row 0 (one replica, no cache) is the
    reference the others must byte-match."""
    rows: List[Dict[str, Any]] = []
    reference_pages = None
    for replicas in replica_counts:
        config = CyclosaConfig(
            engine_replicas=replicas,
            engine_cache_size=cache_size if replicas > 1 else None,
            engine_batch_window=batch_window if replicas > 1 else 0.0)
        deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                           config=config)
        pages, latencies = [], []
        for index, query in enumerate(queries):
            result = deployment.node(
                index % len(deployment.nodes)).search(query)
            pages.append(result.hits)
            latencies.append(result.latency)
        if reference_pages is None:
            reference_pages = pages
        served = [len(node.tap.entries)
                  for node in deployment.engine_nodes]
        lookups = hits = 0
        for node in deployment.engine_nodes:
            if node.response_cache is not None:
                stats = node.response_cache.stats()
                hits += stats["hits"]
                lookups += stats["hits"] + stats["misses"]
        rows.append({
            "replicas": replicas,
            "pages_identical": pages == reference_pages,
            "median_latency": percentile(latencies, 0.5),
            "served_per_replica": served,
            "cache_hit_rate": (hits / lookups) if lookups else None,
        })
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Engine scale-out — protected searches over the replica tier",
        ["replicas", "pages identical", "p50 latency", "served/replica",
         "cache hits"],
        [[r["replicas"],
          "yes" if r["pages_identical"] else "NO",
          f"{r['median_latency']:.2f} s",
          "/".join(str(count) for count in r["served_per_replica"]),
          (f"{r['cache_hit_rate'] * 100:.0f} %"
           if r["cache_hit_rate"] is not None else "-")] for r in rows])
    print("\nSharded replicas must return byte-identical pages at any "
          "count (repro perf pins the same invariant plus the "
          "wall-clock speedup; docs/performance.md, 'Engine tier').")


if __name__ == "__main__":
    main()
