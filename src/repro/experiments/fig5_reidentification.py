"""Fig 5: robustness against the SimAttack re-identification attack.

Paper (k = 7): TOR ≈ 36 %, TrackMeNot ≈ 45 %, GooPIR ≈ 50 %,
PEAS ≈ 8 %, X-Search ≈ 6 %, CYCLOSA ≈ 4 %. Lower is better.

Each system processes the testing split in timestamp order; the
resulting engine-side observations are attacked with the SimAttack
variant matching the system's protection model (§VIII-A). CYCLOSA runs
with fixed k = 7 for comparability (the figure's caption); the adaptive
variant is reported by the ablation experiment.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines import (
    CyclosaAnalytic,
    GooPir,
    Peas,
    TorSearch,
    TrackMeNot,
    XSearch,
)
from repro.core.sensitivity import SemanticAssessor
from repro.experiments.common import (
    build_wordnet,
    build_workload,
    print_table,
)
from repro.metrics.privacy import reidentification_rate

PAPER_RATES = {
    "TOR": 0.36,
    "TrackMeNot": 0.45,
    "GooPIR": 0.50,
    "PEAS": 0.08,
    "X-Search": 0.06,
    "CYCLOSA": 0.04,
}


def run(num_users: int = 100, mean_queries: float = 100.0,
        k: int = 7, seed: int = 0,
        max_queries: Optional[int] = None) -> Dict[str, float]:
    """Compute the re-identification rate for every system.

    Returns ``{system name: rate}``. *max_queries* truncates the
    testing split for quick runs (None = the full split, as the paper).
    """
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records
    if max_queries is not None:
        records = records[:max_queries]

    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")
    systems = [
        TorSearch(seed=seed),
        TrackMeNot(seed=seed),
        GooPir(k=k, seed=seed),
        Peas(k=k, seed=seed),
        XSearch(k=k, seed=seed),
        CyclosaAnalytic(semantic, kmax=k, adaptive=False, seed=seed),
    ]
    rates: Dict[str, float] = {}
    for system in systems:
        if hasattr(system, "prime"):
            system.prime(workload.training_texts())
        observations = []
        for record in records:
            observations.extend(system.protect(record.user_id, record.text))
        rates[system.name] = reidentification_rate(
            workload.attack, observations, system.attack_surface)
    return rates


def run_k_sweep(k_values=(0, 1, 3, 5, 7), num_users: int = 60,
                mean_queries: float = 60.0, seed: int = 0,
                max_queries: int = 1200) -> Dict[int, float]:
    """CYCLOSA's re-identification rate as k grows.

    Validates two statements from §VIII-A: the TOR bar "also represents
    the re-identification rate of PEAS, X-SEARCH and CYCLOSA with
    k = 0", and each added fake dilutes the attacker's yield roughly as
    1/(k+1) (every arriving query is one more haystack straw).
    """
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    records = workload.test.records[:max_queries]
    semantic = SemanticAssessor.from_resources(
        wordnet=build_wordnet(seed=seed), mode="wordnet")
    rates: Dict[int, float] = {}
    for k in k_values:
        system = CyclosaAnalytic(semantic, kmax=k, adaptive=False,
                                 seed=seed)
        system.table.extend(workload.training_texts())
        observations = []
        for record in records:
            observations.extend(system.protect(record.user_id, record.text))
        rates[k] = reidentification_rate(
            workload.attack, observations, system.attack_surface)
    return rates


def main() -> None:
    from repro.experiments.plotting import ascii_bars

    rates = run(max_queries=3000)
    rows = [
        [name, f"{rate * 100:.1f} %", f"{PAPER_RATES[name] * 100:.0f} %"]
        for name, rate in rates.items()
    ]
    print_table("Fig 5 — re-identification rate (lower = better privacy)",
                ["System", "Measured", "Paper"], rows)
    print()
    print(ascii_bars({name: rate * 100 for name, rate in rates.items()},
                     unit=" %", max_value=60.0))

    sweep = run_k_sweep()
    print("\nCYCLOSA rate vs k (paper: k=0 equals the TOR bar; each "
          "fake dilutes ~1/(k+1)):")
    print("  " + "  ".join(f"k={k}: {rate * 100:.1f} %"
                           for k, rate in sweep.items()))


if __name__ == "__main__":
    main()
