"""Traffic-analysis study: the §IV size-leak claim, quantified.

"An adversary can infer whether an outgoing message is a real query or
an obfuscated one from the request size (e.g., messages containing
obfuscated queries using the OR operator are larger than messages
containing the real query)."

For each system we collect the wire sizes of the messages its
client/proxy emits for real queries and for protected (fake/obfuscated)
material, then compute the best size-threshold adversary's advantage:

- **X-Search** (proxy → engine): plain engine requests vs OR-groups —
  the group is k+1 queries long, so sizes separate almost perfectly.
- **TrackMeNot** (user → engine): real vs RSS fakes — some separation
  (fake headline shapes differ from user queries).
- **CYCLOSA** (client → relay): sealed forward records are padded to a
  fixed envelope — real and fake records are byte-identical in size
  and the adversary's advantage collapses to ~0.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.baselines.base import or_aggregate
from repro.baselines.trackmenot import RssFeedSource
from repro.core.enclave import CyclosaEnclave
from repro.experiments.common import build_workload, print_table
from repro.metrics.traffic import size_advantage
from repro.net.tls import SecureChannel, _directional_keys
from repro.sgx.enclave import EnclaveHost


def _cyclosa_record_sizes(queries: List[str], k: int,
                          seed: int) -> Dict[str, List[int]]:
    """Wire sizes of sealed CYCLOSA forward records, real vs fake."""
    rng = random.Random(seed)
    host = EnclaveHost(rng)
    enclave = host.create_enclave(CyclosaEnclave, table_capacity=5000)
    relays = [f"r{i}" for i in range(k + 1)]
    ends = {}
    for relay in relays:
        send_a, recv_a = _directional_keys(
            relay.encode().ljust(32, b"."), initiator=True)
        send_b, recv_b = _directional_keys(
            relay.encode().ljust(32, b"."), initiator=False)
        enclave.install_peer_channel(relay, SecureChannel(
            peer=relay, send_key=send_a, recv_key=recv_a))
        ends[relay] = SecureChannel(peer="me", send_key=send_b,
                                    recv_key=recv_b)
    enclave.seed_table(queries[: len(queries) // 2])

    sizes = {"real": [], "fake": []}
    for query in queries[len(queries) // 2:]:
        batch = enclave.build_protected_batch(query, k, relays)
        for relay, sealed in batch:
            record = ends[relay].open(sealed)
            kind = "fake" if record["meta"]["is_fake"] else "real"
            sizes[kind].append(len(sealed))
    return sizes


def _xsearch_request_sizes(queries: List[str], k: int,
                           seed: int) -> Dict[str, List[int]]:
    """Engine-request sizes: plain queries vs OR-groups."""
    rng = random.Random(seed)
    pool = list(queries)
    sizes = {"real": [], "fake": []}
    for query in queries:
        sizes["real"].append(len(query.encode()))
        fakes = rng.sample(pool, k)
        group, _index = or_aggregate(query, fakes, rng)
        sizes["fake"].append(len(group.encode()))  # the obfuscated request
    return sizes


def _trackmenot_request_sizes(queries: List[str],
                              seed: int) -> Dict[str, List[int]]:
    feed = RssFeedSource(seed=seed)
    return {
        "real": [len(q.encode()) for q in queries],
        "fake": [len(feed.next_fake().encode()) for _ in queries],
    }


def run(num_users: int = 40, mean_queries: float = 50.0, k: int = 3,
        seed: int = 0, max_queries: int = 400) -> List[Dict[str, float]]:
    """Size-threshold adversary advantage per system."""
    workload = build_workload(num_users=num_users,
                              mean_queries_per_user=mean_queries, seed=seed)
    queries = [r.text for r in workload.test.records[:max_queries]]
    rows = []
    for name, sizes in (
        ("CYCLOSA (sealed forwards)",
         _cyclosa_record_sizes(queries, k, seed)),
        ("TrackMeNot (plain requests)",
         _trackmenot_request_sizes(queries, seed)),
        ("X-Search (plain vs OR-group)",
         _xsearch_request_sizes(queries, k, seed)),
    ):
        advantage, threshold = size_advantage(sizes["real"], sizes["fake"])
        rows.append({
            "system": name,
            "advantage": advantage,
            "threshold": threshold,
            "real_sizes": len(set(sizes["real"])),
            "fake_sizes": len(set(sizes["fake"])),
        })
    return rows


def main() -> None:
    rows = run()
    print_table(
        "Traffic analysis — size-threshold adversary advantage (§IV)",
        ["system", "advantage", "best threshold", "distinct real sizes"],
        [[r["system"], f"{r['advantage'] * 100:.1f} %",
          f"{r['threshold']} B", r["real_sizes"]] for r in rows])
    print("\n0 % = sizes carry no signal (CYCLOSA's padded envelope);")
    print("~100 % = one glance at the size reveals obfuscation (OR groups).")


if __name__ == "__main__":
    main()
