"""Robustness under churn and Byzantine relays (§III, §VI-b).

The paper's adversary model lets remote peers "behave arbitrarily by
crashing, being subject to bugs or being under the control of malicious
adversaries", and §VI-b's mitigation is blacklisting unresponsive peers
and retrying. This experiment quantifies that story:

- a fraction of the overlay is *Byzantine*: those nodes complete
  attestation honestly (they run a genuine enclave) but their hosts
  drop every forward request (the DoS behaviour §III explicitly allows);
- additionally, a fraction of honest nodes *churns out* mid-run;
- clients keep issuing protected queries; we measure the query success
  rate, the retry volume, and the blacklisting activity.

Beyond the original drop-everything Byzantine relay, the experiment
now also sweeps the :mod:`repro.faults` fault matrix (message drop /
delay / duplication / corruption, crash-after-receive silence,
attestation denial, engine rate-limit storms) and reports the same
success/retry/latency story per fault cell — see
``docs/robustness.md``.

The headline: success degrades gracefully and recovery comes from the
timeout → blacklist → re-dispatch path, not from any trusted component.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.client import CyclosaNetwork
from repro.core.config import CyclosaConfig
from repro.core.node import CyclosaNode
from repro.experiments.common import print_table


class ByzantineRelayNode(CyclosaNode):
    """A node whose *host* silently drops every forward request.

    Attestation still succeeds — the enclave is genuine — so honest
    peers will select it as a relay until its silence gets it
    blacklisted. This is exactly the §III threat ("malicious clients
    might not initialise the enclave, invoke calls into enclaves or
    drop all queries") and the §VI-b mitigation target.
    """

    def _handle_forward(self, ctx) -> None:  # noqa: D401 - drop silently
        self.stats.relayed += 0  # observable no-op


def build_mixed_deployment(num_nodes: int, byzantine_fraction: float,
                           seed: int,
                           config: CyclosaConfig) -> CyclosaNetwork:
    """A deployment where the first ``byzantine_fraction`` of nodes
    (excluding node 0, the measuring client) are Byzantine."""
    deployment = CyclosaNetwork.create(num_nodes=num_nodes, seed=seed,
                                       config=config, warmup_seconds=0)
    num_byzantine = int(byzantine_fraction * num_nodes)
    for node in deployment.nodes[1:1 + num_byzantine]:
        # Swap in the Byzantine forward handler (same enclave, same
        # attestation — only the untrusted host behaviour changes).
        node._handle_forward = (
            ByzantineRelayNode._handle_forward.__get__(node))
    deployment.simulator.run(until=40.0)
    return deployment


def run(num_nodes: int = 24, queries_per_setting: int = 40,
        byzantine_fractions=(0.0, 0.25, 0.5),
        churn_fraction: float = 0.0,
        k: int = 3, seed: int = 0) -> List[Dict[str, float]]:
    """Success rate and recovery effort per Byzantine fraction."""
    config = CyclosaConfig(relay_timeout=2.0, max_retries=4)
    rows: List[Dict[str, float]] = []
    for fraction in byzantine_fractions:
        deployment = build_mixed_deployment(num_nodes, fraction, seed,
                                            config)
        if churn_fraction > 0:
            victims = deployment.nodes[-int(churn_fraction * num_nodes):]
            for victim in victims:
                victim.pss.stop()
                deployment.network.unregister(victim.address)
        client = deployment.node(0)
        outcomes = []
        for index in range(queries_per_setting):
            outcomes.append(client.search(
                f"robustness probe query {index}", k_override=k,
                max_wait=240.0))
        node = deployment.nodes[0]
        successes = sum(1 for r in outcomes if r.ok)
        rows.append({
            "byzantine_fraction": fraction,
            "success_rate": successes / len(outcomes),
            "retries": node.stats.retries,
            "blacklisted": node.stats.blacklisted_peers,
            "median_latency": sorted(
                r.latency for r in outcomes)[len(outcomes) // 2],
        })
    return rows


def run_fault_matrix(num_nodes: int = 12, queries_per_cell: int = 6,
                     seed: int = 0,
                     cells=None) -> List[Dict[str, float]]:
    """§VI-b under the injected fault matrix (repro.faults).

    Each cell runs on a fresh deployment with one seeded fault plan
    installed; the rows carry success rate, terminal statuses, retry
    volume and the zero-hung-searches / relay-disjointness invariants.
    """
    from repro.faults import chaos

    report = chaos.run_matrix(
        chaos.matrix_cells(cells), num_nodes=num_nodes,
        num_queries=queries_per_cell, seed=seed)
    return report["cells"]


def main() -> None:
    rows = run()
    print_table(
        "Robustness — Byzantine relays vs query success (k=3)",
        ["byzantine", "success", "retries", "blacklisted", "median lat"],
        [[f"{r['byzantine_fraction'] * 100:.0f} %",
          f"{r['success_rate'] * 100:.0f} %",
          r["retries"], r["blacklisted"],
          f"{r['median_latency']:.2f} s"] for r in rows])
    print("\nByzantine relays pass attestation but drop all forwards; "
          "recovery is timeout -> blacklist -> retry (§VI-b).")

    fault_rows = run_fault_matrix()
    print_table(
        "Robustness — injected fault matrix (repro.faults, k=2)",
        ["cell", "success", "statuses", "retries", "hung", "p50 lat"],
        [[r["cell"],
          f"{r['success_rate'] * 100:.0f} %",
          ",".join(f"{s}:{c}" for s, c in r["statuses"].items()),
          r["retries"], r["hung_searches"],
          f"{r['latency_seconds']['p50']:.2f} s"] for r in fault_rows])
    print("\nEvery cell must keep zero hung searches and a real-query "
          "relay set disjoint from the fake legs (repro chaos / "
          "benchmarks/check_chaos.py gate the same invariants).")


if __name__ == "__main__":
    main()
