"""Latent Dirichlet Allocation via collapsed Gibbs sampling.

The paper trains an LDA model (Mallet, 200 topics, 2 M documents) on a
sensitive-subject corpus and declares a query sensitive when any of its
terms appears in a learned topic (§V-F). This module implements the same
generative model from scratch:

- Collapsed Gibbs sampler (Griffiths & Steyvers 2004): topic assignment
  ``z_i`` for each token is resampled from
  ``p(z_i = k | ·) ∝ (n_dk + α) · (n_kw + β) / (n_k + Vβ)``.
- Count matrices are kept in numpy; the sampler is vectorised per token
  over topics, which is fast enough for the corpus sizes the synthetic
  datasets produce.

The fitted model exposes the artefact CYCLOSA consumes: per-topic term
dictionaries (top-weight terms above a probability threshold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np


@dataclass
class LdaModel:
    """A fitted LDA model (vocabulary, counts, hyper-parameters)."""

    num_topics: int
    alpha: float
    beta: float
    vocabulary: List[str]
    topic_word_counts: np.ndarray  # shape (K, V)
    topic_totals: np.ndarray       # shape (K,)
    document_frequency: np.ndarray = None  # shape (V,), fraction of docs
    _word_index: Dict[str, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._word_index:
            self._word_index = {
                word: index for index, word in enumerate(self.vocabulary)}

    def topic_term_distribution(self, topic: int) -> np.ndarray:
        """phi_k: the term distribution of one topic."""
        counts = self.topic_word_counts[topic] + self.beta
        return counts / counts.sum()

    def top_terms(self, topic: int, topn: int = 20) -> List[Tuple[str, float]]:
        """The *topn* most probable terms of a topic with probabilities."""
        phi = self.topic_term_distribution(topic)
        order = np.argsort(phi)[::-1][:topn]
        return [(self.vocabulary[i], float(phi[i])) for i in order]

    def corpus_term_probability(self) -> np.ndarray:
        """Unigram probability of every vocabulary term in the corpus."""
        totals = self.topic_word_counts.sum(axis=0) + self.beta
        return totals / totals.sum()

    def term_dictionary(self, topn_per_topic: int = 25,
                        min_probability: float = 0.0,
                        max_doc_frequency: float = 0.2) -> Set[str]:
        """Union of the top terms of every topic (the tagging dictionary).

        This is the artefact §V-F describes: "every query including a
        term present in at least one LDA topic ... is identified as
        semantically sensitive".

        *max_doc_frequency* drops corpus-wide glue words: a term that
        occurs in more than this fraction of the training documents is
        background vocabulary ("free", "best", "video", ...), not
        topical signal. This plays the role of the extended stoplist in
        the Mallet pipeline the paper used — without it, every query
        containing a glue word would be tagged sensitive.
        """
        terms: Set[str] = set()
        for topic in range(self.num_topics):
            phi = self.topic_term_distribution(topic)
            order = np.argsort(phi)[::-1][:topn_per_topic]
            for index in order:
                probability = float(phi[index])
                if probability < min_probability:
                    break
                if self.document_frequency is not None and \
                        float(self.document_frequency[index]) > max_doc_frequency:
                    continue
                terms.add(self.vocabulary[index])
        return terms

    def infer_topic_mixture(self, tokens: Sequence[str],
                            iterations: int = 20, rng=None) -> np.ndarray:
        """Fold-in inference: estimate theta_d for an unseen document."""
        rng = rng or np.random.default_rng(0)
        ids = [self._word_index[t] for t in tokens if t in self._word_index]
        if not ids:
            return np.full(self.num_topics, 1.0 / self.num_topics)
        assignments = rng.integers(0, self.num_topics, size=len(ids))
        doc_counts = np.bincount(assignments, minlength=self.num_topics).astype(float)
        phi_cache = (self.topic_word_counts + self.beta)
        phi_cache = phi_cache / phi_cache.sum(axis=1, keepdims=True)
        for _ in range(iterations):
            for position, word_id in enumerate(ids):
                topic = assignments[position]
                doc_counts[topic] -= 1
                weights = (doc_counts + self.alpha) * phi_cache[:, word_id]
                cumulative = np.cumsum(weights)
                topic = int(np.searchsorted(
                    cumulative, rng.random() * cumulative[-1]))
                assignments[position] = topic
                doc_counts[topic] += 1
        theta = doc_counts + self.alpha
        return theta / theta.sum()


def fit_lda(documents: Sequence[Sequence[str]], num_topics: int,
            iterations: int = 150, alpha: float = 0.1, beta: float = 0.01,
            seed: int = 0) -> LdaModel:
    """Fit LDA on tokenised *documents* with collapsed Gibbs sampling.

    Parameters
    ----------
    documents:
        Tokenised corpus (list of token lists). Empty documents are
        skipped.
    num_topics:
        Number of latent topics K.
    iterations:
        Full Gibbs sweeps over the corpus.
    alpha, beta:
        Symmetric Dirichlet priors over document-topic and topic-term
        distributions.
    seed:
        Sampler seed; fits are deterministic given (corpus, seed).
    """
    if num_topics < 1:
        raise ValueError("num_topics must be >= 1")
    rng = np.random.default_rng(seed)

    vocabulary: List[str] = []
    word_index: Dict[str, int] = {}
    doc_words: List[np.ndarray] = []
    for document in documents:
        ids = []
        for token in document:
            index = word_index.get(token)
            if index is None:
                index = len(vocabulary)
                word_index[token] = index
                vocabulary.append(token)
            ids.append(index)
        if ids:
            doc_words.append(np.array(ids, dtype=np.int64))

    num_docs = len(doc_words)
    vocab_size = len(vocabulary)
    if num_docs == 0 or vocab_size == 0:
        raise ValueError("corpus is empty after tokenisation")

    topic_word = np.zeros((num_topics, vocab_size), dtype=np.float64)
    doc_topic = np.zeros((num_docs, num_topics), dtype=np.float64)
    topic_totals = np.zeros(num_topics, dtype=np.float64)
    assignments: List[np.ndarray] = []

    for d, words in enumerate(doc_words):
        z = rng.integers(0, num_topics, size=len(words))
        assignments.append(z)
        for word_id, topic in zip(words, z):
            topic_word[topic, word_id] += 1
            doc_topic[d, topic] += 1
            topic_totals[topic] += 1

    vbeta = vocab_size * beta
    for _ in range(iterations):
        for d, words in enumerate(doc_words):
            z = assignments[d]
            for position in range(len(words)):
                word_id = words[position]
                topic = z[position]
                # Remove the token from the counts.
                topic_word[topic, word_id] -= 1
                doc_topic[d, topic] -= 1
                topic_totals[topic] -= 1
                # Collapsed conditional over topics (vectorised).
                weights = ((doc_topic[d] + alpha)
                           * (topic_word[:, word_id] + beta)
                           / (topic_totals + vbeta))
                # Inverse-CDF draw: much faster than rng.choice per token.
                cumulative = np.cumsum(weights)
                topic = int(np.searchsorted(
                    cumulative, rng.random() * cumulative[-1]))
                z[position] = topic
                topic_word[topic, word_id] += 1
                doc_topic[d, topic] += 1
                topic_totals[topic] += 1

    doc_frequency = np.zeros(vocab_size, dtype=np.float64)
    for words in doc_words:
        for word_id in set(words.tolist()):
            doc_frequency[word_id] += 1
    doc_frequency /= num_docs

    return LdaModel(
        num_topics=num_topics,
        alpha=alpha,
        beta=beta,
        vocabulary=vocabulary,
        topic_word_counts=topic_word,
        topic_totals=topic_totals,
        document_frequency=doc_frequency,
        _word_index=word_index,
    )
