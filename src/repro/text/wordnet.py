"""A synthetic WordNet with domain labels.

The real pipeline (§V-A1, §V-F) uses WordNet synsets plus the eXtended
WordNet Domains mapping (synset → 170 domain labels) to build per-topic
sensitive dictionaries. We synthesise the equivalent resource over the
generator's vocabularies, with two calibration knobs that reproduce the
real resource's failure modes (and hence Table II's precision/recall
trade-off):

- ``domain_recall`` — the probability a genuinely sensitive synset
  carries its sensitive domain label. Real WordNet Domains has coverage
  gaps; missing labels cost *recall*.
- ``polysemy_noise`` — the probability a neutral synset *additionally*
  carries some sensitive domain label (real polysemy: "pitcher" is
  baseball and anatomy, "score" is sports and music). Spurious labels
  cost *precision* — this is why WordNet-only tagging shows P ≈ 0.53
  in the paper while recall stays high.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.datasets.vocabulary import (
    SENSITIVE_TOPICS,
    TopicVocabulary,
    build_topic_vocabularies,
)


@dataclass(frozen=True)
class Synset:
    """A set of synonymous lemmas with domain labels."""

    synset_id: int
    lemmas: Tuple[str, ...]
    domains: FrozenSet[str]


class SyntheticWordNet:
    """Lexical database: lemma → synsets → domains.

    Use :meth:`build` to construct one over the standard topic
    vocabularies. Lookup methods mirror what the sensitivity analysis
    needs: ``domains_of`` for tagging and ``synonyms`` for expansion.
    """

    def __init__(self, synsets: List[Synset]) -> None:
        self.synsets = synsets
        self._by_lemma: Dict[str, List[Synset]] = {}
        for synset in synsets:
            for lemma in synset.lemmas:
                self._by_lemma.setdefault(lemma, []).append(synset)

    @classmethod
    def build(cls, vocabularies: Optional[Dict[str, TopicVocabulary]] = None,
              domain_recall: float = 0.72,
              polysemy_noise: float = 0.045,
              seed: int = 0) -> "SyntheticWordNet":
        """Construct the database.

        Each seed term and its morphological variants form one synset.
        Sensitive-topic synsets get their true domain with probability
        *domain_recall*; neutral synsets pick up a spurious sensitive
        domain with probability *polysemy_noise*. Defaults are
        calibrated so dictionary-only tagging of the synthetic workload
        lands near the paper's WordNet row in Table II (P 0.53, R 0.83).
        """
        if vocabularies is None:
            vocabularies = build_topic_vocabularies()
        rng = random.Random(seed)
        synsets: List[Synset] = []
        synset_id = 0
        for topic, vocabulary in vocabularies.items():
            grouped = _group_variants(vocabulary)
            for lemmas in grouped:
                domains: Set[str] = {f"factotum/{topic}"}
                if vocabulary.sensitive:
                    if rng.random() < domain_recall:
                        domains.add(topic)
                else:
                    if rng.random() < polysemy_noise:
                        domains.add(rng.choice(list(SENSITIVE_TOPICS)))
                synsets.append(Synset(
                    synset_id=synset_id,
                    lemmas=tuple(lemmas),
                    domains=frozenset(domains),
                ))
                synset_id += 1
        return cls(synsets)

    # -- lookups ---------------------------------------------------------

    def synsets_of(self, lemma: str) -> List[Synset]:
        return list(self._by_lemma.get(lemma, []))

    def domains_of(self, lemma: str) -> FrozenSet[str]:
        """Union of the domain labels of every synset containing *lemma*."""
        domains: Set[str] = set()
        for synset in self._by_lemma.get(lemma, []):
            domains.update(synset.domains)
        return frozenset(domains)

    def synonyms(self, lemma: str) -> FrozenSet[str]:
        """All lemmas sharing a synset with *lemma* (excluding itself)."""
        related: Set[str] = set()
        for synset in self._by_lemma.get(lemma, []):
            related.update(synset.lemmas)
        related.discard(lemma)
        return frozenset(related)

    def sensitive_dictionary(self, topics: Tuple[str, ...] = SENSITIVE_TOPICS
                             ) -> FrozenSet[str]:
        """Every lemma whose domains intersect the given sensitive topics.

        This is the "dictionary of terms associated to each identified
        sensitive topic" of §V-A1, for the WordNet leg.
        """
        wanted = set(topics)
        lemmas: Set[str] = set()
        for synset in self.synsets:
            if synset.domains & wanted:
                lemmas.update(synset.lemmas)
        return frozenset(lemmas)


def _group_variants(vocabulary: TopicVocabulary) -> List[List[str]]:
    """Group a topic's expanded terms into per-seed synonym sets."""
    groups: Dict[str, List[str]] = {seed: [] for seed in vocabulary.seeds}
    # Longest-prefix match assigns each variant to its seed.
    seeds_by_length = sorted(vocabulary.seeds, key=len, reverse=True)
    for term in vocabulary.terms:
        for seed in seeds_by_length:
            if term.startswith(seed):
                groups[seed].append(term)
                break
        else:
            groups.setdefault(term, []).append(term)
    return [lemmas for lemmas in groups.values() if lemmas]
