"""Exponential smoothing of ranked similarity lists.

Both CYCLOSA's linkability assessment (§V-A2) and SimAttack (§VII-E)
aggregate the cosine similarities between a query and a set of past
queries by *ranking them in ascending order and exponentially smoothing
them*, so the most similar past queries dominate the aggregate while
the long tail of dissimilar ones still discounts it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

DEFAULT_ALPHA = 0.5


def exponential_smoothing(values: Sequence[float],
                          alpha: float = DEFAULT_ALPHA) -> float:
    """Smooth *values* in the given order: ``s = α·v + (1-α)·s``.

    The last element carries the most weight; callers pass similarities
    sorted ascending so the best match dominates. Returns 0.0 for an
    empty sequence.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    smoothed = 0.0
    first = True
    for value in values:
        if first:
            smoothed = value
            first = False
        else:
            smoothed = alpha * value + (1.0 - alpha) * smoothed
    return smoothed


def smoothed_similarity(similarities: Iterable[float],
                        alpha: float = DEFAULT_ALPHA) -> float:
    """Rank ascending, then exponentially smooth (the SimAttack metric)."""
    ranked = sorted(similarities)
    return exponential_smoothing(ranked, alpha=alpha)
