"""Query tokenisation.

Search queries are short, noisy strings; the pipeline used throughout
the repository (sensitivity analysis, SimAttack, the search engine
indexer) is: lowercase → split on non-alphanumerics → drop stopwords
and single characters → optionally Porter-stem.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.text.cache import DEFAULT_QUERY_CACHE_SIZE, LruCache

# A compact English stopword list — enough to keep function words out of
# user profiles without deleting informative query terms.
STOPWORDS = frozenset("""
a about above after again all am an and any are as at be because been
before being below between both but by can did do does doing down during
each few for from further had has have having he her here hers him his
how i if in into is it its itself just me more most my myself no nor not
now of off on once only or other our ours out over own same she so some
such than that the their theirs them then there these they this those
through to too under until up very was we were what when where which
while who whom why will with you your yours
""".split())

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str, drop_stopwords: bool = True,
             min_length: int = 2) -> List[str]:
    """Split *text* into normalised tokens.

    Parameters
    ----------
    text:
        Raw query or document text.
    drop_stopwords:
        Remove members of :data:`STOPWORDS`.
    min_length:
        Drop tokens shorter than this many characters.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    return [
        token for token in tokens
        if len(token) >= min_length
        and not (drop_stopwords and token in STOPWORDS)
    ]


#: query text -> tuple of stemmed tokens. Immutable values, shared.
_STEMMED_CACHE = LruCache("stemmed_terms", DEFAULT_QUERY_CACHE_SIZE)


def stemmed_terms(text: str) -> Tuple[str, ...]:
    """Tokenise then Porter-stem, memoized.

    Returns an immutable tuple so the cached value can be shared by
    every caller; the bounded memo (and its hit/miss counters) lives in
    :mod:`repro.text.cache`.
    """
    try:
        return _STEMMED_CACHE.lookup(text)
    except KeyError:
        from repro.text.stem import porter_stem

        terms = tuple(porter_stem(token) for token in tokenize(text))
        return _STEMMED_CACHE.store(text, terms)


def stemmed_tokens(text: str) -> List[str]:
    """Tokenise then Porter-stem (the canonical profile representation).

    A list-returning convenience over :func:`stemmed_terms` (the list
    is fresh per call; the underlying tuple is cached)."""
    return list(stemmed_terms(text))
